//! Run-directory checkpointing for crash-recoverable pipeline runs.
//!
//! At paper scale the pipeline is a multi-round loop over 560 M documents
//! with paid crowd annotation in the middle — exactly the job where a
//! crash after round *k* must not discard rounds `0..k`. This module
//! persists the full pipeline state at every step boundary into a **run
//! directory**, so [`run_pipeline_resumable`](crate::run_pipeline_resumable)
//! can be killed at any boundary and resumed to a `PipelineOutcome`
//! byte-identical to an uninterrupted run (DESIGN.md §12).
//!
//! Layout of a run directory:
//!
//! ```text
//! run_dir/
//!   MANIFEST.ckpt                      # step records: core snapshots + file hashes
//!   step-00-bootstrap.ledger.ckpt      # annotation ledger section
//!   step-01-featurize.model.ckpt       # incite-ml persist artifact, framed
//!   step-02-round-0.ledger.ckpt
//!   step-02-round-0.model.ckpt
//!   step-03-eval.model.ckpt
//!   step-04-score.scores.ckpt          # full-corpus score section
//! ```
//!
//! The snapshot is persisted in **sections**: a small core (RNG words,
//! counters, rounds, thresholds, eval, engine stats) embedded directly
//! in the manifest's step record, plus content-addressed section files
//! for the bulky parts — the annotation ledger, the full-corpus scores,
//! and the model weights. A step whose section is unchanged records the
//! *previous* step's file in its manifest entry instead of rewriting the
//! payload; since the ledger is append-only and the scores are
//! write-once (see [`PipelineSnapshot`]), most boundaries cost exactly
//! one atomic write — the manifest, which is also the commit point. On
//! the measured filesystems the per-step tax is dominated by file
//! *count*, not bytes, and this is what keeps it inside the
//! `checkpoint_overhead` BENCH budget.
//!
//! Every file is written by [`atomic_io`]: atomic write-rename with an
//! FNV-1a content-hash footer. The manifest records each step's files and
//! their hashes; opening a run directory re-verifies **every** recorded
//! file, so a single flipped byte anywhere refuses resume with a typed
//! [`CheckpointError::HashMismatch`] — no panic, no silent reuse. A
//! mismatched task or config fingerprint refuses with
//! [`CheckpointError::Incompatible`] rather than resuming into a different
//! experiment's state.
//!
//! What is persisted vs recomputed: the RNG stream position, training
//! ledger, round stats, thresholds, stage counts, eval report, engine
//! *counters*, and the classifier weights (via `incite_ml::persist`) are
//! persisted; the CSR feature arena and the training-feature cache are
//! derivable from corpus + featurizer and are rebuilt on resume (with the
//! persisted counters restored so instrumentation stays identical).

pub mod atomic_io;

use crate::accounting::StageCounts;
use crate::active_learning::RoundStats;
use crate::engine::EngineStats;
use crate::threshold::PlatformThreshold;
use incite_corpus::DocId;
use incite_ml::model::EvalReport;
use incite_ml::{load_model_bin, save_model_bin, TextClassifier};
use std::fmt;
use std::path::{Path, PathBuf};

/// Manifest schema version.
pub const MANIFEST_VERSION: u32 = 1;

/// Manifest file name inside a run directory.
pub const MANIFEST_FILE: &str = "MANIFEST.ckpt";

/// Errors from the checkpoint subsystem.
#[derive(Debug)]
pub enum CheckpointError {
    /// Underlying filesystem failure.
    Io {
        path: PathBuf,
        source: std::io::Error,
    },
    /// A file is structurally unusable (missing footer, bad JSON, …).
    Corrupt { path: PathBuf, detail: String },
    /// Content hash disagrees with the recorded/framed hash.
    HashMismatch {
        path: PathBuf,
        expected: String,
        actual: String,
    },
    /// The run directory belongs to a different task/config/schema.
    Incompatible { detail: String },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::Io { path, source } => {
                write!(f, "checkpoint i/o error at {}: {source}", path.display())
            }
            CheckpointError::Corrupt { path, detail } => {
                write!(f, "corrupt checkpoint file {}: {detail}", path.display())
            }
            CheckpointError::HashMismatch {
                path,
                expected,
                actual,
            } => write!(
                f,
                "checkpoint hash mismatch in {}: recorded {expected}, found {actual} \
                 (refusing to resume from corrupt state)",
                path.display()
            ),
            CheckpointError::Incompatible { detail } => {
                write!(f, "incompatible run directory: {detail}")
            }
        }
    }
}

impl std::error::Error for CheckpointError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CheckpointError::Io { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// One persisted file of a step.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct FileRecord {
    /// File name relative to the run directory.
    pub name: String,
    /// FNV-1a 64 hash (hex) of the payload.
    pub hash: String,
    /// Payload size in bytes.
    pub bytes: u64,
}

/// One completed pipeline step.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct StepRecord {
    /// Step name, e.g. `bootstrap`, `round-0`, `threshold-pastes`.
    pub name: String,
    /// The core snapshot at this boundary, embedded in the manifest so
    /// that recording a step with no changed sections is a single write.
    pub core: SnapshotCore,
    /// Section files the step references (ledger / scores / model),
    /// possibly written by an earlier step.
    pub files: Vec<FileRecord>,
}

/// The ordered record of completed steps.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct Manifest {
    pub version: u32,
    /// Task slug the run belongs to.
    pub task: String,
    /// Fingerprint of the deterministic pipeline parameters.
    pub config_fingerprint: String,
    pub steps: Vec<StepRecord>,
}

/// Full pipeline state at a step boundary. Everything needed to continue
/// the run bit-for-bit; see the module docs for what is recomputed
/// instead.
///
/// Section contract, relied on for checkpoint deduplication: across the
/// successive snapshots of one run, `training` is **append-only** (seed
/// set, then each round's crowd labels) and `scores` is **write-once**
/// (set at the score step, never modified after). An unchanged length
/// therefore means unchanged content, and [`Checkpointer::record_step`]
/// reuses the previous step's section file instead of rewriting it.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PipelineSnapshot {
    /// xoshiro256++ state words at the boundary (exact stream position).
    pub rng: Vec<u64>,
    /// Figure 1 stage counters accumulated so far.
    pub counts: StageCounts,
    /// The annotation ledger: every labeled `(id, text, label)` so far —
    /// seed set plus each round's crowd labels. Append-only.
    pub training: Vec<(DocId, String, bool)>,
    /// Completed active-learning rounds.
    pub rounds: Vec<RoundStats>,
    /// Completed per-platform threshold rows.
    pub thresholds: Vec<PlatformThreshold>,
    /// Full-corpus scores as `f32` raw bits (bit-exact by construction).
    /// Write-once.
    pub scores: Option<Vec<(DocId, u32)>>,
    /// Held-out evaluation, once computed.
    pub eval: Option<EvalReport>,
    /// Engine pass counters at the boundary.
    pub engine: Option<EngineStats>,
}

/// The per-step core of a [`PipelineSnapshot`]: everything except the
/// deduplicated ledger/scores/model sections, which live in their own
/// content-addressed files. Small enough (RNG words, counters, rounds,
/// thresholds, eval) that it is embedded directly in the manifest's
/// [`StepRecord`] — committing a clean step is then exactly one atomic
/// file write.
#[derive(Debug, Clone, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct SnapshotCore {
    pub rng: Vec<u64>,
    pub counts: StageCounts,
    pub rounds: Vec<RoundStats>,
    pub thresholds: Vec<PlatformThreshold>,
    pub eval: Option<EvalReport>,
    pub engine: Option<EngineStats>,
}

impl PipelineSnapshot {
    /// An empty snapshot positioned at `rng`.
    pub fn empty(rng_state: [u64; 4]) -> Self {
        PipelineSnapshot {
            rng: rng_state.to_vec(),
            counts: StageCounts::default(),
            training: Vec::new(),
            rounds: Vec::new(),
            thresholds: Vec::new(),
            scores: None,
            eval: None,
            engine: None,
        }
    }

    /// The RNG state words, validated to the expected width.
    pub fn rng_state(&self) -> Result<[u64; 4], CheckpointError> {
        match self.rng.as_slice() {
            &[a, b, c, d] => Ok([a, b, c, d]),
            other => Err(CheckpointError::Incompatible {
                detail: format!("snapshot rng has {} words, expected 4", other.len()),
            }),
        }
    }
}

/// What `Checkpointer::open` found on disk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resume {
    /// No manifest: the run starts from scratch.
    Fresh,
    /// A verified manifest with `completed` steps to skip.
    FromStep { completed: usize },
}

/// A deduplicated snapshot section (ledger / scores / model): the file
/// record last written, plus the section length it was written at. The
/// length shortcut is sound because of the append-only / write-once
/// contract on [`PipelineSnapshot`]; after a reopen the length is unknown
/// (`None`) and the first `record_step` falls back to a hash comparison.
#[derive(Debug)]
struct SectionCache {
    len: Option<usize>,
    record: FileRecord,
}

/// Writes and verifies the checkpoint record of one pipeline run.
#[derive(Debug)]
pub struct Checkpointer {
    root: PathBuf,
    manifest: Manifest,
    ledger: Option<SectionCache>,
    scores: Option<SectionCache>,
    model: Option<SectionCache>,
}

impl Checkpointer {
    /// Opens `root` for a resumable run of `task`/`config_fingerprint`.
    ///
    /// If a manifest exists it is verified — footer hash, schema version,
    /// task and fingerprint match, and the recorded hash of **every** step
    /// file — before any state is trusted. A missing manifest starts a
    /// fresh run (the directory is created on first write).
    pub fn open(
        root: &Path,
        task: &str,
        config_fingerprint: &str,
    ) -> Result<(Self, Resume), CheckpointError> {
        let manifest_path = root.join(MANIFEST_FILE);
        if !manifest_path.exists() {
            let manifest = Manifest {
                version: MANIFEST_VERSION,
                task: task.to_string(),
                config_fingerprint: config_fingerprint.to_string(),
                steps: Vec::new(),
            };
            return Ok((
                Checkpointer {
                    root: root.to_path_buf(),
                    manifest,
                    ledger: None,
                    scores: None,
                    model: None,
                },
                Resume::Fresh,
            ));
        }

        let payload = atomic_io::read_hashed(&manifest_path)?;
        let manifest: Manifest = parse_json(&manifest_path, &payload, "manifest")?;
        if manifest.version != MANIFEST_VERSION {
            return Err(CheckpointError::Incompatible {
                detail: format!(
                    "manifest version {} (supported: {MANIFEST_VERSION})",
                    manifest.version
                ),
            });
        }
        if manifest.task != task {
            return Err(CheckpointError::Incompatible {
                detail: format!(
                    "run directory belongs to task `{}`, requested `{task}`",
                    manifest.task
                ),
            });
        }
        if manifest.config_fingerprint != config_fingerprint {
            return Err(CheckpointError::Incompatible {
                detail: format!(
                    "config fingerprint {} does not match the checkpointed run's {} \
                     (use --force to discard the old run)",
                    config_fingerprint, manifest.config_fingerprint
                ),
            });
        }
        // Verify every recorded file before trusting any of it. Section
        // deduplication makes later steps reference earlier steps' files,
        // so each distinct (name, hash) pair is read once.
        let mut verified = std::collections::BTreeSet::new();
        for step in &manifest.steps {
            for file in &step.files {
                if !verified.insert((file.name.clone(), file.hash.clone())) {
                    continue;
                }
                let path = root.join(&file.name);
                let payload = atomic_io::read_hashed(&path)?;
                let actual = atomic_io::fnv64_hex(&payload);
                if actual != file.hash || payload.len() as u64 != file.bytes {
                    return Err(CheckpointError::HashMismatch {
                        path,
                        expected: file.hash.clone(),
                        actual,
                    });
                }
            }
        }
        // Seed the section caches from the last step so a resumed run
        // keeps deduplicating (length unknown across processes — the
        // first record_step re-hashes to compare).
        let mut ledger = None;
        let mut scores = None;
        let mut model = None;
        if let Some(step) = manifest.steps.last() {
            for file in &step.files {
                let cache = SectionCache {
                    len: None,
                    record: file.clone(),
                };
                if file.name.ends_with(".ledger.ckpt") {
                    ledger = Some(cache);
                } else if file.name.ends_with(".scores.ckpt") {
                    scores = Some(cache);
                } else if file.name.ends_with(".model.ckpt") {
                    model = Some(cache);
                }
            }
        }
        let completed = manifest.steps.len();
        Ok((
            Checkpointer {
                root: root.to_path_buf(),
                manifest,
                ledger,
                scores,
                model,
            },
            Resume::FromStep { completed },
        ))
    }

    /// Number of steps already checkpointed.
    pub fn completed_steps(&self) -> usize {
        self.manifest.steps.len()
    }

    /// Names of the completed steps, in execution order.
    pub fn step_names(&self) -> impl Iterator<Item = &str> {
        self.manifest.steps.iter().map(|s| s.name.as_str())
    }

    /// The run directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Persists one completed step: any section whose content changed
    /// (ledger, scores, classifier weights), then the updated manifest
    /// with the embedded core snapshot — each atomically, in that order,
    /// so a crash between writes leaves a consistent prefix (an orphaned
    /// section file is harmless; the manifest is the commit point).
    /// Unchanged sections are recorded by reference to the previous
    /// step's file.
    ///
    /// `model_dirty` is the caller's promise about the weights since the
    /// last recorded step: `false` lets an already-recorded model be
    /// reused without even serializing it (the weights section has no
    /// cheap length proxy). Passing `true` is always safe — the payload
    /// is then serialized and deduplicated by content hash.
    pub fn record_step(
        &mut self,
        step: &str,
        snapshot: &PipelineSnapshot,
        classifier: Option<&TextClassifier>,
        model_dirty: bool,
    ) -> Result<(), CheckpointError> {
        let idx = self.manifest.steps.len();
        let mut files = Vec::new();

        let core = SnapshotCore {
            rng: snapshot.rng.clone(),
            counts: snapshot.counts.clone(),
            rounds: snapshot.rounds.clone(),
            thresholds: snapshot.thresholds.clone(),
            eval: snapshot.eval.clone(),
            engine: snapshot.engine,
        };

        let ledger_name = format!("step-{idx:02}-{step}.ledger.ckpt");
        files.push(Self::dedup_section(
            &self.root,
            &mut self.ledger,
            ledger_name,
            Some(snapshot.training.len()),
            || Ok(section_codec::encode_ledger(&snapshot.training)),
        )?);

        if let Some(scores) = &snapshot.scores {
            let scores_name = format!("step-{idx:02}-{step}.scores.ckpt");
            files.push(Self::dedup_section(
                &self.root,
                &mut self.scores,
                scores_name,
                Some(scores.len()),
                || Ok(section_codec::encode_scores(scores)),
            )?);
        }

        if let Some(classifier) = classifier {
            match (&self.model, model_dirty) {
                // Clean weights with a recorded section: reuse as-is.
                (Some(cached), false) => files.push(cached.record.clone()),
                _ => {
                    let model_name = format!("step-{idx:02}-{step}.model.ckpt");
                    let model_path = self.root.join(&model_name);
                    // Weights mutate in place at a fixed size, so no
                    // length shortcut: serialize, dedupe by content hash.
                    files.push(Self::dedup_section(
                        &self.root,
                        &mut self.model,
                        model_name,
                        None,
                        || {
                            let mut buf = Vec::new();
                            save_model_bin(&mut buf, classifier).map_err(|e| {
                                CheckpointError::Corrupt {
                                    path: model_path.clone(),
                                    detail: format!("model serialization failed: {e}"),
                                }
                            })?;
                            Ok(buf)
                        },
                    )?);
                }
            }
        }

        self.manifest.steps.push(StepRecord {
            name: step.to_string(),
            core,
            files,
        });
        self.write_manifest()
    }

    /// Records a section file, skipping the write when the content is
    /// unchanged from the cached last write: first by the section-length
    /// shortcut (valid under the append-only / write-once contract), then
    /// by comparing the serialized payload's hash.
    fn dedup_section(
        root: &Path,
        cache: &mut Option<SectionCache>,
        name: String,
        len: Option<usize>,
        payload: impl FnOnce() -> Result<Vec<u8>, CheckpointError>,
    ) -> Result<FileRecord, CheckpointError> {
        if let (Some(cached), Some(len)) = (cache.as_ref(), len) {
            if cached.len == Some(len) {
                return Ok(cached.record.clone());
            }
        }
        let bytes = payload()?;
        let hash = atomic_io::fnv64_hex(&bytes);
        if let Some(cached) = cache.as_mut() {
            if cached.record.hash == hash && cached.record.bytes == bytes.len() as u64 {
                cached.len = len;
                return Ok(cached.record.clone());
            }
        }
        atomic_io::write_framed(&root.join(&name), &bytes, &hash)?;
        let record = FileRecord {
            name,
            hash,
            bytes: bytes.len() as u64,
        };
        *cache = Some(SectionCache {
            len,
            record: record.clone(),
        });
        Ok(record)
    }

    fn write_manifest(&self) -> Result<(), CheckpointError> {
        let path = self.root.join(MANIFEST_FILE);
        let payload =
            serde_json::to_string(&self.manifest).map_err(|e| CheckpointError::Corrupt {
                path: path.clone(),
                detail: format!("manifest serialization failed: {e}"),
            })?;
        atomic_io::write_hashed(&path, payload.as_bytes())?;
        Ok(())
    }

    /// Loads the most recent snapshot and, when present, the classifier
    /// persisted with it. `None` when no step has completed yet.
    #[allow(clippy::type_complexity)]
    pub fn load_latest(
        &self,
    ) -> Result<Option<(PipelineSnapshot, Option<TextClassifier>)>, CheckpointError> {
        let Some(step) = self.manifest.steps.last() else {
            return Ok(None);
        };
        let core = step.core.clone();
        let mut training: Option<Vec<(DocId, String, bool)>> = None;
        let mut scores: Option<Vec<(DocId, u32)>> = None;
        let mut classifier = None;
        for file in &step.files {
            let path = self.root.join(&file.name);
            let payload = atomic_io::read_hashed(&path)?;
            if file.name.ends_with(".ledger.ckpt") {
                training = Some(section_codec::decode_ledger(&payload).map_err(|detail| {
                    CheckpointError::Corrupt {
                        path: path.clone(),
                        detail,
                    }
                })?);
            } else if file.name.ends_with(".scores.ckpt") {
                scores = Some(section_codec::decode_scores(&payload).map_err(|detail| {
                    CheckpointError::Corrupt {
                        path: path.clone(),
                        detail,
                    }
                })?);
            } else if file.name.ends_with(".model.ckpt") {
                classifier = Some(load_model_bin(payload.as_slice()).map_err(|e| {
                    CheckpointError::Corrupt {
                        path: path.clone(),
                        detail: format!("model artifact does not load: {e}"),
                    }
                })?);
            }
        }
        Ok(Some((
            PipelineSnapshot {
                rng: core.rng,
                counts: core.counts,
                training: training.unwrap_or_default(),
                rounds: core.rounds,
                thresholds: core.thresholds,
                scores,
                eval: core.eval,
                engine: core.engine,
            },
            classifier,
        )))
    }
}

/// Length-prefixed binary frames for the bulky snapshot sections. JSON
/// serialization of a 10^5-entry score table or annotation ledger costs
/// milliseconds per step (number formatting through a `Value` tree);
/// these frames encode the same data byte-exactly with `extend_from_slice`
/// and decode with typed errors. The manifest and core snapshot stay
/// JSON — they are small and worth keeping human-inspectable. Integrity
/// is supplied by the [`atomic_io`] hash footer around the frame.
mod section_codec {
    use incite_corpus::DocId;

    /// Frame version tags, so a future layout change is a typed refusal
    /// instead of a garbled decode.
    const LEDGER_MAGIC: &[u8; 8] = b"ILEDGER1";
    const SCORES_MAGIC: &[u8; 8] = b"ISCORES1";

    pub fn encode_ledger(training: &[(DocId, String, bool)]) -> Vec<u8> {
        let bytes: usize = training.iter().map(|(_, t, _)| t.len() + 13).sum();
        let mut out = Vec::with_capacity(16 + bytes);
        out.extend_from_slice(LEDGER_MAGIC);
        out.extend_from_slice(&(training.len() as u64).to_le_bytes());
        for (id, text, label) in training {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&(text.len() as u32).to_le_bytes());
            out.extend_from_slice(text.as_bytes());
            out.push(u8::from(*label));
        }
        out
    }

    pub fn decode_ledger(bytes: &[u8]) -> Result<Vec<(DocId, String, bool)>, String> {
        let mut r = Reader::new(bytes, LEDGER_MAGIC, "ledger")?;
        let count = r.u64()?;
        let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            let id = DocId(r.u64()?);
            let len = r.u32()? as usize;
            let text = String::from_utf8(r.take(len)?.to_vec())
                .map_err(|_| "ledger text is not UTF-8".to_string())?;
            let label = match r.u8()? {
                0 => false,
                1 => true,
                other => return Err(format!("ledger label byte {other} is not 0/1")),
            };
            out.push((id, text, label));
        }
        r.finish()?;
        Ok(out)
    }

    pub fn encode_scores(scores: &[(DocId, u32)]) -> Vec<u8> {
        let mut out = Vec::with_capacity(16 + scores.len() * 12);
        out.extend_from_slice(SCORES_MAGIC);
        out.extend_from_slice(&(scores.len() as u64).to_le_bytes());
        for (id, bits) in scores {
            out.extend_from_slice(&id.0.to_le_bytes());
            out.extend_from_slice(&bits.to_le_bytes());
        }
        out
    }

    pub fn decode_scores(bytes: &[u8]) -> Result<Vec<(DocId, u32)>, String> {
        let mut r = Reader::new(bytes, SCORES_MAGIC, "scores")?;
        let count = r.u64()?;
        let mut out = Vec::with_capacity(count.min(1 << 24) as usize);
        for _ in 0..count {
            out.push((DocId(r.u64()?), r.u32()?));
        }
        r.finish()?;
        Ok(out)
    }

    /// Bounds-checked little-endian cursor with section-aware errors.
    struct Reader<'a> {
        bytes: &'a [u8],
        pos: usize,
        what: &'static str,
    }

    impl<'a> Reader<'a> {
        fn new(bytes: &'a [u8], magic: &[u8; 8], what: &'static str) -> Result<Self, String> {
            if bytes.len() < 8 || &bytes[..8] != magic {
                return Err(format!(
                    "{what} section has a foreign or outdated frame tag"
                ));
            }
            Ok(Reader {
                bytes,
                pos: 8,
                what,
            })
        }

        fn take(&mut self, n: usize) -> Result<&'a [u8], String> {
            let end = self
                .pos
                .checked_add(n)
                .filter(|&end| end <= self.bytes.len())
                .ok_or_else(|| format!("{} section is truncated", self.what))?;
            let slice = &self.bytes[self.pos..end];
            self.pos = end;
            Ok(slice)
        }

        fn u8(&mut self) -> Result<u8, String> {
            Ok(self.take(1)?[0])
        }

        fn u32(&mut self) -> Result<u32, String> {
            let mut buf = [0u8; 4];
            buf.copy_from_slice(self.take(4)?);
            Ok(u32::from_le_bytes(buf))
        }

        fn u64(&mut self) -> Result<u64, String> {
            let mut buf = [0u8; 8];
            buf.copy_from_slice(self.take(8)?);
            Ok(u64::from_le_bytes(buf))
        }

        fn finish(self) -> Result<(), String> {
            if self.pos == self.bytes.len() {
                Ok(())
            } else {
                Err(format!("{} section has trailing bytes", self.what))
            }
        }
    }
}

/// Parses a verified JSON payload, naming the section on failure.
fn parse_json<T: serde::Deserialize>(
    path: &Path,
    payload: &[u8],
    what: &str,
) -> Result<T, CheckpointError> {
    let text = std::str::from_utf8(payload).map_err(|_| CheckpointError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("{what} is not UTF-8"),
    })?;
    serde_json::from_str(text).map_err(|e| CheckpointError::Corrupt {
        path: path.to_path_buf(),
        detail: format!("{what} does not parse: {e}"),
    })
}

/// Loads the classifier recorded at the most recent step of a run
/// directory, without binding to a task or config fingerprint — the
/// online serving boot path (`incite serve --run-dir DIR`).
///
/// The manifest footer, schema version, and the model section's recorded
/// hash and size are all verified before the artifact is decoded, so a
/// damaged or truncated run directory is a typed refusal — never a
/// partially-initialized server. Unlike [`Checkpointer::open`] it does
/// not re-verify every section file: serving only needs the weights, and
/// the ledger/scores sections may be arbitrarily large.
pub fn load_latest_classifier(root: &Path) -> Result<TextClassifier, CheckpointError> {
    load_latest_classifier_with_hash(root).map(|(classifier, _)| classifier)
}

/// [`load_latest_classifier`] that also returns the model section's
/// verified content hash (the manifest-recorded FNV-64 hex). The hash is
/// the model's provenance identity: the serve-side model registry stamps
/// it on every scored response and the request journal records it, so a
/// replay can prove it re-scored with the *same* weights.
pub fn load_latest_classifier_with_hash(
    root: &Path,
) -> Result<(TextClassifier, String), CheckpointError> {
    let manifest_path = root.join(MANIFEST_FILE);
    if !manifest_path.exists() {
        return Err(CheckpointError::Incompatible {
            detail: format!(
                "{} has no {MANIFEST_FILE} — not a run directory (create one with \
                 `incite run --resume DIR`)",
                root.display()
            ),
        });
    }
    let payload = atomic_io::read_hashed(&manifest_path)?;
    let manifest: Manifest = parse_json(&manifest_path, &payload, "manifest")?;
    if manifest.version != MANIFEST_VERSION {
        return Err(CheckpointError::Incompatible {
            detail: format!(
                "manifest version {} (supported: {MANIFEST_VERSION})",
                manifest.version
            ),
        });
    }
    let record = manifest
        .steps
        .iter()
        .rev()
        .flat_map(|step| step.files.iter())
        .find(|file| file.name.ends_with(".model.ckpt"))
        .ok_or_else(|| CheckpointError::Incompatible {
            detail: format!(
                "run in {} has no model checkpoint yet (no training step completed)",
                root.display()
            ),
        })?;
    let path = root.join(&record.name);
    let payload = atomic_io::read_hashed(&path)?;
    let actual = atomic_io::fnv64_hex(&payload);
    if actual != record.hash || payload.len() as u64 != record.bytes {
        return Err(CheckpointError::HashMismatch {
            path,
            expected: record.hash.clone(),
            actual,
        });
    }
    let classifier = load_model_bin(payload.as_slice()).map_err(|e| CheckpointError::Corrupt {
        path,
        detail: format!("model artifact does not load: {e}"),
    })?;
    Ok((classifier, record.hash.clone()))
}

/// Removes all checkpoint files (`*.ckpt`) from `root`, enabling a fresh
/// run in the same directory (the CLI's `--force`). Files without the
/// checkpoint extension are left untouched; a missing directory is fine.
pub fn clear_run_dir(root: &Path) -> Result<(), CheckpointError> {
    let entries = match std::fs::read_dir(root) {
        Ok(entries) => entries,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(()),
        Err(e) => {
            return Err(CheckpointError::Io {
                path: root.to_path_buf(),
                source: e,
            })
        }
    };
    for entry in entries {
        let entry = entry.map_err(|e| CheckpointError::Io {
            path: root.to_path_buf(),
            source: e,
        })?;
        let path = entry.path();
        let is_ckpt = path
            .file_name()
            .and_then(|n| n.to_str())
            .is_some_and(|n| n.ends_with(".ckpt") || n.ends_with(".ckpt.tmp"));
        if is_ckpt {
            std::fs::remove_file(&path).map_err(|e| CheckpointError::Io {
                path: path.clone(),
                source: e,
            })?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("incite-ckpt-{tag}-{}", std::process::id()))
    }

    /// Successive `snapshot(n)` calls honour the section contract: the
    /// ledger grows by appending and the scores never change.
    fn snapshot(n: u64) -> PipelineSnapshot {
        let mut snap = PipelineSnapshot::empty([n, n + 1, n + 2, n + 3]);
        snap.training = (0..n)
            .map(|i| (DocId(i), format!("text {i}"), i % 2 == 0))
            .collect();
        snap.counts.raw_documents = n;
        snap.scores = Some(vec![(DocId(0), 0.75f32.to_bits())]);
        snap
    }

    #[test]
    fn fresh_open_then_record_then_resume() {
        let root = temp_root("fresh");
        clear_run_dir(&root).expect("clear");
        let (mut ck, resume) = Checkpointer::open(&root, "dox", "fp1").expect("open");
        assert_eq!(resume, Resume::Fresh);
        assert!(ck.load_latest().expect("latest").is_none());

        ck.record_step("bootstrap", &snapshot(1), None, true)
            .expect("record 1");
        ck.record_step("featurize", &snapshot(2), None, true)
            .expect("record 2");

        let (ck2, resume) = Checkpointer::open(&root, "dox", "fp1").expect("reopen");
        assert_eq!(resume, Resume::FromStep { completed: 2 });
        assert_eq!(
            ck2.step_names().collect::<Vec<_>>(),
            ["bootstrap", "featurize"]
        );
        let (snap, clf) = ck2.load_latest().expect("latest").expect("some");
        assert_eq!(snap, snapshot(2));
        assert_eq!(snap.rng_state().expect("rng"), [2, 3, 4, 5]);
        assert!(clf.is_none());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn wrong_task_or_fingerprint_is_refused() {
        let root = temp_root("mismatch");
        clear_run_dir(&root).expect("clear");
        let (mut ck, _) = Checkpointer::open(&root, "dox", "fp1").expect("open");
        ck.record_step("bootstrap", &snapshot(1), None, true)
            .expect("record");
        assert!(matches!(
            Checkpointer::open(&root, "cth", "fp1"),
            Err(CheckpointError::Incompatible { .. })
        ));
        assert!(matches!(
            Checkpointer::open(&root, "dox", "fp2"),
            Err(CheckpointError::Incompatible { .. })
        ));
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn corrupt_step_file_refuses_resume() {
        let root = temp_root("corrupt-step");
        clear_run_dir(&root).expect("clear");
        let (mut ck, _) = Checkpointer::open(&root, "dox", "fp1").expect("open");
        ck.record_step("bootstrap", &snapshot(1), None, true)
            .expect("record");
        // Flip one payload byte of the ledger section file.
        let path = root.join("step-00-bootstrap.ledger.ckpt");
        let mut raw = std::fs::read(&path).expect("read");
        raw[10] ^= 0x01;
        std::fs::write(&path, &raw).expect("write corrupt");
        match Checkpointer::open(&root, "dox", "fp1") {
            Err(CheckpointError::HashMismatch { .. }) => {}
            other => panic!("expected HashMismatch, got {other:?}"),
        }
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn clear_enables_fresh_run_and_spares_other_files() {
        let root = temp_root("clear");
        clear_run_dir(&root).expect("clear empty");
        let (mut ck, _) = Checkpointer::open(&root, "dox", "fp1").expect("open");
        ck.record_step("bootstrap", &snapshot(1), None, true)
            .expect("record");
        std::fs::write(root.join("notes.txt"), "keep me").expect("note");
        clear_run_dir(&root).expect("clear");
        assert!(!root.join(MANIFEST_FILE).exists());
        assert!(!root.join("step-00-bootstrap.ledger.ckpt").exists());
        assert!(root.join("notes.txt").exists());
        let (_, resume) = Checkpointer::open(&root, "cth", "other").expect("reopen");
        assert_eq!(resume, Resume::Fresh);
        std::fs::remove_dir_all(&root).ok();
    }

    /// Unchanged sections are recorded by reference, not rewritten: two
    /// steps with the same ledger and scores share one file of each, and
    /// appending to the ledger produces a new file.
    #[test]
    fn unchanged_sections_reuse_the_previous_file() {
        let root = temp_root("dedup");
        clear_run_dir(&root).expect("clear");
        let (mut ck, _) = Checkpointer::open(&root, "dox", "fp1").expect("open");
        let mut snap = snapshot(3);
        ck.record_step("round-0", &snap, None, true)
            .expect("record 1");
        snap.counts.raw_documents = 99;
        ck.record_step("eval", &snap, None, true).expect("record 2");

        let count = |suffix: &str| {
            std::fs::read_dir(&root)
                .expect("read dir")
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().ends_with(suffix))
                .count()
        };
        assert_eq!(count(".state.ckpt"), 0, "core is embedded in the manifest");
        assert_eq!(count(".ledger.ckpt"), 1, "unchanged ledger deduped");
        assert_eq!(count(".scores.ckpt"), 1, "unchanged scores deduped");

        // The deduplicated directory still verifies and loads exactly.
        let (ck2, resume) = Checkpointer::open(&root, "dox", "fp1").expect("reopen");
        assert_eq!(resume, Resume::FromStep { completed: 2 });
        let (loaded, _) = ck2.load_latest().expect("latest").expect("some");
        assert_eq!(loaded, snap);

        // Appending to the ledger forces a new section file — including
        // right after a reopen, where only the hash comparison can tell.
        let (mut ck3, _) = Checkpointer::open(&root, "dox", "fp1").expect("reopen for append");
        snap.training
            .push((DocId(77), "appended".to_string(), true));
        ck3.record_step("round-1", &snap, None, true)
            .expect("record 3");
        assert_eq!(count(".ledger.ckpt"), 2, "appended ledger rewritten");
        assert_eq!(count(".scores.ckpt"), 1, "scores still deduped");
        let (loaded, _) = ck3.load_latest().expect("latest").expect("some");
        assert_eq!(loaded, snap);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn section_frames_roundtrip_and_refuse_damage() {
        let training = vec![
            (DocId(0), String::new(), false),
            (
                DocId(u64::MAX),
                "unicode café 😀 and\nnewlines\t".to_string(),
                true,
            ),
            (DocId(42), "plain ascii".to_string(), false),
        ];
        let bytes = section_codec::encode_ledger(&training);
        assert_eq!(
            section_codec::decode_ledger(&bytes).expect("ledger"),
            training
        );

        let scores = vec![
            (DocId(7), 0.25f32.to_bits()),
            (DocId(8), f32::NAN.to_bits()),
        ];
        let bytes = section_codec::encode_scores(&scores);
        assert_eq!(
            section_codec::decode_scores(&bytes).expect("scores"),
            scores
        );

        // Damage surfaces as a typed message, never a panic: wrong magic,
        // truncation, trailing bytes, and a bad label byte.
        assert!(section_codec::decode_ledger(b"GARBAGE!rest").is_err());
        let mut enc = section_codec::encode_ledger(&training);
        enc.truncate(enc.len() - 1);
        assert!(section_codec::decode_ledger(&enc).is_err());
        let mut enc = section_codec::encode_scores(&scores);
        enc.push(0);
        assert!(section_codec::decode_scores(&enc).is_err());
        let mut enc = section_codec::encode_ledger(&training);
        let last = enc.len() - 1;
        enc[last] = 9; // label byte of the final record
        assert!(section_codec::decode_ledger(&enc).is_err());
    }

    #[test]
    fn snapshot_roundtrips_exactly_through_json() {
        let mut snap = snapshot(7);
        snap.rounds.push(RoundStats {
            sampled: 40,
            disagreement_rate: 0.186_6,
            kappa: Some(0.350_123_456_789),
            positives_added: 9,
        });
        snap.engine = Some(EngineStats {
            documents: 6_000,
            nnz: 120_000,
            featurize_passes: 1,
            score_passes: 2,
        });
        // u64 state words above 2^53 must survive (no float coercion).
        snap.rng = vec![u64::MAX, 1 << 60, 3, 4];
        let json = serde_json::to_string(&snap).expect("serialize");
        let back: PipelineSnapshot = serde_json::from_str(&json).expect("parse");
        assert_eq!(back, snap);
    }
}
