//! The single place in the workspace allowed to write files.
//!
//! Crash recovery is only as good as the weakest write: a checkpoint torn
//! mid-`write(2)` is worse than no checkpoint, because resume would trust
//! it. Every persisted artifact therefore goes through [`write_hashed`]:
//!
//! 1. the payload is framed with an FNV-1a 64 content-hash footer,
//! 2. written to a temporary sibling (`.<name>.tmp`) in the target
//!    directory, and
//! 3. atomically renamed over the destination.
//!
//! A reader therefore sees either the complete old file or the complete
//! new file — never a prefix — and [`read_hashed`] refuses anything whose
//! recomputed hash disagrees with the footer (single bit flips included).
//!
//! Durability model: rename atomicity is sufficient for the *process*
//! crashes the failpoint harness injects — a killed process loses nothing
//! `write(2)` already handed to the page cache, so no fsync is issued and
//! the per-step checkpoint tax stays inside the `checkpoint_overhead`
//! budget (< 10 % on quick corpora). Tearing from a power loss is
//! *detected* rather than prevented: the footer check refuses the file
//! and `clear_run_dir` (the CLI's `--force`) recovers the directory, so
//! damaged state is never resumed from either way.
//!
//! Lint rule INC006 enforces the funnel: `File::create`, `fs::write` and
//! `OpenOptions` are banned from library code everywhere except this
//! module, so no code path can quietly bypass the write-rename + hash
//! discipline.

use super::CheckpointError;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// FNV-1a 64-bit content hash.
pub fn fnv64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// [`fnv64`] rendered as the fixed-width hex used in footers and manifests.
pub fn fnv64_hex(bytes: &[u8]) -> String {
    format!("{:016x}", fnv64(bytes))
}

/// Integrity footer marker. The footer is appended after the payload, so
/// the *last* occurrence of this marker is always the real footer — even
/// for binary payloads that could contain the byte sequence by chance.
const FOOTER_PREFIX: &[u8] = b"\n#fnv64:";

fn io_err(path: &Path, source: std::io::Error) -> CheckpointError {
    CheckpointError::Io {
        path: path.to_path_buf(),
        source,
    }
}

fn tmp_sibling(path: &Path) -> Result<PathBuf, CheckpointError> {
    let name =
        path.file_name()
            .and_then(|n| n.to_str())
            .ok_or_else(|| CheckpointError::Corrupt {
                path: path.to_path_buf(),
                detail: "path has no usable file name".to_string(),
            })?;
    Ok(path.with_file_name(format!(".{name}.tmp")))
}

/// Atomically replaces `path` with `bytes` via write-to-temp + rename.
/// The raw building block; checkpoint files should prefer
/// [`write_hashed`], which adds the integrity footer.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CheckpointError> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
        }
    }
    let tmp = tmp_sibling(path)?;
    let mut file = fs::File::create(&tmp).map_err(|e| io_err(&tmp, e))?;
    file.write_all(bytes).map_err(|e| io_err(&tmp, e))?;
    drop(file);
    fs::rename(&tmp, path).map_err(|e| io_err(path, e))
}

/// Atomically writes `payload` framed with an FNV content-hash footer.
/// Returns the payload hash (hex) for manifest bookkeeping.
pub fn write_hashed(path: &Path, payload: &[u8]) -> Result<String, CheckpointError> {
    let hash = fnv64_hex(payload);
    write_framed(path, payload, &hash)?;
    Ok(hash)
}

/// [`write_hashed`] with the payload hash already computed by the caller
/// (checkpoint section dedup hashes every payload anyway; multi-megabyte
/// model sections should not pay the FNV pass twice).
pub fn write_framed(path: &Path, payload: &[u8], hash: &str) -> Result<(), CheckpointError> {
    debug_assert_eq!(hash, fnv64_hex(payload));
    let mut framed = Vec::with_capacity(payload.len() + FOOTER_PREFIX.len() + 17);
    framed.extend_from_slice(payload);
    framed.extend_from_slice(FOOTER_PREFIX);
    framed.extend_from_slice(hash.as_bytes());
    framed.push(b'\n');
    write_atomic(path, &framed)
}

/// Reads a [`write_hashed`] file, verifying the footer. Any corruption —
/// a flipped bit in the payload, a damaged footer, a truncated file —
/// surfaces as a typed [`CheckpointError`]; the payload is returned only
/// when the recomputed hash matches exactly.
pub fn read_hashed(path: &Path) -> Result<Vec<u8>, CheckpointError> {
    let framed = fs::read(path).map_err(|e| io_err(path, e))?;
    let footer_at = framed
        .windows(FOOTER_PREFIX.len())
        .rposition(|w| w == FOOTER_PREFIX)
        .ok_or_else(|| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: "missing integrity footer (truncated or foreign file)".to_string(),
        })?;
    let payload = &framed[..footer_at];
    let footer = &framed[footer_at + FOOTER_PREFIX.len()..];
    // Strict footer shape — exactly 16 hex digits and a closing newline —
    // so a flip of *any* byte, the terminator included, is corruption.
    if footer.len() != 17 || footer[16] != b'\n' || !footer[..16].iter().all(u8::is_ascii_hexdigit)
    {
        return Err(CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: "malformed integrity footer".to_string(),
        });
    }
    let expected = std::str::from_utf8(&footer[..16])
        .map_err(|_| CheckpointError::Corrupt {
            path: path.to_path_buf(),
            detail: "integrity footer is not UTF-8".to_string(),
        })?
        .to_string();
    let actual = fnv64_hex(payload);
    if expected != actual {
        return Err(CheckpointError::HashMismatch {
            path: path.to_path_buf(),
            expected,
            actual,
        });
    }
    Ok(payload.to_vec())
}

/// An append-only log of individually hash-framed records — the serve
/// request journal's on-disk form.
///
/// Unlike the write-rename checkpoint files above, a journal must survive
/// the *writer* dying mid-append: each record is one newline-free payload
/// line followed by its own FNV footer line, so [`read_log`] can verify
/// every complete record independently and classify a torn tail (the
/// bytes after the last verified footer) as damage instead of silently
/// trusting it. Lives in this module because INC006 forbids `OpenOptions`
/// everywhere else.
pub struct AppendLog {
    file: fs::File,
    path: PathBuf,
}

impl AppendLog {
    /// Opens (creating if needed) `path` for appending.
    pub fn open(path: &Path) -> Result<Self, CheckpointError> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                fs::create_dir_all(parent).map_err(|e| io_err(parent, e))?;
            }
        }
        let file = fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)
            .map_err(|e| io_err(path, e))?;
        Ok(AppendLog {
            file,
            path: path.to_path_buf(),
        })
    }

    /// Appends one record. The payload must be a single line (the framing
    /// relies on payloads never containing `\n`; JSON-encoded records
    /// satisfy this by construction). The record and its footer are
    /// written in one `write_all` so a torn append damages at most the
    /// final record, which `read_log` then skips and reports.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), CheckpointError> {
        if payload.contains(&b'\n') {
            return Err(CheckpointError::Corrupt {
                path: self.path.clone(),
                detail: "journal record contains a newline".to_string(),
            });
        }
        let mut framed = Vec::with_capacity(payload.len() + FOOTER_PREFIX.len() + 17);
        framed.extend_from_slice(payload);
        framed.extend_from_slice(FOOTER_PREFIX);
        framed.extend_from_slice(fnv64_hex(payload).as_bytes());
        framed.push(b'\n');
        self.file
            .write_all(&framed)
            .map_err(|e| io_err(&self.path, e))?;
        self.file.flush().map_err(|e| io_err(&self.path, e))
    }
}

/// Reads an [`AppendLog`]: every record whose footer verifies, in append
/// order, plus the byte offset where damage begins if the tail is torn
/// (`None` when the whole file verifies). A missing or hash-mismatched
/// footer anywhere before the end also counts as the start of damage —
/// everything after the last clean record is untrusted.
#[allow(clippy::type_complexity)]
pub fn read_log(path: &Path) -> Result<(Vec<Vec<u8>>, Option<u64>), CheckpointError> {
    let bytes = fs::read(path).map_err(|e| io_err(path, e))?;
    let mut records = Vec::new();
    let mut cursor = 0usize;
    while cursor < bytes.len() {
        // Payloads are newline-free, so the first footer marker past the
        // cursor belongs to the current record.
        let Some(rel) = bytes[cursor..]
            .windows(FOOTER_PREFIX.len())
            .position(|w| w == FOOTER_PREFIX)
        else {
            return Ok((records, Some(cursor as u64)));
        };
        let payload = &bytes[cursor..cursor + rel];
        let footer_start = cursor + rel + FOOTER_PREFIX.len();
        let footer_end = footer_start + 17;
        if footer_end > bytes.len() {
            return Ok((records, Some(cursor as u64)));
        }
        let footer = &bytes[footer_start..footer_end];
        let clean = footer[16] == b'\n'
            && footer[..16].iter().all(u8::is_ascii_hexdigit)
            && footer[..16] == *fnv64_hex(payload).as_bytes();
        if !clean {
            return Ok((records, Some(cursor as u64)));
        }
        records.push(payload.to_vec());
        cursor = footer_end;
    }
    Ok((records, None))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("incite-atomic-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create temp dir");
        dir
    }

    #[test]
    fn fnv_is_stable_and_sensitive() {
        assert_eq!(fnv64(b""), 0xcbf2_9ce4_8422_2325);
        assert_ne!(fnv64(b"abc"), fnv64(b"abd"));
        assert_eq!(fnv64_hex(b"abc").len(), 16);
    }

    #[test]
    fn hashed_roundtrip_and_no_temp_residue() {
        let dir = temp_dir("roundtrip");
        let path = dir.join("state.ckpt");
        let payload = br#"{"step":"bootstrap","n":42}"#;
        let hash = write_hashed(&path, payload).expect("write");
        assert_eq!(hash, fnv64_hex(payload));
        assert_eq!(read_hashed(&path).expect("read"), payload.to_vec());
        // The temp sibling must be gone after the rename.
        assert!(!dir.join(".state.ckpt.tmp").exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overwrite_is_atomic_replacement() {
        let dir = temp_dir("overwrite");
        let path = dir.join("state.ckpt");
        write_hashed(&path, b"first").expect("write 1");
        write_hashed(&path, b"second").expect("write 2");
        assert_eq!(read_hashed(&path).expect("read"), b"second".to_vec());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let dir = temp_dir("flip");
        let path = dir.join("state.ckpt");
        write_hashed(&path, b"checkpoint payload bytes").expect("write");
        let clean = std::fs::read(&path).expect("raw read");
        for i in 0..clean.len() {
            let mut corrupt = clean.clone();
            corrupt[i] ^= 0x01;
            std::fs::write(&path, &corrupt).expect("corrupt write");
            assert!(
                read_hashed(&path).is_err(),
                "flip at byte {i} went undetected"
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn truncation_is_detected() {
        let dir = temp_dir("trunc");
        let path = dir.join("state.ckpt");
        write_hashed(&path, b"a longer payload that will be cut").expect("write");
        let clean = std::fs::read(&path).expect("raw read");
        std::fs::write(&path, &clean[..clean.len() / 2]).expect("truncate");
        assert!(read_hashed(&path).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_log_roundtrips_in_order() {
        let dir = temp_dir("log");
        let path = dir.join("journal.log");
        let mut log = AppendLog::open(&path).expect("open");
        log.append(br#"{"seq":1}"#).expect("append 1");
        log.append(br#"{"seq":2}"#).expect("append 2");
        drop(log);
        // Reopening appends after the existing records.
        let mut log = AppendLog::open(&path).expect("reopen");
        log.append(br#"{"seq":3}"#).expect("append 3");
        let (records, damage) = read_log(&path).expect("read");
        assert_eq!(
            records,
            vec![
                br#"{"seq":1}"#.to_vec(),
                br#"{"seq":2}"#.to_vec(),
                br#"{"seq":3}"#.to_vec()
            ]
        );
        assert_eq!(damage, None);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn append_log_rejects_multiline_payloads() {
        let dir = temp_dir("log-nl");
        let mut log = AppendLog::open(&dir.join("journal.log")).expect("open");
        assert!(matches!(
            log.append(b"two\nlines"),
            Err(CheckpointError::Corrupt { .. })
        ));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_reported_not_trusted() {
        let dir = temp_dir("log-torn");
        let path = dir.join("journal.log");
        let mut log = AppendLog::open(&path).expect("open");
        log.append(b"record one").expect("append");
        log.append(b"record two").expect("append");
        drop(log);
        let clean_len = std::fs::metadata(&path).expect("meta").len();
        // A crash mid-append: half of a third record's bytes.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes.extend_from_slice(b"record thr");
        std::fs::write(&path, &bytes).expect("tear");
        let (records, damage) = read_log(&path).expect("read log");
        assert_eq!(records.len(), 2);
        assert_eq!(damage, Some(clean_len));

        // A flipped payload bit invalidates that record and the tail.
        let mut bytes = std::fs::read(&path).expect("read");
        bytes[2] ^= 0x01;
        std::fs::write(&path, &bytes).expect("flip");
        let (records, damage) = read_log(&path).expect("read log");
        assert!(records.is_empty());
        assert_eq!(damage, Some(0));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_file_is_io_error() {
        let dir = temp_dir("missing");
        match read_hashed(&dir.join("nope.ckpt")) {
            Err(CheckpointError::Io { .. }) => {}
            other => panic!("expected Io error, got {other:?}"),
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
