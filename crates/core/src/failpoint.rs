//! Deterministic fault injection for crash-recovery testing.
//!
//! The checkpoint subsystem's central claim — kill the pipeline at *any*
//! step boundary and resume to a byte-identical outcome — is only credible
//! if every boundary is actually exercised. A [`FailpointRegistry`] is
//! threaded through [`PipelineConfig`]; the pipeline
//! calls [`FailpointRegistry::check`] at each named site, and an armed site
//! aborts the run with a typed [`InjectedFault`] exactly where a crash
//! would. The kill-point sweep in `tests/crash_recovery.rs` iterates
//! [`pipeline_sites`], crashes at each one, resumes, and asserts outcome
//! equality against an uninterrupted run.
//!
//! Everything here is std-only and fully deterministic: sites are static
//! names, arming is explicit, and there is no probability or clock
//! involved — the same armed registry fails at the same site every time.
//!
//! **Release builds carry no cost.** Without the `failpoints` cargo
//! feature the registry is a zero-sized struct and [`check`] is an empty
//! inlined `Ok(())` the optimizer deletes; the fault-injection sweep runs
//! under `cargo test -p incite-core --features failpoints`.
//!
//! [`check`]: FailpointRegistry::check

use crate::pipeline::PipelineConfig;
use crate::task::Task;
use incite_taxonomy::Platform;

/// A failure injected at a named failpoint site.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InjectedFault {
    /// The site that was armed, e.g. `after-round-0`.
    pub site: String,
}

impl std::fmt::Display for InjectedFault {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "injected fault at failpoint `{}`", self.site)
    }
}

impl std::error::Error for InjectedFault {}

/// Deterministic registry of armed failpoint sites.
///
/// Cloning is cheap and preserves the armed set, so a config can be built
/// once and re-armed per sweep iteration. Without the `failpoints`
/// feature this struct is zero-sized and all methods are no-ops.
#[derive(Debug, Clone, Default)]
pub struct FailpointRegistry {
    #[cfg(feature = "failpoints")]
    armed: std::collections::BTreeSet<String>,
}

impl FailpointRegistry {
    /// An empty registry: no site fails.
    pub fn new() -> Self {
        FailpointRegistry::default()
    }

    /// Arms `site`: the next [`check`](Self::check) against it fails.
    /// No-op without the `failpoints` feature.
    pub fn arm(&mut self, site: &str) {
        #[cfg(feature = "failpoints")]
        self.armed.insert(site.to_string());
        #[cfg(not(feature = "failpoints"))]
        let _ = site;
    }

    /// Disarms `site`. No-op without the `failpoints` feature.
    pub fn disarm(&mut self, site: &str) {
        #[cfg(feature = "failpoints")]
        self.armed.remove(site);
        #[cfg(not(feature = "failpoints"))]
        let _ = site;
    }

    /// Whether any site is armed.
    pub fn is_armed(&self) -> bool {
        #[cfg(feature = "failpoints")]
        {
            !self.armed.is_empty()
        }
        #[cfg(not(feature = "failpoints"))]
        false
    }

    /// Fails with [`InjectedFault`] when `site` is armed; the release-mode
    /// hot path compiles to nothing.
    #[inline]
    pub fn check(&self, site: &str) -> Result<(), InjectedFault> {
        #[cfg(feature = "failpoints")]
        if self.armed.contains(site) {
            return Err(InjectedFault {
                site: site.to_string(),
            });
        }
        let _ = site;
        Ok(())
    }
}

/// Every failpoint site `run_pipeline` hits for this config and task, in
/// execution order. The kill-point sweep iterates exactly this list.
///
/// Boundary sites (`after-*`) fire immediately after the step's checkpoint
/// is written — resume skips the completed step. Mid-step sites
/// (`mid-annotation-batch`, `mid-threshold-sweep`) fire inside a step,
/// before its checkpoint — resume replays the whole step from the previous
/// boundary, proving partial work is discarded cleanly.
pub fn pipeline_sites(config: &PipelineConfig, task: Task) -> Vec<String> {
    let mut sites = vec!["after-bootstrap".to_string(), "after-featurize".to_string()];
    if config.al_rounds > 0 {
        sites.push("mid-annotation-batch".to_string());
    }
    for round in 0..config.al_rounds {
        sites.push(format!("after-round-{round}"));
    }
    sites.push("after-eval".to_string());
    sites.push("after-score".to_string());
    let platforms: Vec<Platform> = Platform::ALL
        .into_iter()
        .filter(|p| task.applies_to(*p))
        .collect();
    for (i, platform) in platforms.into_iter().enumerate() {
        // The mid-sweep site fires inside the *second* platform's step —
        // after the first platform's boundary checkpoint, before the
        // second's work — proving a partially completed sweep resumes.
        if i == 1 {
            sites.push("mid-threshold-sweep".to_string());
        }
        sites.push(format!("after-threshold-{}", platform.slug()));
    }
    sites
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unarmed_registry_never_fails() {
        let fp = FailpointRegistry::new();
        assert!(!fp.is_armed());
        assert_eq!(fp.check("after-bootstrap"), Ok(()));
    }

    #[test]
    fn site_list_covers_rounds_and_platforms() {
        let config = PipelineConfig::quick(1);
        let sites = pipeline_sites(&config, Task::Dox);
        assert!(sites.contains(&"after-bootstrap".to_string()));
        assert!(sites.contains(&"after-featurize".to_string()));
        assert!(sites.contains(&"mid-annotation-batch".to_string()));
        assert!(sites.contains(&"after-round-0".to_string()));
        assert!(sites.contains(&"mid-threshold-sweep".to_string()));
        // Dox skips blogs; every other platform gets a threshold site.
        assert!(!sites.contains(&"after-threshold-blogs".to_string()));
        assert!(sites.contains(&"after-threshold-pastes".to_string()));
        // Execution order: bootstrap first, last threshold site last.
        assert_eq!(sites.first().map(String::as_str), Some("after-bootstrap"));
        assert!(sites
            .last()
            .is_some_and(|s| s.starts_with("after-threshold-")));
    }

    #[test]
    fn zero_round_config_has_no_round_sites() {
        let config = PipelineConfig {
            al_rounds: 0,
            ..PipelineConfig::quick(1)
        };
        let sites = pipeline_sites(&config, Task::Cth);
        assert!(!sites.iter().any(|s| s.starts_with("after-round")));
        assert!(!sites.contains(&"mid-annotation-batch".to_string()));
    }

    #[test]
    fn disarm_of_never_armed_site_is_a_noop() {
        // Valid with or without the feature: disarming a site that was
        // never armed changes nothing and panics nowhere.
        let mut fp = FailpointRegistry::new();
        fp.disarm("never-armed");
        assert!(!fp.is_armed());
        assert_eq!(fp.check("never-armed"), Ok(()));
    }

    #[cfg(not(feature = "failpoints"))]
    #[test]
    fn registry_compiles_out_without_the_feature() {
        // The release-mode contract: zero size, and arm is a no-op so
        // check can never fail.
        assert_eq!(std::mem::size_of::<FailpointRegistry>(), 0);
        let mut fp = FailpointRegistry::new();
        fp.arm("after-eval");
        assert!(!fp.is_armed());
        assert_eq!(fp.check("after-eval"), Ok(()));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn double_arm_is_idempotent() {
        // Arming the same site twice is one armed site: a single disarm
        // fully clears it (set semantics, not a counter).
        let mut fp = FailpointRegistry::new();
        fp.arm("after-eval");
        fp.arm("after-eval");
        assert!(fp.check("after-eval").is_err());
        fp.disarm("after-eval");
        assert!(!fp.is_armed());
        assert_eq!(fp.check("after-eval"), Ok(()));
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn check_ordering_is_deterministic() {
        // With several sites armed, the first failure is decided by the
        // caller's check order alone — run the same site sequence twice
        // and the same site fails first both times.
        let mut fp = FailpointRegistry::new();
        fp.arm("after-score");
        fp.arm("after-eval");
        let sequence = ["after-bootstrap", "after-eval", "after-score"];
        let first_failure = |fp: &FailpointRegistry| -> Option<String> {
            sequence
                .iter()
                .find_map(|site| fp.check(site).err().map(|f| f.site))
        };
        let a = first_failure(&fp);
        let b = first_failure(&fp);
        assert_eq!(a.as_deref(), Some("after-eval"));
        assert_eq!(a, b);
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn armed_site_fails_until_disarmed() {
        let mut fp = FailpointRegistry::new();
        fp.arm("after-eval");
        assert!(fp.is_armed());
        let err = fp.check("after-eval").unwrap_err();
        assert_eq!(err.site, "after-eval");
        assert!(err.to_string().contains("after-eval"));
        assert_eq!(fp.check("after-score"), Ok(()));
        fp.disarm("after-eval");
        assert_eq!(fp.check("after-eval"), Ok(()));
    }
}
