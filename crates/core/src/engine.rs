//! The featurize-once scoring engine.
//!
//! `run_pipeline` applies the classifier to every applicable document once
//! per active-learning round and once more for final prediction — at paper
//! scale, 560 M documents scored `al_rounds + 1` times. Tokenization
//! dominates that cost, yet the fitted featurizer never changes across
//! retrains; only the weight vector does. The engine therefore featurizes
//! the corpus exactly once into a CSR [`FeatureMatrix`] (built in parallel
//! on the panic-free executor) and serves every subsequent pass as sparse
//! dot products against the current model:
//! `O(passes × tokenize)` → `O(1 × tokenize + passes × spmv)`.
//!
//! Determinism contract: featurization is a pure per-document function and
//! every scoring pass writes slot `i` from row `i` alone, so scores are
//! byte-identical across thread counts (see [`crate::parallel`]).

use crate::parallel::{map_indexed, ScoreError};
use incite_corpus::{DocId, Document};
use incite_ml::batch::{FeatureMatrix, ROW_TILE};
use incite_ml::{Featurizer, LogisticRegression, TextClassifier};

/// Instrumentation for the featurize-once invariant and the BENCH report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct EngineStats {
    /// Documents held in the feature arena.
    pub documents: usize,
    /// Non-zeros in the CSR arena.
    pub nnz: usize,
    /// Full-corpus featurization passes performed (the invariant: 1).
    pub featurize_passes: usize,
    /// Full-corpus scoring passes served from the arena.
    pub score_passes: usize,
}

/// A corpus featurized once, scorable many times.
#[derive(Debug, Clone)]
pub struct ScoringEngine {
    ids: Vec<DocId>,
    matrix: FeatureMatrix,
    stats: EngineStats,
}

impl ScoringEngine {
    /// Featurizes `docs` (in order, in parallel) into the CSR arena. This
    /// is the single `O(corpus × tokenize)` step; every later
    /// [`Self::score_all`] is an spmv pass.
    pub fn build(
        featurizer: &Featurizer,
        docs: &[&Document],
        threads: usize,
    ) -> Result<Self, ScoreError> {
        let rows = map_indexed(docs.len(), threads, |i| featurizer.features(&docs[i].text))?;
        let matrix = FeatureMatrix::from_rows(featurizer.dimensions(), rows.iter());
        let stats = EngineStats {
            documents: matrix.len(),
            nnz: matrix.nnz(),
            featurize_passes: 1,
            score_passes: 0,
        };
        Ok(ScoringEngine {
            ids: docs.iter().map(|d| d.id).collect(),
            matrix,
            stats,
        })
    }

    /// Scores every cached document against the *current* model — one
    /// parallel sparse-matrix × dense-vector pass, no tokenization. Results
    /// are bit-identical to `classifier.score(&doc.text)` per document and
    /// byte-identical across thread counts.
    pub fn score_all(
        &mut self,
        model: &LogisticRegression,
        threads: usize,
    ) -> Result<Vec<(DocId, f32)>, ScoreError> {
        let scores = score_matrix_tiled(&self.matrix, model, threads)?;
        self.stats.score_passes += 1;
        Ok(self.ids.iter().copied().zip(scores).collect())
    }

    /// Scores raw `texts` against `classifier` — the reusable
    /// single/batch entry the online inference service (`incite-serve`)
    /// serves from.
    ///
    /// Featurizes each text exactly once and scores it as a sparse dot
    /// product, both on the panic-free executor. Slot `i` of the result
    /// is a pure function of `texts[i]` and the model alone, so every
    /// score is bit-identical to `classifier.score(texts[i])` — and
    /// therefore to an offline engine pass over the same documents — at
    /// any thread count and under any batching of the inputs.
    pub fn score_texts(
        classifier: &TextClassifier,
        texts: &[&str],
        threads: usize,
    ) -> Result<Vec<f32>, ScoreError> {
        let featurizer = classifier.featurizer();
        let rows = map_indexed(texts.len(), threads, |i| featurizer.features(texts[i]))?;
        let matrix = FeatureMatrix::from_rows(featurizer.dimensions(), rows.iter());
        score_matrix_tiled(&matrix, classifier.model(), threads)
    }

    /// Number of cached documents.
    pub fn len(&self) -> usize {
        self.matrix.len()
    }

    /// Whether the engine holds no documents.
    pub fn is_empty(&self) -> bool {
        self.matrix.is_empty()
    }

    /// Featurize/score pass counters and arena size.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Overwrites the pass counters with checkpointed values after a
    /// crash-recovery rebuild.
    ///
    /// Resuming a checkpointed pipeline re-featurizes the corpus into a
    /// fresh arena (the CSR buffers are derivable state and are not
    /// persisted), which would reset `featurize_passes`/`score_passes` and
    /// break the byte-identical-outcome contract. Restoring the saved
    /// counters keeps `PipelineOutcome::engine` identical to an
    /// uninterrupted run. The arena-shape fields double as an integrity
    /// check: a `documents`/`nnz` mismatch means the corpus or featurizer
    /// differs from the checkpointed run, and the restore is refused.
    pub fn restore_stats(&mut self, saved: EngineStats) -> Result<(), EngineStats> {
        if saved.documents != self.stats.documents || saved.nnz != self.stats.nnz {
            return Err(self.stats);
        }
        self.stats = saved;
        Ok(())
    }
}

/// One parallel pass of the block-tiled spmv over every matrix row.
///
/// The parallel work unit is a fixed tile of [`ROW_TILE`] consecutive rows
/// (the tiled kernel's natural granularity), scored by
/// [`FeatureMatrix::score_rows`] and flattened back in tile order. Tile `t`
/// always covers rows `[t·ROW_TILE, (t+1)·ROW_TILE)` and the kernel keeps
/// one in-order accumulator per row, so the output is bit-identical to a
/// serial `score_row` sweep at any thread count.
fn score_matrix_tiled(
    matrix: &FeatureMatrix,
    model: &LogisticRegression,
    threads: usize,
) -> Result<Vec<f32>, ScoreError> {
    let rows = matrix.len();
    let tiles = rows.div_ceil(ROW_TILE);
    let tiled: Vec<Vec<f32>> = map_indexed(tiles, threads, |t| {
        let start = t * ROW_TILE;
        let mut out = vec![0.0f32; ROW_TILE.min(rows - start)];
        matrix.score_rows(model, start, &mut out);
        out
    })?;
    Ok(tiled.into_iter().flatten().collect())
}

/// Scores `docs` with `classifier` on `threads` workers.
///
/// One-shot convenience over [`ScoringEngine`]: featurizes once, scores
/// once. Callers that score the same documents repeatedly should hold an
/// engine instead and pay featurization a single time.
pub fn score_corpus(
    classifier: &TextClassifier,
    docs: &[&Document],
    threads: usize,
) -> Result<Vec<(DocId, f32)>, ScoreError> {
    let mut engine = ScoringEngine::build(classifier.featurizer(), docs, threads)?;
    engine.score_all(classifier.model(), threads)
}
