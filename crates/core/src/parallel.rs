//! Panic-free parallel execution for the scoring hot path.
//!
//! The executor maps an index-addressed pure function over `0..n` with a
//! pool of scoped workers that *steal work* via an atomic cursor over
//! fixed-size blocks, instead of pre-splitting into one static chunk per
//! thread. Two properties are load-bearing:
//!
//! * **Determinism.** Block `b` covers the fixed index range
//!   `[b·block_size, (b+1)·block_size)` and every slot `i` is written only
//!   by `f(i)`, so the output is byte-identical for every thread count —
//!   there is no reduction step whose float order could drift.
//! * **Panic safety.** Worker panics are caught with
//!   [`std::panic::catch_unwind`] and surfaced as a typed [`ScoreError`];
//!   a panicking closure can never abort the process or poison the run.
//!   The remaining workers drain on a shared failure flag.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Errors from a parallel scoring pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ScoreError {
    /// A worker closure panicked; the payload message is preserved.
    WorkerPanic(String),
}

impl ScoreError {
    /// Static error-kind descriptor, safe for any diagnostic surface —
    /// unlike `Display`, it can never embed the panic payload.
    pub fn kind(&self) -> &'static str {
        match self {
            ScoreError::WorkerPanic(_) => "scoring worker panicked",
        }
    }
}

impl std::fmt::Display for ScoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ScoreError::WorkerPanic(msg) => write!(f, "scoring worker panicked: {msg}"),
        }
    }
}

impl std::error::Error for ScoreError {}

/// Inputs below this size are not worth spawning threads for.
const SERIAL_CUTOFF: usize = 256;

/// Work-stealing granularity: indices claimed per cursor increment.
const BLOCK: usize = 256;

/// Maps `f` over `0..n` into a `Vec` whose slot `i` holds `f(i)`.
///
/// Runs on `threads` scoped workers pulling fixed-range blocks from an
/// atomic cursor. The result is byte-identical for every `threads` value
/// (slot `i` is always exactly `f(i)`; no cross-slot reduction). A panic
/// inside `f` — on any worker, or on the serial path — is caught and
/// returned as [`ScoreError::WorkerPanic`].
pub fn map_indexed<T, F>(n: usize, threads: usize, f: F) -> Result<Vec<T>, ScoreError>
where
    T: Send + Default,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n < SERIAL_CUTOFF {
        return catch_unwind(AssertUnwindSafe(|| (0..n).map(&f).collect()))
            .map_err(|payload| ScoreError::WorkerPanic(panic_message(payload)));
    }
    run_blocks(n, threads, BLOCK, f)
}

/// [`map_indexed`] for *coarse* work units (whole files, whole shards):
/// the caller picks the block granularity and there is no serial cutoff,
/// so even a few dozen heavy items fan out across workers. Determinism
/// and panic safety are identical to [`map_indexed`] — slot `i` is always
/// exactly `f(i)` regardless of `threads` or `block`.
pub fn map_indexed_coarse<T, F>(
    n: usize,
    threads: usize,
    block: usize,
    f: F,
) -> Result<Vec<T>, ScoreError>
where
    T: Send + Default,
    F: Fn(usize) -> T + Sync,
{
    let threads = threads.max(1).min(n.max(1));
    if threads == 1 || n <= 1 {
        return catch_unwind(AssertUnwindSafe(|| (0..n).map(&f).collect()))
            .map_err(|payload| ScoreError::WorkerPanic(panic_message(payload)));
    }
    run_blocks(n, threads, block.max(1), f)
}

fn run_blocks<T, F>(n: usize, threads: usize, block: usize, f: F) -> Result<Vec<T>, ScoreError>
where
    T: Send + Default,
    F: Fn(usize) -> T + Sync,
{
    let mut out: Vec<T> = Vec::with_capacity(n);
    out.resize_with(n, T::default);

    // Fixed-range output blocks. Each is claimed exactly once through the
    // cursor, so the per-block mutexes are uncontended; they exist to hand
    // a `&mut` region to whichever worker claims the block.
    let slots: Vec<Mutex<&mut [T]>> = out.chunks_mut(block).map(Mutex::new).collect();
    let cursor = AtomicUsize::new(0);
    let failed = AtomicBool::new(false);
    let failure: Mutex<Option<String>> = Mutex::new(None);

    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                while !failed.load(Ordering::Acquire) {
                    let b = cursor.fetch_add(1, Ordering::Relaxed);
                    let Some(slot) = slots.get(b) else { break };
                    let result = catch_unwind(AssertUnwindSafe(|| {
                        let mut cells = lock_unpoisoned(slot);
                        let base = b * block;
                        for (j, cell) in cells.iter_mut().enumerate() {
                            *cell = f(base + j);
                        }
                    }));
                    if let Err(payload) = result {
                        let mut guard = lock_unpoisoned(&failure);
                        guard.get_or_insert_with(|| panic_message(payload));
                        failed.store(true, Ordering::Release);
                        break;
                    }
                }
            });
        }
    });

    drop(slots);
    // `into_inner` can only be poisoned if a worker panicked while holding
    // the failure lock, which `catch_unwind` prevents; recover either way.
    let recorded = match failure.into_inner() {
        Ok(msg) => msg,
        Err(poisoned) => poisoned.into_inner(),
    };
    match recorded {
        Some(msg) => Err(ScoreError::WorkerPanic(msg)),
        None => Ok(out),
    }
}

/// Locks a mutex, recovering the data from a poisoned lock (the poisoning
/// panic is already captured separately by `catch_unwind`).
fn lock_unpoisoned<'a, T: ?Sized>(m: &'a Mutex<T>) -> std::sync::MutexGuard<'a, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// Renders a panic payload as text, without leaking its content.
///
/// `&str` payloads come from literal `panic!("…")` messages and carry no
/// runtime data, so they pass through. Formatted (`String`) payloads may
/// interpolate whatever the worker was holding — including document
/// text — so only their shape (length + content digest) survives. This
/// is the registered `panic_message` sanitizer in the incite-lint taint
/// model; the structure here is what makes that registration true.
fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        format!(
            "formatted panic payload redacted ({} bytes, fnv64 {:016x})",
            s.len(),
            incite_textkit::fnv1a(s.as_bytes(), 0)
        )
    } else {
        "worker panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn output_is_identical_across_thread_counts() {
        // Odd size: exercises the final short block.
        let n = 1013;
        let serial = map_indexed(n, 1, |i| (i * 31) as u64).unwrap();
        for threads in [2, 3, 8, 64] {
            let parallel = map_indexed(n, threads, |i| (i * 31) as u64).unwrap();
            assert_eq!(serial, parallel, "threads = {threads}");
        }
    }

    #[test]
    fn empty_and_tiny_inputs() {
        assert_eq!(map_indexed(0, 4, |i| i).unwrap(), Vec::<usize>::new());
        assert_eq!(map_indexed(3, 4, |i| i).unwrap(), vec![0, 1, 2]);
    }

    #[test]
    fn coarse_output_is_identical_across_threads_and_blocks() {
        let serial = map_indexed_coarse(83, 1, 1, |i| (i * 17) as u64).unwrap();
        for threads in [2, 3, 8] {
            for block in [1, 4, 97] {
                let parallel = map_indexed_coarse(83, threads, block, |i| (i * 17) as u64).unwrap();
                assert_eq!(serial, parallel, "threads = {threads}, block = {block}");
            }
        }
        assert_eq!(
            map_indexed_coarse(0, 4, 1, |i| i).unwrap(),
            Vec::<usize>::new()
        );
    }

    #[test]
    fn coarse_worker_panic_becomes_score_error() {
        let result = map_indexed_coarse(40, 4, 1, |i| {
            if i == 7 {
                panic!("injected coarse failure");
            }
            i
        });
        assert!(matches!(result, Err(ScoreError::WorkerPanic(_))));
    }

    #[test]
    fn worker_panic_becomes_score_error() {
        let result = map_indexed(2_000, 4, |i| {
            if i == 777 {
                panic!("injected failure at {i}");
            }
            i as u32
        });
        match result {
            // Formatted panic payloads may interpolate worker inputs, so
            // only their shape (length + digest) survives — the payload
            // text itself must NOT appear in the error.
            Err(ScoreError::WorkerPanic(msg)) => {
                assert!(
                    msg.contains("redacted") && msg.contains("bytes, fnv64 "),
                    "message: {msg}"
                );
                assert!(!msg.contains("injected failure"), "payload leaked: {msg}");
                assert_eq!(
                    ScoreError::WorkerPanic(msg).kind(),
                    "scoring worker panicked"
                );
            }
            other => panic!("expected WorkerPanic, got {other:?}"),
        }
    }

    #[test]
    fn serial_path_panic_becomes_score_error() {
        let result = map_indexed(10, 1, |i| {
            if i == 5 {
                panic!("small input failure");
            }
            i
        });
        assert_eq!(
            result,
            Err(ScoreError::WorkerPanic("small input failure".to_string()))
        );
    }

    #[test]
    fn error_renders_its_message() {
        let err = ScoreError::WorkerPanic("boom".into());
        assert_eq!(err.to_string(), "scoring worker panicked: boom");
    }
}
