//! Seed-set construction (§5.1 "Initial Annotations").
//!
//! * **CTH:** run the Figure 4 keyword query over the boards (the paper
//!   initially queried only 4chan/8chan/8kun "since we expected that they
//!   would have the highest concentration of calls to harassment"), then
//!   have three expert annotators label the hits.
//! * **Dox:** the paper reuses annotations from Snyder et al.'s pastebin
//!   study plus Doxbin positives. We simulate that inheritance by expert-
//!   labeling a seed sample drawn from the pastes platform (plus a slice of
//!   boards for negatives variety).

use crate::query::figure4_query;
use crate::task::Task;
use incite_annotate::Annotator;
use incite_corpus::{Corpus, DocId};
use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;

/// A labeled seed document.
#[derive(Debug, Clone)]
pub struct Seed {
    pub id: DocId,
    pub text: String,
    pub label: bool,
}

/// Outcome of the bootstrap stage.
#[derive(Debug, Clone)]
pub struct BootstrapOutcome {
    pub seeds: Vec<Seed>,
    /// Query (or seed-pool) candidate count before annotation.
    pub candidates: usize,
}

/// Builds the seed set for a task. `max_seeds` caps expert effort (the
/// paper's initial sets are ~1.4 K CTH and ~11.6 K dox documents).
pub fn bootstrap(
    corpus: &Corpus,
    task: Task,
    max_seeds: usize,
    expert: &Annotator,
    rng: &mut StdRng,
) -> BootstrapOutcome {
    match task {
        Task::Cth => {
            let query = figure4_query();
            let mut hits: Vec<_> = corpus
                .by_platform(Platform::Boards)
                .filter(|d| query.matches(&d.text))
                .collect();
            let candidates = hits.len();
            hits.shuffle(rng);
            hits.truncate(max_seeds);
            // The query is high recall / low precision; experts sort hits
            // into positives and negatives.
            let seeds = hits
                .into_iter()
                .map(|d| Seed {
                    id: d.id,
                    text: d.text.clone(),
                    label: expert.annotate(task.truth(d), rng),
                })
                .collect();
            BootstrapOutcome { seeds, candidates }
        }
        Task::Dox => {
            // Seed pool: pastes (prior-work territory) plus a boards slice.
            let mut pool: Vec<_> = corpus
                .by_platform(Platform::Pastes)
                .chain(corpus.by_platform(Platform::Boards).take(max_seeds / 2))
                .collect();
            let candidates = pool.len();
            pool.shuffle(rng);
            // Prior work's annotations skew positive-rich (1,227 positive /
            // 10,387 negative); bias the sample toward known doxes the way
            // Doxbin did, then expert-label.
            let mut positives: Vec<_> = pool
                .iter()
                .copied()
                .filter(|d| d.truth.is_dox)
                .take(max_seeds / 4)
                .collect();
            let negatives: Vec<_> = pool
                .iter()
                .copied()
                .filter(|d| !d.truth.is_dox)
                .take(max_seeds - positives.len())
                .collect();
            positives.extend(negatives);
            let seeds = positives
                .into_iter()
                .map(|d| Seed {
                    id: d.id,
                    text: d.text.clone(),
                    label: expert.annotate(task.truth(d), rng),
                })
                .collect();
            BootstrapOutcome { seeds, candidates }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};
    use rand::SeedableRng;

    fn setup() -> (Corpus, StdRng) {
        (generate(&CorpusConfig::tiny(88)), StdRng::seed_from_u64(9))
    }

    #[test]
    fn cth_bootstrap_finds_mobilizing_posts() {
        let (corpus, mut rng) = setup();
        let expert = Annotator::oracle("e");
        let out = bootstrap(&corpus, Task::Cth, 500, &expert, &mut rng);
        assert!(out.candidates > 0, "query matched nothing");
        assert!(!out.seeds.is_empty());
        // With an oracle expert, positives among seeds must be true CTH.
        let positives = out.seeds.iter().filter(|s| s.label).count();
        assert!(positives > 0, "no positive seeds found");
    }

    #[test]
    fn cth_query_has_high_recall_on_planted_cth() {
        let (corpus, _) = setup();
        let query = figure4_query();
        let cth: Vec<_> = corpus
            .by_platform(Platform::Boards)
            .filter(|d| d.truth.is_cth)
            .collect();
        let matched = cth.iter().filter(|d| query.matches(&d.text)).count();
        let recall = matched as f64 / cth.len().max(1) as f64;
        // The Figure 4 query is a *seed* query, not a detector: it misses
        // mobilizers and pronouns outside its literal lists (that gap is
        // what the active-learning rounds close). A third to a half of
        // planted CTH is the expected yield.
        assert!(recall > 0.3, "bootstrap recall too low: {recall}");
        assert!(
            recall < 0.9,
            "query suspiciously matches everything: {recall}"
        );
    }

    #[test]
    fn dox_bootstrap_is_positive_biased() {
        let (corpus, mut rng) = setup();
        let expert = Annotator::oracle("e");
        let out = bootstrap(&corpus, Task::Dox, 400, &expert, &mut rng);
        let positives = out.seeds.iter().filter(|s| s.label).count();
        assert!(positives > 0);
        // Positive rate should be well above the corpus base rate.
        let rate = positives as f64 / out.seeds.len() as f64;
        assert!(rate > 0.05, "seed positive rate {rate}");
    }

    #[test]
    fn seed_cap_is_respected() {
        let (corpus, mut rng) = setup();
        let expert = Annotator::expert("e");
        for task in Task::ALL {
            let out = bootstrap(&corpus, task, 50, &expert, &mut rng);
            assert!(out.seeds.len() <= 50, "{task}: {}", out.seeds.len());
        }
    }
}
