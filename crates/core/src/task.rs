//! The two detection tasks.

use incite_corpus::Document;
use incite_taxonomy::Platform;
use serde::{Deserialize, Serialize};
use std::fmt;

/// A filtering task: calls to harassment or doxes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Task {
    Cth,
    Dox,
}

impl Task {
    /// Both tasks.
    pub const ALL: [Task; 2] = [Task::Cth, Task::Dox];

    /// Whether the task runs on a platform. The CTH task skips pastes
    /// (no interactivity; Table 2) and blogs (handled qualitatively, §8);
    /// the dox classifier also skips blogs ("the classifiers … did not
    /// perform well on the blog data", §8.1).
    pub fn applies_to(self, platform: Platform) -> bool {
        match self {
            Task::Cth => platform.cth_task_applies(),
            Task::Dox => platform != Platform::Blogs,
        }
    }

    /// The planted ground truth for this task.
    pub fn truth(self, doc: &Document) -> bool {
        match self {
            Task::Cth => doc.truth.is_cth,
            Task::Dox => doc.truth.is_dox,
        }
    }

    /// Table 3's per-task max text length (128 CTH / 512 dox).
    pub fn text_length(self) -> usize {
        match self {
            Task::Cth => 128,
            Task::Dox => 512,
        }
    }

    /// Stable identifier.
    pub fn slug(self) -> &'static str {
        match self {
            Task::Cth => "cth",
            Task::Dox => "dox",
        }
    }
}

impl fmt::Display for Task {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Task::Cth => "Call to harassment",
            Task::Dox => "Doxing",
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn platform_applicability() {
        assert!(Task::Cth.applies_to(Platform::Boards));
        assert!(!Task::Cth.applies_to(Platform::Pastes));
        assert!(!Task::Cth.applies_to(Platform::Blogs));
        assert!(Task::Dox.applies_to(Platform::Pastes));
        assert!(!Task::Dox.applies_to(Platform::Blogs));
    }

    #[test]
    fn text_lengths_match_table3() {
        assert_eq!(Task::Cth.text_length(), 128);
        assert_eq!(Task::Dox.text_length(), 512);
    }
}
