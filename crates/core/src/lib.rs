//! # incite-core
//!
//! The paper's primary contribution: the **filtering pipelines** that
//! discover calls to harassment and doxes inside very large platform
//! corpora (Figure 1). Two parallel pipelines — CTH and dox — share the
//! same machinery:
//!
//! 1. **Bootstrap** ([`bootstrap`]) — a keyword query (Figure 4, expressed
//!    in the [`query`] DSL) seeds the CTH task from the boards; the dox
//!    task seeds from prior-work-style annotations on pastes (§5.1). A
//!    small expert pass labels the seeds.
//! 2. **Classifier training** — an [`incite_ml::TextClassifier`] is
//!    fine-tuned on the labeled seeds (the distilBERT substitution;
//!    DESIGN.md §2).
//! 3. **Active learning** ([`active_learning`]) — the classifier scores the
//!    corpus, documents are sampled evenly across ten predicted-score
//!    deciles, crowd annotators label them (two + tie-break), and the
//!    classifier retrains; repeated for a configurable number of rounds
//!    (§5.3: "we then repeated this process twice per data set").
//! 4. **Full prediction** — the final classifier scores every document.
//!    All full-corpus passes (each round plus the final one) are served by
//!    the featurize-once [`engine::ScoringEngine`]: the corpus is tokenized
//!    a single time into a CSR arena and every pass is a parallel sparse
//!    dot-product sweep on the panic-free [`parallel`] executor.
//! 5. **Threshold selection** ([`threshold`]) — the §5.5 precision-driven
//!    per-platform search.
//! 6. **Final expert annotation** — documents above each platform's
//!    threshold are annotated (exhaustively when small, sampled when
//!    large), yielding the true-positive "annotated" data sets.
//!
//! [`pipeline::run_pipeline`] wires the stages together and returns a
//! [`pipeline::PipelineOutcome`] carrying everything the Figure 1 / Tables
//! 2–4 reproductions and the downstream analyses need.

pub mod accounting;
pub mod active_learning;
pub mod attack_classifier;
pub mod bootstrap;
pub mod checkpoint;
pub mod engine;
pub mod failpoint;
pub mod parallel;
pub mod pipeline;
pub mod query;
pub mod task;
pub mod threshold;

pub use attack_classifier::AttackTypeClassifier;
pub use checkpoint::{
    clear_run_dir, load_latest_classifier, load_latest_classifier_with_hash, CheckpointError,
    Checkpointer, PipelineSnapshot,
};
pub use engine::{score_corpus, EngineStats, ScoringEngine};
pub use failpoint::{pipeline_sites, FailpointRegistry, InjectedFault};
pub use parallel::ScoreError;
pub use pipeline::{
    run_pipeline, run_pipeline_resumable, ConfigError, PipelineConfig, PipelineError,
    PipelineOutcome,
};
pub use query::Query;
pub use task::Task;
