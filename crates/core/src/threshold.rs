//! Per-platform threshold selection (§5.5).
//!
//! The paper's procedure, reproduced step for step: start at `t = 0.5`,
//! expert-annotate a sample above `t` to estimate precision; while the
//! precision is too low to make manual annotation worthwhile, raise `t`
//! and re-evaluate; once precision is sufficient, probe *lower* thresholds
//! and keep the lowest one whose precision stays close to the higher one's
//! ("as a way to ensure we were not risking recall"). The chat data set is
//! split into Discord and Telegram with separate thresholds.

use crate::task::Task;
use incite_annotate::Annotator;
use incite_corpus::{Corpus, DocId};
use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Parameters for the threshold search.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdConfig {
    /// Precision considered "sufficiently high" to stop raising `t`.
    pub target_precision: f64,
    /// Precision slack allowed when probing lower thresholds.
    pub precision_slack: f64,
    /// Sample size per precision estimate.
    pub probe_sample: usize,
    /// Candidate thresholds, ascending (the paper lands on values like
    /// 0.5, 0.6, 0.7, 0.8, 0.9, 0.935).
    pub candidates: [f64; 6],
}

impl Default for ThresholdConfig {
    fn default() -> Self {
        ThresholdConfig {
            target_precision: 0.55,
            precision_slack: 0.10,
            probe_sample: 150,
            candidates: [0.5, 0.6, 0.7, 0.8, 0.9, 0.935],
        }
    }
}

/// The outcome for one platform (a Table 4 row).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlatformThreshold {
    pub platform: Platform,
    pub threshold: f64,
    /// Documents above the threshold.
    pub above_threshold: usize,
    /// Documents expert-annotated (all of them when the set is small).
    pub annotated: usize,
    /// Confirmed true positives among the annotated.
    pub true_positives: usize,
    /// Whether every above-threshold document was annotated.
    pub exhaustive: bool,
    /// Ids of all documents above the threshold (for overlap analyses).
    pub above_ids: Vec<DocId>,
    /// Ids of the expert-confirmed true positives (the "annotated" set).
    pub positive_ids: Vec<DocId>,
}

impl PlatformThreshold {
    /// Annotation precision.
    pub fn precision(&self) -> f64 {
        if self.annotated == 0 {
            0.0
        } else {
            self.true_positives as f64 / self.annotated as f64
        }
    }
}

/// Estimates precision above a threshold by expert-annotating a sample.
fn probe_precision(
    ids_above: &[DocId],
    truth: &BTreeMap<DocId, bool>,
    expert: &Annotator,
    sample: usize,
    rng: &mut StdRng,
) -> f64 {
    if ids_above.is_empty() {
        return 0.0;
    }
    let mut pool: Vec<DocId> = ids_above.to_vec();
    pool.shuffle(rng);
    pool.truncate(sample);
    // `sample == 0` (a degenerate `probe_sample`) used to fall through to
    // `0 / 0.0` and return NaN, which silently satisfied neither branch of
    // the threshold search. An empty probe estimates nothing: report zero
    // precision instead.
    if pool.is_empty() {
        return 0.0;
    }
    let positive = pool
        .iter()
        .filter(|id| expert.annotate(*truth.get(id).unwrap_or(&false), rng))
        .count();
    positive as f64 / pool.len() as f64
}

/// Runs the §5.5 search for one platform and performs the final annotation
/// pass at the selected threshold. `annotation_budget` is the maximum
/// number of documents the experts annotate; when the above-threshold set
/// fits inside it, annotation is exhaustive (the paper's ⋄/* rows).
#[allow(clippy::too_many_arguments)]
pub fn select_threshold(
    corpus: &Corpus,
    task: Task,
    platform: Platform,
    scores: &[(DocId, f32)],
    expert: &Annotator,
    config: ThresholdConfig,
    annotation_budget: usize,
    rng: &mut StdRng,
) -> PlatformThreshold {
    let truth: BTreeMap<DocId, bool> = corpus
        .by_platform(platform)
        .map(|d| (d.id, task.truth(d)))
        .collect();
    let platform_scores: Vec<(DocId, f32)> = scores
        .iter()
        .filter(|(id, _)| truth.contains_key(id))
        .copied()
        .collect();

    let above = |t: f64| -> Vec<DocId> {
        platform_scores
            .iter()
            .filter(|(_, s)| *s as f64 > t)
            .map(|(id, _)| *id)
            .collect()
    };

    // Phase 1: raise t from 0.5 until precision is sufficient (or we run
    // out of candidates).
    let mut chosen_idx = 0;
    let mut chosen_precision = 0.0;
    for (i, &t) in config.candidates.iter().enumerate() {
        let ids = above(t);
        let p = probe_precision(&ids, &truth, expert, config.probe_sample, rng);
        chosen_idx = i;
        chosen_precision = p;
        if p >= config.target_precision {
            break;
        }
    }

    // Phase 2: probe lower thresholds; keep the lowest whose precision is
    // within the slack of the chosen one (recall safety).
    while chosen_idx > 0 {
        let lower = config.candidates[chosen_idx - 1];
        let ids = above(lower);
        let p = probe_precision(&ids, &truth, expert, config.probe_sample, rng);
        if p + config.precision_slack >= chosen_precision
            && p >= config.target_precision - config.precision_slack
        {
            chosen_idx -= 1;
            chosen_precision = p;
        } else {
            break;
        }
    }

    let threshold = config.candidates[chosen_idx];
    let ids_above = above(threshold);

    // Final expert annotation pass.
    let exhaustive = ids_above.len() <= annotation_budget;
    let mut to_annotate = ids_above.clone();
    if !exhaustive {
        to_annotate.shuffle(rng);
        to_annotate.truncate(annotation_budget);
    }
    let positive_ids: Vec<DocId> = to_annotate
        .iter()
        .filter(|id| expert.annotate(*truth.get(id).unwrap_or(&false), rng))
        .copied()
        .collect();

    PlatformThreshold {
        platform,
        threshold,
        above_threshold: ids_above.len(),
        annotated: to_annotate.len(),
        true_positives: positive_ids.len(),
        exhaustive,
        above_ids: ids_above,
        positive_ids,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use incite_corpus::{generate, CorpusConfig};
    use rand::SeedableRng;

    /// Synthetic scores where truth is recoverable: positives score high.
    fn fake_scores(corpus: &Corpus, task: Task, noise: f32) -> Vec<(DocId, f32)> {
        let mut rng = StdRng::seed_from_u64(1);
        use rand::Rng;
        corpus
            .documents
            .iter()
            .map(|d| {
                let base: f32 = if task.truth(d) { 0.9 } else { 0.2 };
                let jitter: f32 = rng.gen_range(-noise..noise);
                (d.id, (base + jitter).clamp(0.0, 1.0))
            })
            .collect()
    }

    #[test]
    fn clean_scores_select_a_low_threshold() {
        let corpus = generate(&CorpusConfig::tiny(3));
        let scores = fake_scores(&corpus, Task::Dox, 0.05);
        let expert = Annotator::oracle("e");
        let mut rng = StdRng::seed_from_u64(2);
        let out = select_threshold(
            &corpus,
            Task::Dox,
            Platform::Pastes,
            &scores,
            &expert,
            ThresholdConfig::default(),
            10_000,
            &mut rng,
        );
        // Positives at ~0.9, negatives at ~0.2: t = 0.5 is already precise.
        assert_eq!(out.threshold, 0.5);
        assert!(out.precision() > 0.9, "precision {}", out.precision());
        assert!(out.exhaustive);
    }

    #[test]
    fn noisy_scores_push_threshold_up() {
        let corpus = generate(&CorpusConfig::tiny(3));
        // Heavy noise: negatives frequently score above 0.5.
        let mut scores = fake_scores(&corpus, Task::Dox, 0.05);
        use rand::Rng;
        let mut jrng = StdRng::seed_from_u64(7);
        for (id, s) in scores.iter_mut() {
            let doc = corpus.documents.iter().find(|d| d.id == *id).unwrap();
            if !doc.truth.is_dox && jrng.gen_bool(0.3) {
                *s = jrng.gen_range(0.5..0.85);
            }
        }
        let expert = Annotator::oracle("e");
        let mut rng = StdRng::seed_from_u64(2);
        let out = select_threshold(
            &corpus,
            Task::Dox,
            Platform::Pastes,
            &scores,
            &expert,
            ThresholdConfig::default(),
            10_000,
            &mut rng,
        );
        assert!(out.threshold > 0.5, "threshold {}", out.threshold);
    }

    #[test]
    fn budget_forces_sampled_annotation() {
        let corpus = generate(&CorpusConfig::tiny(3));
        let scores = fake_scores(&corpus, Task::Dox, 0.05);
        let expert = Annotator::oracle("e");
        let mut rng = StdRng::seed_from_u64(2);
        let out = select_threshold(
            &corpus,
            Task::Dox,
            Platform::Pastes,
            &scores,
            &expert,
            ThresholdConfig::default(),
            10,
            &mut rng,
        );
        assert!(!out.exhaustive);
        assert_eq!(out.annotated, 10);
        assert!(out.above_threshold > 10);
    }

    #[test]
    fn empty_platform_yields_empty_row() {
        let corpus = generate(&CorpusConfig::tiny(3));
        let expert = Annotator::oracle("e");
        let mut rng = StdRng::seed_from_u64(2);
        let out = select_threshold(
            &corpus,
            Task::Cth,
            Platform::Pastes, // no CTH on pastes
            &[],
            &expert,
            ThresholdConfig::default(),
            100,
            &mut rng,
        );
        assert_eq!(out.above_threshold, 0);
        assert_eq!(out.true_positives, 0);
    }
}
