//! Figure 1 stage accounting.
//!
//! Figure 1 labels each pipeline edge with a document count (raw corpus →
//! annotations → predicted → thresholded → sampled/annotated → true
//! positives). [`StageCounts`] accumulates the same numbers for a run so
//! the `repro` binary can print our Figure 1 next to the paper's.

use serde::{Deserialize, Serialize};

/// Document counts at each pipeline stage for one task.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageCounts {
    /// Raw corpus size the pipeline scanned (step 3 in Figure 1).
    pub raw_documents: u64,
    /// Bootstrap query hits (CTH) or seed pool size (dox).
    pub bootstrap_candidates: u64,
    /// Expert-labeled seed annotations (positive + negative).
    pub seed_annotations: u64,
    /// Crowd annotations collected across active-learning rounds.
    pub crowd_annotations: u64,
    /// Total training annotations at the final round (Table 2 totals).
    pub training_annotations: u64,
    /// Documents scored by the final classifier (= raw documents on
    /// applicable platforms).
    pub predicted_documents: u64,
    /// Documents above the selected per-platform thresholds (step 5).
    pub above_threshold: u64,
    /// Documents annotated in the final expert pass (step 6).
    pub final_annotated: u64,
    /// Confirmed true positives (step 7).
    pub true_positives: u64,
}

impl StageCounts {
    /// Final-pass precision (true positives / final annotated).
    pub fn final_precision(&self) -> f64 {
        if self.final_annotated == 0 {
            0.0
        } else {
            self.true_positives as f64 / self.final_annotated as f64
        }
    }

    /// Overall funnel reduction factor raw → above threshold.
    pub fn reduction_factor(&self) -> f64 {
        if self.above_threshold == 0 {
            f64::INFINITY
        } else {
            self.raw_documents as f64 / self.above_threshold as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn precision_and_reduction() {
        let c = StageCounts {
            raw_documents: 1_000_000,
            above_threshold: 1_000,
            final_annotated: 500,
            true_positives: 400,
            ..Default::default()
        };
        assert!((c.final_precision() - 0.8).abs() < 1e-12);
        assert!((c.reduction_factor() - 1_000.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_counts_do_not_divide_by_zero() {
        let c = StageCounts::default();
        assert_eq!(c.final_precision(), 0.0);
        assert!(c.reduction_factor().is_infinite());
    }
}
