//! Checkpoint integrity under corruption (satellite of DESIGN.md §12).
//!
//! The resume contract is "verified state or typed refusal": a single
//! flipped byte in any persisted file — model weights or the manifest
//! itself — must surface as a hash-mismatch [`CheckpointError`], never a
//! panic and never a silent resume from damaged state. After
//! [`clear_run_dir`] (the CLI's `--force`), a fresh run succeeds in the
//! same directory. These tests need no cargo feature: they corrupt real
//! files, not failpoints.

use incite_core::pipeline::PipelineError;
use incite_core::{clear_run_dir, run_pipeline_resumable, CheckpointError, PipelineConfig, Task};
use incite_corpus::{generate, Corpus, CorpusConfig};
use std::path::{Path, PathBuf};

fn corpus() -> Corpus {
    generate(&CorpusConfig::tiny(404))
}

fn run_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("incite-integrity-{tag}-{}", std::process::id()))
}

/// Completes a checkpointed run, leaving a full run directory behind.
fn checkpointed_run(dir: &Path, config: &PipelineConfig) {
    clear_run_dir(dir).expect("clean run dir");
    run_pipeline_resumable(&corpus(), Task::Dox, config, dir).expect("initial run");
}

fn find_file(dir: &Path, suffix: &str) -> PathBuf {
    let mut names: Vec<PathBuf> = std::fs::read_dir(dir)
        .expect("read run dir")
        .filter_map(|e| e.ok().map(|e| e.path()))
        .filter(|p| {
            p.file_name()
                .and_then(|n| n.to_str())
                .is_some_and(|n| n.ends_with(suffix))
        })
        .collect();
    names.sort();
    names
        .pop()
        .unwrap_or_else(|| panic!("no {suffix} file in {}", dir.display()))
}

fn flip_byte(path: &Path, offset: usize) {
    let mut raw = std::fs::read(path).expect("read file");
    let at = offset.min(raw.len() - 1);
    raw[at] ^= 0x01;
    std::fs::write(path, &raw).expect("write corrupted file");
}

fn expect_integrity_refusal(result: Result<impl std::fmt::Debug, PipelineError>, what: &str) {
    match result {
        Err(PipelineError::Checkpoint(
            CheckpointError::HashMismatch { .. } | CheckpointError::Corrupt { .. },
        )) => {}
        other => panic!("{what}: expected integrity refusal, got {other:?}"),
    }
}

#[test]
fn corrupt_weights_file_refuses_resume() {
    let config = PipelineConfig::quick(21);
    let dir = run_dir("weights");
    checkpointed_run(&dir, &config);

    let model = find_file(&dir, ".model.ckpt");
    flip_byte(&model, 100);
    expect_integrity_refusal(
        run_pipeline_resumable(&corpus(), Task::Dox, &config, &dir),
        "corrupt weights",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_manifest_refuses_resume() {
    let config = PipelineConfig::quick(22);
    let dir = run_dir("manifest");
    checkpointed_run(&dir, &config);

    flip_byte(&dir.join("MANIFEST.ckpt"), 50);
    expect_integrity_refusal(
        run_pipeline_resumable(&corpus(), Task::Dox, &config, &dir),
        "corrupt manifest",
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_ledger_section_refuses_resume() {
    let config = PipelineConfig::quick(23);
    let dir = run_dir("ledger");
    checkpointed_run(&dir, &config);

    let ledger = find_file(&dir, ".ledger.ckpt");
    flip_byte(&ledger, 200);
    expect_integrity_refusal(
        run_pipeline_resumable(&corpus(), Task::Dox, &config, &dir),
        "corrupt annotation ledger",
    );
    std::fs::remove_dir_all(&dir).ok();
}

/// The `--force` path: after corruption is detected, clearing the run
/// directory lets a fresh run succeed in the same location — and produce
/// the same outcome as an untouched directory would.
#[test]
fn force_clear_recovers_after_corruption() {
    let config = PipelineConfig::quick(24);
    let dir = run_dir("force");
    checkpointed_run(&dir, &config);
    let corpus = corpus();
    let reference = run_pipeline_resumable(&corpus, Task::Dox, &config, &dir).expect("reference");

    flip_byte(&dir.join("MANIFEST.ckpt"), 50);
    expect_integrity_refusal(
        run_pipeline_resumable(&corpus, Task::Dox, &config, &dir),
        "corrupt manifest before --force",
    );

    clear_run_dir(&dir).expect("force clear");
    let fresh = run_pipeline_resumable(&corpus, Task::Dox, &config, &dir).expect("fresh run");
    assert_eq!(fresh, reference);
    std::fs::remove_dir_all(&dir).ok();
}

/// A run directory checkpointed under one config must not silently serve
/// a different one.
#[test]
fn different_config_is_refused_not_reused() {
    let config = PipelineConfig::quick(25);
    let dir = run_dir("config-drift");
    checkpointed_run(&dir, &config);

    let mut drifted = PipelineConfig::quick(25);
    drifted.hash_bits = 14;
    match run_pipeline_resumable(&corpus(), Task::Dox, &drifted, &dir) {
        Err(PipelineError::Checkpoint(CheckpointError::Incompatible { .. })) => {}
        other => panic!("expected Incompatible, got {other:?}"),
    }
    // Same directory, wrong task: also refused.
    match run_pipeline_resumable(&corpus(), Task::Cth, &config, &dir) {
        Err(PipelineError::Checkpoint(CheckpointError::Incompatible { .. })) => {}
        other => panic!("expected Incompatible, got {other:?}"),
    }
    std::fs::remove_dir_all(&dir).ok();
}
