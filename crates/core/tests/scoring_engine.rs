//! Integration tests for the featurize-once scoring engine: the
//! determinism contract across thread counts, panic containment, and
//! cache coherence across retrains.

use incite_core::parallel::{map_indexed, ScoreError};
use incite_core::{score_corpus, ScoringEngine, Task};
use incite_corpus::{generate, CorpusConfig, Document};
use incite_ml::{FeaturizerConfig, TextClassifier, TrainConfig};

/// An odd-sized document slice (not a multiple of the executor's block
/// size) so the tail block is exercised.
fn corpus_slice(corpus: &incite_corpus::Corpus, n: usize) -> Vec<&Document> {
    let docs: Vec<&Document> = corpus.documents.iter().take(n).collect();
    assert_eq!(docs.len(), n, "corpus smaller than requested slice");
    docs
}

fn trained_classifier(docs: &[&Document]) -> TextClassifier {
    let labeled: Vec<(&str, bool)> = docs
        .iter()
        .take(600)
        .map(|d| (d.text.as_str(), Task::Dox.truth(d)))
        .collect();
    TextClassifier::train(labeled, FeaturizerConfig::default(), TrainConfig::default())
}

#[test]
fn scores_are_byte_identical_across_thread_counts() {
    let corpus = generate(&CorpusConfig::tiny(11));
    let docs = corpus_slice(&corpus, 1013);
    let classifier = trained_classifier(&docs);

    let reference = score_corpus(&classifier, &docs, 1).expect("serial scoring");
    for threads in [2usize, 3, 8] {
        let parallel = score_corpus(&classifier, &docs, threads).expect("parallel scoring");
        assert_eq!(reference.len(), parallel.len());
        for ((id_a, score_a), (id_b, score_b)) in reference.iter().zip(&parallel) {
            assert_eq!(id_a, id_b, "document order must be preserved");
            assert_eq!(
                score_a.to_bits(),
                score_b.to_bits(),
                "score for {id_a:?} differs at {threads} threads"
            );
        }
    }
}

#[test]
fn worker_panic_surfaces_as_score_error() {
    // A panic deep inside one parallel task must come back as a typed
    // error, not abort the process or poison the other workers.
    let result: Result<Vec<usize>, ScoreError> = map_indexed(1000, 4, |i| {
        if i == 617 {
            panic!("injected failure at {i}");
        }
        i
    });
    let err = result.expect_err("the injected panic must surface");
    let ScoreError::WorkerPanic(message) = err;
    // Formatted payloads may interpolate worker inputs, so only their
    // shape survives: the error is typed and descriptive, but the
    // payload text itself is redacted to a length + digest.
    assert!(
        message.contains("redacted") && message.contains("fnv64"),
        "panic must surface as a redacted shape, got: {message}"
    );
    assert!(
        !message.contains("injected failure"),
        "panic payload leaked: {message}"
    );
}

#[test]
fn cached_scores_track_retrained_model() {
    let corpus = generate(&CorpusConfig::tiny(12));
    let docs = corpus_slice(&corpus, 700);
    let mut classifier = trained_classifier(&docs);

    let mut engine = ScoringEngine::build(classifier.featurizer(), &docs, 2).expect("build");

    // Retrain with flipped labels: the arena must keep serving scores that
    // match fresh per-document scoring of the *new* model.
    let flipped: Vec<(&str, bool)> = docs
        .iter()
        .take(600)
        .map(|d| (d.text.as_str(), !Task::Dox.truth(d)))
        .collect();
    classifier.retrain(flipped, TrainConfig::default());

    let cached = engine.score_all(classifier.model(), 2).expect("score");
    assert_eq!(cached.len(), docs.len());
    for (doc, (id, score)) in docs.iter().zip(&cached) {
        assert_eq!(doc.id, *id);
        assert_eq!(
            score.to_bits(),
            classifier.score(&doc.text).to_bits(),
            "cached score for {id:?} diverged from fresh scoring after retrain"
        );
    }
    assert_eq!(engine.stats().featurize_passes, 1);
    assert_eq!(engine.stats().score_passes, 1);
}
