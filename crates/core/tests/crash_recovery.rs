//! The kill-point sweep: crash at every failpoint site, resume, and
//! demand a byte-identical outcome.
//!
//! This is the tentpole guarantee of the checkpoint subsystem (DESIGN.md
//! §12). For every site [`pipeline_sites`] registers — each step boundary
//! plus the two mid-step positions — the sweep arms the site, runs
//! [`run_pipeline_resumable`] until the injected fault aborts it exactly
//! where a crash would, then resumes disarmed in the same run directory
//! and asserts the recovered [`PipelineOutcome`] equals (`PartialEq` and
//! digest) an uninterrupted reference run.
//!
//! Requires `--features failpoints`; without it the registry compiles to
//! no-ops and arming does nothing, so the whole suite is gated.
#![cfg(feature = "failpoints")]

use incite_core::pipeline::PipelineError;
use incite_core::{
    clear_run_dir, pipeline_sites, run_pipeline, run_pipeline_resumable, PipelineConfig, Task,
};
use incite_corpus::{generate, Corpus, CorpusConfig};
use std::path::PathBuf;

fn corpus() -> Corpus {
    generate(&CorpusConfig::tiny(404))
}

fn run_dir(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("incite-sweep-{tag}-{}", std::process::id()))
}

fn sweep(task: Task, seed: u64) {
    let corpus = corpus();
    let config = PipelineConfig::quick(seed);
    let reference = run_pipeline(&corpus, task, &config).expect("reference run");

    let sites = pipeline_sites(&config, task);
    assert!(
        sites.len() >= 6,
        "sweep must cover every boundary, got {sites:?}"
    );

    for site in &sites {
        let dir = run_dir(&format!("{}-{site}", task.slug()));
        clear_run_dir(&dir).expect("clean run dir");

        // Crash: armed registry aborts the run exactly at `site`.
        let mut armed = config.clone();
        armed.failpoints.arm(site);
        match run_pipeline_resumable(&corpus, task, &armed, &dir) {
            Err(PipelineError::Fault(fault)) => assert_eq!(&fault.site, site),
            other => panic!("site {site}: expected injected fault, got {other:?}"),
        }

        // Resume: same directory, disarmed config, identical outcome.
        let recovered = run_pipeline_resumable(&corpus, task, &config, &dir)
            .unwrap_or_else(|e| panic!("site {site}: resume failed: {e}"));
        assert_eq!(
            recovered, reference,
            "site {site}: resumed outcome diverged from the uninterrupted run"
        );
        assert_eq!(
            recovered.digest(),
            reference.digest(),
            "site {site}: digest diverged"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn dox_sweep_recovers_byte_identical_outcomes() {
    sweep(Task::Dox, 11);
}

#[test]
fn cth_sweep_recovers_byte_identical_outcomes() {
    sweep(Task::Cth, 12);
}

/// A crash mid-run followed by *another* crash later in the resumed run,
/// then a final resume: recovery must compose across multiple failures.
#[test]
fn double_crash_still_recovers() {
    let corpus = corpus();
    let task = Task::Dox;
    let config = PipelineConfig::quick(13);
    let reference = run_pipeline(&corpus, task, &config).expect("reference run");
    let dir = run_dir("double-crash");
    clear_run_dir(&dir).expect("clean run dir");

    let mut first = config.clone();
    first.failpoints.arm("after-featurize");
    assert!(matches!(
        run_pipeline_resumable(&corpus, task, &first, &dir),
        Err(PipelineError::Fault(_))
    ));

    let mut second = config.clone();
    second.failpoints.arm("after-score");
    assert!(matches!(
        run_pipeline_resumable(&corpus, task, &second, &dir),
        Err(PipelineError::Fault(_))
    ));

    let recovered = run_pipeline_resumable(&corpus, task, &config, &dir).expect("final resume");
    assert_eq!(recovered, reference);
    std::fs::remove_dir_all(&dir).ok();
}
