//! # incite-cli
//!
//! The command-line face of the reproduction: train a detector from a
//! labeled JSONL corpus, score text, extract or redact PII, and infer
//! target gender — the operations a platform trust-and-safety team or an
//! anti-harassment group would actually run (paper §9.2).
//!
//! The logic lives here in the library so it is unit-testable; the `incite`
//! binary is a thin argument parser over [`run`].

use incite_core::checkpoint::atomic_io::write_atomic;
use incite_core::checkpoint::{Resume, MANIFEST_FILE};
use incite_core::{
    clear_run_dir, load_latest_classifier_with_hash, run_pipeline_resumable, Checkpointer,
    PipelineConfig, ScoringEngine, Task,
};
use incite_corpus::jsonl::{self, QuarantineStats};
use incite_corpus::{Corpus, CorpusConfig};
use incite_ml::{
    load_model, save_model, FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig,
};
use incite_pii::{infer_gender, redact, PiiExtractor};
use incite_serve::admission::TenantQuota;
use incite_serve::journal::read_journal;
use incite_serve::{ServeConfig, Server};
use incite_stream::{run_watch, simulate, EventStream, SimConfig, WatchConfig};
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::path::{Path, PathBuf};
use std::time::Duration;

/// CLI errors, printable to stderr.
#[derive(Debug)]
pub struct CliError(pub String);

impl std::fmt::Display for CliError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for CliError {}

impl From<std::io::Error> for CliError {
    fn from(e: std::io::Error) -> Self {
        CliError(format!("I/O error: {e}"))
    }
}

impl From<std::string::FromUtf8Error> for CliError {
    fn from(e: std::string::FromUtf8Error) -> Self {
        CliError(format!("output is not UTF-8: {e}"))
    }
}

fn err(msg: impl Into<String>) -> CliError {
    CliError(msg.into())
}

/// Usage text.
pub const USAGE: &str = "\
incite <command> [options]

commands:
  train   --corpus FILE.jsonl --task cth|dox --out MODEL.json [--max-len N]
          train a detector from a labeled JSONL corpus (corpus-gen format)
  run     --corpus FILE.jsonl --task cth|dox --resume DIR
          [--seed N] [--force true]
          run the full checkpointed pipeline with run directory DIR; a
          killed run resumes from its last completed step and finishes
          with a byte-identical outcome. `--force true` discards any
          existing checkpoints in DIR first.
  serve   (--run-dir DIR | --registry DIR) [--addr HOST:PORT]
          [--threads N] [--queue-depth Q] [--max-batch B]
          [--deadline-ms MS] [--io-window-ms MS] [--journal FILE]
          [--tenants FILE.json]
          serve the latest classifier checkpointed in run directory DIR
          (or in the newest run directory under a --registry root) over
          HTTP: POST /v1/score, POST /v1/redact, POST /v1/admin/swap,
          GET /healthz, GET /metrics. --tenants takes a JSON array of
          {name, key, capacity, refill_per_sec} token-bucket quotas;
          --journal appends every scored response for offline `replay`.
          SIGTERM / ctrl-c drains in-flight requests and exits 0.
          Defaults: 127.0.0.1:7878, queue depth 256, open admission.
  replay  --journal FILE [--run-dir DIR]
          re-score a serve request journal offline and verify every
          journaled response bit-for-bit against the checkpointed model;
          exits nonzero on any mismatch. --run-dir overrides the
          journaled run directory (for relocated checkpoints).
  events  --corpus FILE.jsonl --out EVENTS.jsonl [--seed N]
          [--max-events N]
          simulate a deterministic amplification-event stream (post /
          quote-repost / follower-edge) over the corpus' personas; the
          same seed and corpus always produce a byte-identical stream
  watch   --corpus FILE.jsonl --events EVENTS.jsonl --run-dir DIR
          [--state DIR] [--threads N] [--epoch-len N] [--top-k K]
          [--max-epochs N]
          consume the event stream with the classifier checkpointed in
          run directory DIR, maintaining ranked per-target threat lists
          on the toxicity x topic-overlap plane. --state checkpoints
          ranker state every epoch and resumes from it; rankings are
          byte-identical at any --threads and across kill/resume.
  score   --model MODEL.json [--input FILE] [--threshold T]
          score one text per input line; prints `score<TAB>text`
  pii     [--input FILE]
          extract PII spans per input line; prints `kind<TAB>span`
  redact  [--input FILE]
          redact PII per input line; prints the redacted line
  gender  [--input FILE]
          pronoun-based target-gender inference per line

`--input` defaults to stdin.";

/// Parsed options: flag name → value.
pub fn parse_flags(args: &[String]) -> Result<std::collections::HashMap<String, String>, CliError> {
    let mut flags = std::collections::HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| err(format!("unexpected argument '{}'", args[i])))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| err(format!("--{key} requires a value")))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn input_lines(flags: &std::collections::HashMap<String, String>) -> Result<Vec<String>, CliError> {
    let reader: Box<dyn Read> = match flags.get("input") {
        Some(path) => {
            Box::new(std::fs::File::open(path).map_err(|e| err(format!("open {path}: {e}")))?)
        }
        None => Box::new(std::io::stdin()),
    };
    BufReader::new(reader)
        .lines()
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| err(format!("read input: {e}")))
}

/// Loads a JSONL corpus with the quarantining reader: one bad crawler
/// record never aborts a train or pipeline run. Any quarantined lines are
/// reported to `out` so silent data loss is impossible.
fn load_corpus_lines(
    corpus_path: &str,
    out: &mut dyn Write,
) -> Result<Vec<incite_corpus::Document>, CliError> {
    let file =
        std::fs::File::open(corpus_path).map_err(|e| err(format!("open {corpus_path}: {e}")))?;
    let (docs, stats): (_, QuarantineStats) =
        jsonl::read_jsonl_quarantine(file).map_err(|e| err(format!("parse corpus: {e}")))?;
    if stats.quarantined() > 0 {
        // `reason` names the line and byte offset itself and is redacted
        // at its source (corpus::redact_excerpt) — safe to print.
        let (_, reason) = stats
            .first_error
            .clone()
            .unwrap_or((0, "unknown".to_string()));
        writeln!(
            out,
            "warning: quarantined {} corpus line(s) ({} malformed, {} non-UTF-8, {} truncated); \
             first: {reason}",
            stats.quarantined(),
            stats.malformed,
            stats.non_utf8,
            stats.truncated
        )
        .map_err(|e| err(e.to_string()))?;
    }
    if docs.is_empty() {
        return Err(err(format!("{corpus_path} contains no readable documents")));
    }
    Ok(docs)
}

/// Picks the newest servable run directory under a registry root: the
/// lexically greatest immediate subdirectory holding a `MANIFEST.ckpt`.
/// Registries name runs sortably (`run-2026-08-09`, `v0007`, ...), so
/// lexical order is deployment order; directories without a manifest
/// (scratch space, half-copied runs) are skipped, not errors.
pub fn newest_run_dir(registry: &Path) -> Result<PathBuf, CliError> {
    let entries = std::fs::read_dir(registry)
        .map_err(|e| err(format!("read registry {}: {e}", registry.display())))?;
    let mut best: Option<PathBuf> = None;
    for entry in entries {
        let path = entry
            .map_err(|e| err(format!("read registry entry: {e}")))?
            .path();
        if !path.join(MANIFEST_FILE).is_file() {
            continue;
        }
        match &best {
            Some(current) if current.file_name() >= path.file_name() => {}
            _ => best = Some(path),
        }
    }
    best.ok_or_else(|| {
        err(format!(
            "{} holds no run directory with a {MANIFEST_FILE}",
            registry.display()
        ))
    })
}

/// Parses a `--tenants` file: a JSON array of token-bucket quotas.
fn load_tenants(path: &str) -> Result<Vec<TenantQuota>, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| err(format!("open tenants {path}: {e}")))?;
    serde_json::from_str(&text)
        .map_err(|_| err(format!("{path} is not a JSON array of tenant quotas")))
}

/// Runs one CLI command, writing results to `out`.
pub fn run(command: &str, args: &[String], out: &mut dyn Write) -> Result<(), CliError> {
    let flags = parse_flags(args)?;
    match command {
        "train" => {
            let corpus_path = flags
                .get("corpus")
                .ok_or_else(|| err("train requires --corpus"))?;
            let task = flags.get("task").map(|s| s.as_str()).unwrap_or("cth");
            let out_path = flags
                .get("out")
                .ok_or_else(|| err("train requires --out"))?;
            let max_len: usize = flags
                .get("max-len")
                .map(|s| s.parse().map_err(|_| err("--max-len takes a number")))
                .transpose()?
                .unwrap_or(if task == "dox" { 512 } else { 128 });

            let docs = load_corpus_lines(corpus_path, out)?;
            let labeled: Vec<(&str, bool)> = docs
                .iter()
                .map(|d| {
                    let label = match task {
                        "dox" => d.truth.is_dox,
                        "cth" => d.truth.is_cth,
                        other => return Err(err(format!("unknown task '{other}'"))),
                    };
                    Ok((d.text.as_str(), label))
                })
                .collect::<Result<_, _>>()?;
            let positives = labeled.iter().filter(|(_, l)| *l).count();
            if positives == 0 {
                return Err(err("corpus has no positive examples for this task"));
            }
            let clf = TextClassifier::train(
                labeled,
                FeaturizerConfig {
                    max_len,
                    mode: FeatureMode::Subword,
                    ..Default::default()
                },
                TrainConfig::default(),
            );
            // Model artifacts go through the checkpoint module's atomic
            // write-rename (INC006): a crash mid-save can never leave a
            // torn model file behind.
            let mut buf = Vec::new();
            save_model(&mut buf, &clf).map_err(|e| err(e.to_string()))?;
            write_atomic(Path::new(out_path), &buf)
                .map_err(|e| err(format!("write {out_path}: {e}")))?;
            writeln!(
                out,
                "trained {task} model on {} documents ({positives} positive) -> {out_path}",
                docs.len()
            )
            .map_err(|e| err(e.to_string()))?;
            Ok(())
        }
        "run" => {
            let corpus_path = flags
                .get("corpus")
                .ok_or_else(|| err("run requires --corpus"))?;
            let task = match flags.get("task").map(String::as_str).unwrap_or("cth") {
                "cth" => Task::Cth,
                "dox" => Task::Dox,
                other => return Err(err(format!("unknown task '{other}'"))),
            };
            let run_dir = flags
                .get("resume")
                .ok_or_else(|| err("run requires --resume DIR (the checkpoint directory)"))?;
            let seed: u64 = flags
                .get("seed")
                .map(|s| s.parse().map_err(|_| err("--seed takes a number")))
                .transpose()?
                .unwrap_or(1);
            let dir = Path::new(run_dir);
            if flags.get("force").map(String::as_str) == Some("true") {
                clear_run_dir(dir).map_err(|e| err(e.to_string()))?;
                writeln!(out, "discarded existing checkpoints in {run_dir}")
                    .map_err(|e| err(e.to_string()))?;
            }

            let docs = load_corpus_lines(corpus_path, out)?;
            let corpus = Corpus {
                documents: docs,
                config: CorpusConfig::default(),
            };
            let config = PipelineConfig::quick(seed);

            // Recovery progress: report what the run directory already
            // holds before the pipeline continues from it.
            let (ckpt, resume) = Checkpointer::open(dir, task.slug(), &config.fingerprint())
                .map_err(|e| err(e.to_string()))?;
            match resume {
                Resume::Fresh => {
                    writeln!(out, "starting fresh run in {run_dir}")
                        .map_err(|e| err(e.to_string()))?;
                }
                Resume::FromStep { completed } => {
                    let last = ckpt.step_names().last().unwrap_or("none");
                    writeln!(
                        out,
                        "resuming in {run_dir}: {completed} step(s) verified and checkpointed \
                         (last: {last})"
                    )
                    .map_err(|e| err(e.to_string()))?;
                }
            }
            drop(ckpt);

            let outcome = run_pipeline_resumable(&corpus, task, &config, dir)
                .map_err(|e| err(e.to_string()))?;
            writeln!(
                out,
                "{} pipeline complete: {} documents, {} above threshold, \
                 {} true positives (precision {:.3}), outcome digest {:016x}",
                task.slug(),
                outcome.counts.raw_documents,
                outcome.counts.above_threshold,
                outcome.counts.true_positives,
                outcome.counts.final_precision(),
                outcome.digest()
            )
            .map_err(|e| err(e.to_string()))?;
            for row in &outcome.thresholds {
                writeln!(
                    out,
                    "  {}: t={} above={} annotated={} precision={:.3}",
                    row.platform.slug(),
                    row.threshold,
                    row.above_threshold,
                    row.annotated,
                    row.precision()
                )
                .map_err(|e| err(e.to_string()))?;
            }
            Ok(())
        }
        "serve" => {
            let run_dir: PathBuf = match (flags.get("run-dir"), flags.get("registry")) {
                (Some(_), Some(_)) => {
                    return Err(err("serve takes --run-dir or --registry, not both"))
                }
                (Some(dir), None) => PathBuf::from(dir),
                (None, Some(root)) => newest_run_dir(Path::new(root))?,
                (None, None) => {
                    return Err(err(
                        "serve requires --run-dir DIR (a checkpointed run directory) \
                         or --registry DIR (a root of run directories)",
                    ))
                }
            };
            let mut config = ServeConfig::default();
            if let Some(addr) = flags.get("addr") {
                config.addr = addr.clone();
            }
            let parse_usize = |key: &str| -> Result<Option<usize>, CliError> {
                flags
                    .get(key)
                    .map(|s| {
                        s.parse()
                            .map_err(|_| err(format!("--{key} takes a number")))
                    })
                    .transpose()
            };
            if let Some(n) = parse_usize("threads")? {
                config.threads = n;
            }
            if let Some(q) = parse_usize("queue-depth")? {
                config.queue_depth = q;
            }
            if let Some(b) = parse_usize("max-batch")? {
                config.max_batch = b;
            }
            if let Some(ms) = parse_usize("deadline-ms")? {
                config.deadline = Duration::from_millis(ms as u64);
            }
            if let Some(ms) = parse_usize("io-window-ms")? {
                config.io_window = Duration::from_millis(ms as u64);
            }
            if let Some(path) = flags.get("journal") {
                config.journal = Some(PathBuf::from(path));
            }
            if let Some(path) = flags.get("tenants") {
                config.tenants = load_tenants(path)?;
            }

            incite_serve::signal::install();
            // The model is loaded and hash-verified BEFORE the port binds
            // (inside start_from_run_dir): a damaged run directory is a
            // typed refusal with nothing listening — no partially
            // initialized server.
            let handle =
                Server::start_from_run_dir(&run_dir, config).map_err(|e| err(e.to_string()))?;
            writeln!(
                out,
                "incite-serve listening on http://{} (run dir: {}); \
                 SIGTERM or ctrl-c drains and exits",
                handle.local_addr(),
                run_dir.display()
            )
            .map_err(|e| err(e.to_string()))?;
            out.flush().map_err(|e| err(e.to_string()))?;

            let report = handle.run_until(incite_serve::signal::shutdown_flag());
            writeln!(
                out,
                "drained: {} request(s) answered, {} document(s) scored, \
                 {} rejected for overload, {} stuck connection(s)",
                report.requests_total,
                report.documents_scored,
                report.rejected_overload,
                report.stuck_connections
            )
            .map_err(|e| err(e.to_string()))?;
            if report.panicked_threads > 0 {
                return Err(err(format!(
                    "{} server thread(s) panicked during drain",
                    report.panicked_threads
                )));
            }
            Ok(())
        }
        "replay" => {
            let journal_path = flags
                .get("journal")
                .ok_or_else(|| err("replay requires --journal FILE"))?;
            let override_dir = flags.get("run-dir").map(PathBuf::from);
            let (records, damage) = read_journal(Path::new(journal_path))
                .map_err(|e| err(format!("read journal {journal_path}: {e}")))?;
            if let Some(offset) = damage {
                writeln!(
                    out,
                    "warning: journal tail damaged at byte {offset}; \
                     replaying the {} intact record(s) before it",
                    records.len()
                )
                .map_err(|e| err(e.to_string()))?;
            }
            if records.is_empty() {
                writeln!(
                    out,
                    "replayed 0 record(s) from {journal_path}: nothing to verify"
                )
                .map_err(|e| err(e.to_string()))?;
                return Ok(());
            }

            // One load per distinct run directory; hash verification ties
            // each journaled response to the exact weights it came from.
            let mut models: BTreeMap<String, (TextClassifier, String)> = BTreeMap::new();
            let mut matched = 0usize;
            let mut mismatched: Vec<u64> = Vec::with_capacity(4);
            for record in &records {
                let dir = match &override_dir {
                    Some(p) => p.display().to_string(),
                    None => record.run_dir.clone(),
                };
                if dir.is_empty() {
                    return Err(err(format!(
                        "record seq {} names no run directory (the server booted \
                         from an in-memory model); pass --run-dir",
                        record.seq
                    )));
                }
                if !models.contains_key(&dir) {
                    let loaded = load_latest_classifier_with_hash(Path::new(&dir))
                        .map_err(|e| err(format!("load model for seq {}: {e}", record.seq)))?;
                    models.insert(dir.clone(), loaded);
                }
                let (classifier, hash) = &models[&dir];
                if !record.model_hash.is_empty() && record.model_hash != *hash {
                    return Err(err(format!(
                        "seq {}: journaled model hash does not match the checkpointed \
                         model — wrong run directory or a swapped checkpoint",
                        record.seq
                    )));
                }
                // The journaled texts feed the engine and nothing else:
                // request content never reaches replay output (INC011).
                let texts: Vec<&str> = record.texts.iter().map(String::as_str).collect();
                let scores = ScoringEngine::score_texts(classifier, &texts, 1)
                    .map_err(|e| err(format!("score seq {}: {}", record.seq, e.kind())))?;
                let bits: Vec<u32> = scores.iter().map(|s| s.to_bits()).collect();
                if bits == record.bits {
                    matched += 1;
                } else {
                    mismatched.push(record.seq);
                }
            }
            writeln!(
                out,
                "replayed {} record(s) from {journal_path}: {matched} matched, {} mismatched",
                records.len(),
                mismatched.len()
            )
            .map_err(|e| err(e.to_string()))?;
            if !mismatched.is_empty() {
                let seqs: Vec<String> = mismatched.iter().map(u64::to_string).collect();
                return Err(err(format!(
                    "replay does not reproduce the journaled bits at seq {}",
                    seqs.join(", ")
                )));
            }
            Ok(())
        }
        "events" => {
            let corpus_path = flags
                .get("corpus")
                .ok_or_else(|| err("events requires --corpus"))?;
            let out_path = flags
                .get("out")
                .ok_or_else(|| err("events requires --out"))?;
            let seed: u64 = flags
                .get("seed")
                .map(|s| s.parse().map_err(|_| err("--seed takes a number")))
                .transpose()?
                .unwrap_or(7);
            let max_events: usize = flags
                .get("max-events")
                .map(|s| s.parse().map_err(|_| err("--max-events takes a number")))
                .transpose()?
                .unwrap_or(0);

            let docs = load_corpus_lines(corpus_path, out)?;
            let corpus = Corpus {
                documents: docs,
                config: CorpusConfig::default(),
            };
            let stream = simulate(
                &corpus,
                &SimConfig {
                    seed,
                    max_events,
                    ..SimConfig::default()
                },
            );
            let bytes = stream.encode().map_err(|e| err(e.to_string()))?;
            // Event streams ride the same atomic write-rename funnel as
            // every other artifact: no torn stream files.
            write_atomic(Path::new(out_path), &bytes)
                .map_err(|e| err(format!("write {out_path}: {e}")))?;
            writeln!(
                out,
                "simulated {} event(s) over {} actor(s), digest {} -> {out_path}",
                stream.events.len(),
                stream.actors.len(),
                stream.digest()
            )
            .map_err(|e| err(e.to_string()))?;
            Ok(())
        }
        "watch" => {
            let corpus_path = flags
                .get("corpus")
                .ok_or_else(|| err("watch requires --corpus"))?;
            let events_path = flags
                .get("events")
                .ok_or_else(|| err("watch requires --events"))?;
            let run_dir = flags
                .get("run-dir")
                .ok_or_else(|| err("watch requires --run-dir (a checkpointed run directory)"))?;
            let parse_usize = |key: &str| -> Result<Option<usize>, CliError> {
                flags
                    .get(key)
                    .map(|s| {
                        s.parse()
                            .map_err(|_| err(format!("--{key} takes a number")))
                    })
                    .transpose()
            };

            let docs = load_corpus_lines(corpus_path, out)?;
            let bytes =
                std::fs::read(events_path).map_err(|e| err(format!("open {events_path}: {e}")))?;
            let stream = EventStream::decode(&bytes)
                .map_err(|e| err(format!("parse {events_path}: {e}")))?;
            let doc_texts: BTreeMap<u64, &str> =
                docs.iter().map(|d| (d.id.0, d.text.as_str())).collect();
            let (classifier, model_hash) = load_latest_classifier_with_hash(Path::new(run_dir))
                .map_err(|e| err(e.to_string()))?;

            let mut config = WatchConfig::default();
            if let Some(n) = parse_usize("threads")? {
                config.ranker.threads = n;
            }
            if let Some(n) = parse_usize("epoch-len")? {
                config.ranker.epoch_len = n.max(1);
            }
            if let Some(k) = parse_usize("top-k")? {
                config.ranker.top_k = k.max(1);
            }
            if let Some(n) = parse_usize("max-epochs")? {
                config.max_epochs = Some(n as u64);
            }
            config.state_dir = flags.get("state").map(PathBuf::from);

            let outcome = run_watch(&stream, &doc_texts, &classifier, &config)
                .map_err(|e| err(e.to_string()))?;
            if let Some(at) = outcome.resumed_at {
                writeln!(out, "resumed from checkpointed state at event {at}")
                    .map_err(|e| err(e.to_string()))?;
            }
            writeln!(
                out,
                "watch complete: {} event(s) in {} epoch(s), model {model_hash}",
                outcome.events, outcome.epochs
            )
            .map_err(|e| err(e.to_string()))?;
            out.write_all(outcome.rankings.as_bytes())
                .map_err(|e| err(e.to_string()))?;
            Ok(())
        }
        "score" => {
            let model_path = flags
                .get("model")
                .ok_or_else(|| err("score requires --model"))?;
            let threshold: f32 = flags
                .get("threshold")
                .map(|s| s.parse().map_err(|_| err("--threshold takes a number")))
                .transpose()?
                .unwrap_or(0.5);
            let f = std::fs::File::open(model_path)
                .map_err(|e| err(format!("open {model_path}: {e}")))?;
            let clf = load_model(f).map_err(|e| err(e.to_string()))?;
            for line in input_lines(&flags)? {
                if line.trim().is_empty() {
                    continue;
                }
                let score = clf.score(&line);
                let flag = if score > threshold { "FLAG" } else { "ok" };
                writeln!(out, "{score:.4}\t{flag}\t{line}").map_err(|e| err(e.to_string()))?;
            }
            Ok(())
        }
        "pii" => {
            let extractor = PiiExtractor::new();
            for (lineno, line) in input_lines(&flags)?.iter().enumerate() {
                for m in extractor.extract(line) {
                    writeln!(out, "{}\t{}\t{}", lineno + 1, m.kind.slug(), m.text)
                        .map_err(|e| err(e.to_string()))?;
                }
            }
            Ok(())
        }
        "redact" => {
            let extractor = PiiExtractor::new();
            for line in input_lines(&flags)? {
                let (clean, _) = redact(&extractor, &line);
                writeln!(out, "{clean}").map_err(|e| err(e.to_string()))?;
            }
            Ok(())
        }
        "gender" => {
            for line in input_lines(&flags)? {
                writeln!(out, "{}\t{}", infer_gender(&line).slug(), line)
                    .map_err(|e| err(e.to_string()))?;
            }
            Ok(())
        }
        other => Err(err(format!("unknown command '{other}'\n\n{USAGE}"))),
    }
}

#[cfg(test)]
mod tests {
    // The tests propagate failures as `Result<(), CliError>` with `?` —
    // the same error discipline as the library — so INC001 passes clean on
    // this crate with no grandfathered debt.
    use super::*;
    use incite_corpus::{generate, CorpusConfig};
    use std::path::Path;

    type TestResult = Result<(), CliError>;

    fn flags(pairs: &[(&str, &str)]) -> Vec<String> {
        pairs
            .iter()
            .flat_map(|(k, v)| [format!("--{k}"), v.to_string()])
            .collect()
    }

    fn path_str(p: &Path) -> Result<&str, CliError> {
        p.to_str().ok_or_else(|| err("non-UTF-8 temp path"))
    }

    #[test]
    fn parse_flags_roundtrip_and_errors() -> TestResult {
        let ok = parse_flags(&flags(&[("model", "m.json"), ("threshold", "0.7")]))?;
        assert_eq!(ok.get("model").map(String::as_str), Some("m.json"));
        assert!(parse_flags(&["--model".to_string()]).is_err());
        assert!(parse_flags(&["stray".to_string()]).is_err());
        Ok(())
    }

    #[test]
    fn train_then_score_end_to_end() -> TestResult {
        let dir = std::env::temp_dir().join(format!("incite-cli-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let corpus_path = dir.join("corpus.jsonl");
        let model_path = dir.join("model.json");

        let corpus = generate(&CorpusConfig::tiny(11));
        let f = std::fs::File::create(&corpus_path)?;
        jsonl::write_jsonl(f, &corpus.documents)?;

        let mut out = Vec::new();
        run(
            "train",
            &flags(&[
                ("corpus", path_str(&corpus_path)?),
                ("task", "cth"),
                ("out", path_str(&model_path)?),
            ]),
            &mut out,
        )?;
        assert!(String::from_utf8_lossy(&out).contains("trained cth model"));

        // Score a file of two lines.
        let input_path = dir.join("lines.txt");
        std::fs::write(
            &input_path,
            "we need to mass report his account right now\nlovely weather for a picnic\n",
        )?;
        let mut out = Vec::new();
        run(
            "score",
            &flags(&[
                ("model", path_str(&model_path)?),
                ("input", path_str(&input_path)?),
            ]),
            &mut out,
        )?;
        let text = String::from_utf8(out)?;
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let score_of = |line: &str| -> Result<f32, CliError> {
            line.split('\t')
                .next()
                .ok_or_else(|| err("empty score line"))?
                .parse()
                .map_err(|e| err(format!("bad score: {e}")))
        };
        let s0 = score_of(lines[0])?;
        let s1 = score_of(lines[1])?;
        assert!(s0 > s1, "CTH should outscore benign: {s0} vs {s1}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn pii_and_redact_commands() -> TestResult {
        let dir = std::env::temp_dir().join(format!("incite-cli-pii-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let input_path = dir.join("in.txt");
        std::fs::write(&input_path, "call 212-555-0101 or mail a@example.com\n")?;

        let mut out = Vec::new();
        run(
            "pii",
            &flags(&[("input", path_str(&input_path)?)]),
            &mut out,
        )?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("phone\t"));
        assert!(text.contains("email\t"));

        let mut out = Vec::new();
        run(
            "redact",
            &flags(&[("input", path_str(&input_path)?)]),
            &mut out,
        )?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("[PHONE]"));
        assert!(!text.contains("555-0101"));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn gender_command() -> TestResult {
        let dir = std::env::temp_dir().join(format!("incite-cli-g-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let input_path = dir.join("in.txt");
        std::fs::write(&input_path, "she posted her schedule\nreport the account\n")?;
        let mut out = Vec::new();
        run(
            "gender",
            &flags(&[("input", path_str(&input_path)?)]),
            &mut out,
        )?;
        let text = String::from_utf8(out)?;
        assert!(text.starts_with("female\t"));
        assert!(text.contains("unknown\t"));
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn run_command_checkpoints_and_resumes() -> TestResult {
        let dir = std::env::temp_dir().join(format!("incite-cli-run-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let corpus_path = dir.join("corpus.jsonl");
        let run_dir = dir.join("run");

        let corpus = generate(&CorpusConfig::tiny(404));
        let f = std::fs::File::create(&corpus_path)?;
        jsonl::write_jsonl(f, &corpus.documents)?;

        let args = flags(&[
            ("corpus", path_str(&corpus_path)?),
            ("task", "dox"),
            ("resume", path_str(&run_dir)?),
            ("seed", "3"),
        ]);
        let mut out = Vec::new();
        run("run", &args, &mut out)?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("starting fresh run"), "{text}");
        assert!(text.contains("pipeline complete"), "{text}");
        let digest_line = |t: &str| -> Result<String, CliError> {
            t.lines()
                .find(|l| l.contains("outcome digest"))
                .map(str::to_string)
                .ok_or_else(|| err("no digest line"))
        };
        let first_digest = digest_line(&text)?;

        // Second invocation resumes from the completed checkpoints and
        // reports the identical outcome.
        let mut out = Vec::new();
        run("run", &args, &mut out)?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("resuming in"), "{text}");
        assert!(text.contains("step(s) verified and checkpointed"), "{text}");
        assert_eq!(digest_line(&text)?, first_digest);

        // --force discards the checkpoints and starts fresh — same digest.
        let mut forced = args.clone();
        forced.extend(flags(&[("force", "true")]));
        let mut out = Vec::new();
        run("run", &forced, &mut out)?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("discarded existing checkpoints"), "{text}");
        assert!(text.contains("starting fresh run"), "{text}");
        assert_eq!(digest_line(&text)?, first_digest);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn events_then_watch_end_to_end() -> TestResult {
        let dir = std::env::temp_dir().join(format!("incite-cli-watch-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir)?;
        let corpus_path = dir.join("corpus.jsonl");
        let run_dir = dir.join("run");

        let corpus = generate(&CorpusConfig::tiny(404));
        let f = std::fs::File::create(&corpus_path)?;
        jsonl::write_jsonl(f, &corpus.documents)?;
        run_pipeline_resumable(&corpus, Task::Cth, &PipelineConfig::quick(3), &run_dir)
            .map_err(|e| err(e.to_string()))?;

        // Simulation is deterministic: same seed, byte-identical stream.
        let events_path = dir.join("events.jsonl");
        let events_path2 = dir.join("events2.jsonl");
        for path in [&events_path, &events_path2] {
            let mut out = Vec::new();
            run(
                "events",
                &flags(&[
                    ("corpus", path_str(&corpus_path)?),
                    ("out", path_str(path)?),
                    ("seed", "7"),
                ]),
                &mut out,
            )?;
            assert!(String::from_utf8(out)?.contains("simulated"), "no summary");
        }
        assert_eq!(
            std::fs::read(&events_path)?,
            std::fs::read(&events_path2)?,
            "same seed must produce a byte-identical stream file"
        );

        // One uninterrupted watch.
        let watch_flags = |extra: &[(&str, &str)]| -> Result<Vec<String>, CliError> {
            let mut all = vec![
                ("corpus".to_string(), path_str(&corpus_path)?.to_string()),
                ("events".to_string(), path_str(&events_path)?.to_string()),
                ("run-dir".to_string(), path_str(&run_dir)?.to_string()),
            ];
            all.extend(extra.iter().map(|(k, v)| (k.to_string(), v.to_string())));
            Ok(all
                .into_iter()
                .flat_map(|(k, v)| [format!("--{k}"), v])
                .collect())
        };
        let rankings_of = |text: &str| -> Result<String, CliError> {
            let at = text
                .find("threat rankings:")
                .ok_or_else(|| err("no rankings section"))?;
            Ok(text[at..].to_string())
        };
        let mut out = Vec::new();
        run("watch", &watch_flags(&[("threads", "2")])?, &mut out)?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("watch complete"), "{text}");
        assert!(text.contains("\ntarget "), "no ranked targets:\n{text}");
        let reference = rankings_of(&text)?;

        // Split run: a few checkpointed epochs, then resume to the end —
        // byte-identical rankings.
        let state_dir = dir.join("state");
        let state = path_str(&state_dir)?.to_string();
        let mut out = Vec::new();
        run(
            "watch",
            &watch_flags(&[("state", &state), ("max-epochs", "3")])?,
            &mut out,
        )?;
        let mut out = Vec::new();
        run("watch", &watch_flags(&[("state", &state)])?, &mut out)?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("resumed from checkpointed state"), "{text}");
        assert_eq!(rankings_of(&text)?, reference);
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn events_and_watch_refuse_bad_inputs() -> TestResult {
        let mut out = Vec::new();
        assert!(run("events", &[], &mut out).is_err());
        assert!(run("watch", &[], &mut out).is_err());

        // A corpus file is not an event stream: typed refusal at decode.
        let dir = std::env::temp_dir().join(format!("incite-cli-badev-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir)?;
        let corpus_path = dir.join("corpus.jsonl");
        let corpus = generate(&CorpusConfig::tiny(11));
        let f = std::fs::File::create(&corpus_path)?;
        jsonl::write_jsonl(f, &corpus.documents)?;
        let Err(e) = run(
            "watch",
            &flags(&[
                ("corpus", path_str(&corpus_path)?),
                ("events", path_str(&corpus_path)?),
                ("run-dir", "/nonexistent"),
            ]),
            &mut out,
        ) else {
            return Err(err("watch on a non-stream file unexpectedly succeeded"));
        };
        assert!(e.0.contains("parse"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn train_quarantines_dirty_corpus_lines() -> TestResult {
        let dir = std::env::temp_dir().join(format!("incite-cli-dirty-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let corpus_path = dir.join("corpus.jsonl");
        let model_path = dir.join("model.json");

        let corpus = generate(&CorpusConfig::tiny(11));
        let mut buf = Vec::new();
        jsonl::write_jsonl(&mut buf, &corpus.documents)?;
        buf.extend_from_slice(b"{\"not\": \"a document\"}\n\xff\xfe broken \xff\n");
        std::fs::write(&corpus_path, &buf)?;

        let mut out = Vec::new();
        run(
            "train",
            &flags(&[
                ("corpus", path_str(&corpus_path)?),
                ("task", "cth"),
                ("out", path_str(&model_path)?),
            ]),
            &mut out,
        )?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("quarantined 2 corpus line(s)"), "{text}");
        assert!(text.contains("trained cth model"), "{text}");
        assert!(model_path.exists());
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn serve_refuses_bad_boot_without_binding() -> TestResult {
        let mut out = Vec::new();
        // Missing --run-dir.
        let Err(e) = run("serve", &[], &mut out) else {
            return Err(err("serve without --run-dir unexpectedly succeeded"));
        };
        assert!(e.0.contains("--run-dir"), "{e}");

        // Nonexistent run directory: typed refusal before any bind.
        let Err(e) = run(
            "serve",
            &flags(&[("run-dir", "/nonexistent-run-dir"), ("addr", "127.0.0.1:0")]),
            &mut out,
        ) else {
            return Err(err("serve on missing run dir unexpectedly succeeded"));
        };
        assert!(e.0.contains("not a run directory"), "{e}");

        // Bad numeric flag.
        let Err(e) = run(
            "serve",
            &flags(&[("run-dir", "/tmp"), ("threads", "many")]),
            &mut out,
        ) else {
            return Err(err("serve with bad --threads unexpectedly succeeded"));
        };
        assert!(e.0.contains("--threads takes a number"), "{e}");
        assert!(out.is_empty(), "no listening line may be printed: {out:?}");
        Ok(())
    }

    #[test]
    fn serve_refuses_directory_without_model_step() -> TestResult {
        // A directory that exists but was never a run directory.
        let dir = std::env::temp_dir().join(format!("incite-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir)?;
        let mut out = Vec::new();
        let Err(e) = run(
            "serve",
            &flags(&[("run-dir", path_str(&dir)?), ("addr", "127.0.0.1:0")]),
            &mut out,
        ) else {
            return Err(err("serve on empty dir unexpectedly succeeded"));
        };
        assert!(e.0.contains("not a run directory"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn newest_run_dir_selects_lexically_greatest_manifest() -> TestResult {
        let dir = std::env::temp_dir().join(format!("incite-cli-reg-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        for (name, manifest) in [
            ("run-2026-01", true),
            ("run-2026-03", true),
            ("scratch", false),
            ("zz-notes", false),
        ] {
            let sub = dir.join(name);
            std::fs::create_dir_all(&sub)?;
            if manifest {
                std::fs::write(sub.join(MANIFEST_FILE), b"{}")?;
            }
        }
        let picked = newest_run_dir(&dir)?;
        assert_eq!(
            picked.file_name().and_then(|n| n.to_str()),
            Some("run-2026-03"),
            "lexically greatest manifest-bearing dir wins"
        );

        // A root with no servable runs is a typed refusal.
        let Err(e) = newest_run_dir(&dir.join("scratch")) else {
            return Err(err("empty registry unexpectedly yielded a run dir"));
        };
        assert!(e.0.contains("no run directory"), "{e}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn replay_reproduces_journal_and_fails_on_corrupt_bits() -> TestResult {
        use incite_core::checkpoint::atomic_io::AppendLog;
        use incite_serve::journal::JournalRecord;

        let dir = std::env::temp_dir().join(format!("incite-cli-replay-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let run_dir = dir.join("run");
        std::fs::create_dir_all(&run_dir)?;
        let corpus = generate(&CorpusConfig::tiny(404));
        let config = PipelineConfig::quick(3);
        run_pipeline_resumable(&corpus, Task::Cth, &config, &run_dir)
            .map_err(|e| err(e.to_string()))?;
        let (classifier, hash) =
            load_latest_classifier_with_hash(&run_dir).map_err(|e| err(e.to_string()))?;

        let record =
            |seq: u64, model_hash: &str, texts: Vec<String>, bits: Vec<u32>| JournalRecord {
                seq,
                generation: 1,
                model_hash: model_hash.to_string(),
                run_dir: run_dir.display().to_string(),
                tenant: "default".to_string(),
                texts,
                bits,
            };
        let texts: Vec<String> = corpus
            .documents
            .iter()
            .skip(700)
            .take(4)
            .map(|d| d.text.clone())
            .collect();
        let bits: Vec<u32> = texts
            .iter()
            .map(|t| classifier.score(t).to_bits())
            .collect();

        let good = dir.join("good.journal");
        {
            let mut log = AppendLog::open(&good).map_err(|e| err(e.to_string()))?;
            for (i, (t, b)) in texts.iter().zip(&bits).enumerate() {
                let line =
                    serde_json::to_string(&record(i as u64 + 1, &hash, vec![t.clone()], vec![*b]))
                        .map_err(|e| err(e.to_string()))?;
                log.append(line.as_bytes())
                    .map_err(|e| err(e.to_string()))?;
            }
        }
        let mut out = Vec::new();
        run("replay", &flags(&[("journal", path_str(&good)?)]), &mut out)?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("4 matched, 0 mismatched"), "{text}");

        // A journaled bit pattern the model cannot produce: nonzero exit
        // naming the sequence number (never the text).
        let bad = dir.join("bad.journal");
        {
            let mut log = AppendLog::open(&bad).map_err(|e| err(e.to_string()))?;
            let line =
                serde_json::to_string(&record(7, &hash, vec![texts[0].clone()], vec![bits[0] ^ 1]))
                    .map_err(|e| err(e.to_string()))?;
            log.append(line.as_bytes())
                .map_err(|e| err(e.to_string()))?;
        }
        let mut out = Vec::new();
        let Err(e) = run("replay", &flags(&[("journal", path_str(&bad)?)]), &mut out) else {
            return Err(err("corrupt journal unexpectedly replayed clean"));
        };
        assert!(e.0.contains("seq 7"), "{e}");
        assert!(
            !e.0.contains(&texts[0]),
            "journaled text leaked into the error"
        );

        // A record whose hash names different weights is refused outright.
        let wrong = dir.join("wrong-model.journal");
        {
            let mut log = AppendLog::open(&wrong).map_err(|e| err(e.to_string()))?;
            let line = serde_json::to_string(&record(
                11,
                "0123456789abcdef",
                vec![texts[0].clone()],
                vec![bits[0]],
            ))
            .map_err(|e| err(e.to_string()))?;
            log.append(line.as_bytes())
                .map_err(|e| err(e.to_string()))?;
        }
        let mut out = Vec::new();
        let Err(e) = run(
            "replay",
            &flags(&[("journal", path_str(&wrong)?)]),
            &mut out,
        ) else {
            return Err(err("hash-mismatched journal unexpectedly replayed clean"));
        };
        assert!(e.0.contains("model hash does not match"), "{e}");

        // A torn tail (crash mid-append) is a warning plus the intact
        // prefix, never silent trust of damaged bytes.
        {
            use std::io::Write as _;
            let mut f = std::fs::OpenOptions::new().append(true).open(&good)?;
            f.write_all(b"{\"seq\":99, torn mid-append")?;
        }
        let mut out = Vec::new();
        run("replay", &flags(&[("journal", path_str(&good)?)]), &mut out)?;
        let text = String::from_utf8(out)?;
        assert!(text.contains("journal tail damaged"), "{text}");
        assert!(text.contains("4 matched, 0 mismatched"), "{text}");
        std::fs::remove_dir_all(&dir).ok();
        Ok(())
    }

    #[test]
    fn unknown_command_reports_usage() -> TestResult {
        let mut out = Vec::new();
        let Err(e) = run("bogus", &[], &mut out) else {
            return Err(err("bogus command unexpectedly succeeded"));
        };
        assert!(e.0.contains("unknown command"));
        assert!(e.0.contains("incite <command>"));
        Ok(())
    }

    #[test]
    fn train_rejects_bad_inputs() -> TestResult {
        let mut out = Vec::new();
        assert!(run("train", &[], &mut out).is_err());
        let Err(e) = run(
            "train",
            &flags(&[("corpus", "/nonexistent.jsonl"), ("out", "/tmp/x.json")]),
            &mut out,
        ) else {
            return Err(err("train on missing corpus unexpectedly succeeded"));
        };
        assert!(e.0.contains("open"));
        Ok(())
    }
}
