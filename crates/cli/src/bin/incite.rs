//! `incite` — detection, extraction and redaction from the command line.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{}", incite_cli::USAGE);
        std::process::exit(2);
    };
    if command == "help" || command == "--help" || command == "-h" {
        println!("{}", incite_cli::USAGE);
        return;
    }
    let stdout = std::io::stdout();
    let mut out = stdout.lock();
    if let Err(e) = incite_cli::run(command, &args[1..], &mut out) {
        eprintln!("error: {e}");
        std::process::exit(1);
    }
}
