//! Property tests: the Pike VM against a reference backtracking matcher on
//! a restricted pattern family, plus robustness invariants.

use incite_regex::Regex;
use proptest::prelude::*;

/// A tiny reference matcher for patterns built from literals, `.`, `*`, `?`
/// over a small alphabet — classic recursive backtracking, obviously
/// correct, exponential in the worst case (inputs are kept short).
fn reference_match_here(pat: &[char], text: &[char]) -> bool {
    match pat {
        [] => true,
        [c, '*', rest @ ..] => {
            let mut i = 0;
            loop {
                if reference_match_here(rest, &text[i..]) {
                    return true;
                }
                if i < text.len() && (*c == '.' || text[i] == *c) {
                    i += 1;
                } else {
                    return false;
                }
            }
        }
        [c, '?', rest @ ..] => {
            if reference_match_here(rest, text) {
                return true;
            }
            !text.is_empty()
                && (*c == '.' || text[0] == *c)
                && reference_match_here(rest, &text[1..])
        }
        [c, rest @ ..] => {
            !text.is_empty()
                && (*c == '.' || text[0] == *c)
                && reference_match_here(rest, &text[1..])
        }
    }
}

fn reference_is_match(pattern: &str, text: &str) -> bool {
    let pat: Vec<char> = pattern.chars().collect();
    let txt: Vec<char> = text.chars().collect();
    (0..=txt.len()).any(|i| reference_match_here(&pat, &txt[i..]))
}

/// Generates syntactically valid patterns in the restricted family:
/// literal/dot atoms, each optionally starred or optioned, never two
/// quantifiers in a row.
fn simple_pattern() -> impl Strategy<Value = String> {
    prop::collection::vec(
        (
            prop::sample::select(vec!['a', 'b', 'c', '.']),
            prop::sample::select(vec!["", "*", "?"]),
        ),
        0..8,
    )
    .prop_map(|atoms| {
        atoms
            .into_iter()
            .map(|(c, q)| format!("{c}{q}"))
            .collect::<String>()
    })
}

proptest! {
    #[test]
    fn agrees_with_reference_matcher(
        pattern in simple_pattern(),
        text in "[abc]{0,12}",
    ) {
        let re = Regex::new(&pattern).expect("restricted family always compiles");
        prop_assert_eq!(
            re.is_match(&text),
            reference_is_match(&pattern, &text),
            "pattern {:?} text {:?}", pattern, text
        );
    }

    #[test]
    fn match_offsets_are_valid_slices(
        pattern in simple_pattern(),
        text in "[abc ]{0,16}",
    ) {
        let re = Regex::new(&pattern).unwrap();
        if let Some(m) = re.find(&text) {
            prop_assert!(m.start <= m.end);
            prop_assert!(m.end <= text.len());
            prop_assert!(text.is_char_boundary(m.start));
            prop_assert!(text.is_char_boundary(m.end));
        }
    }

    #[test]
    fn find_iter_terminates_and_is_ordered(
        pattern in simple_pattern(),
        text in "[abc]{0,20}",
    ) {
        let re = Regex::new(&pattern).unwrap();
        let matches: Vec<_> = re.find_iter(&text).take(100).collect();
        prop_assert!(matches.len() <= text.len() + 1, "too many matches");
        for w in matches.windows(2) {
            prop_assert!(w[0].end <= w[1].start || w[0].start < w[1].start);
        }
    }

    #[test]
    fn compile_never_panics_on_arbitrary_input(pattern in ".{0,20}") {
        let _ = Regex::new(&pattern); // Ok or Err, never panic
    }

    #[test]
    fn matching_never_panics_on_arbitrary_text(text in ".{0,64}") {
        // A fixed moderately complex pattern against arbitrary unicode.
        let re = Regex::new(r"(\w+)[-. ]?(\d{2,4})|\bfoo\b").unwrap();
        let _ = re.find(&text);
        let _ = re.captures(&text);
        let _: Vec<_> = re.find_iter(&text).take(64).collect();
    }

    #[test]
    fn case_insensitive_is_superset_of_sensitive(text in "[aAbB]{0,12}") {
        let cs = Regex::new("ab").unwrap();
        let ci = Regex::case_insensitive("ab").unwrap();
        if cs.is_match(&text) {
            prop_assert!(ci.is_match(&text));
        }
    }

    #[test]
    fn empty_pattern_matches_at_start(text in ".{0,12}") {
        let re = Regex::new("").unwrap();
        let m = re.find(&text).unwrap();
        prop_assert_eq!((m.start, m.end), (0, 0));
    }
}

proptest! {
    #[test]
    fn counted_repetition_matches_expansion(
        m in 0usize..4,
        extra in 0usize..4,
        text in "[ab]{0,10}",
    ) {
        // a{m,n} must be equivalent to the hand-expanded
        // "a"*m + "a?"*(n-m) for full-width anchored matching.
        let n = m + extra;
        let counted = Regex::new(&format!("^a{{{m},{n}}}$")).unwrap();
        let expanded = {
            let mut p = String::from("^");
            p.push_str(&"a".repeat(m));
            p.push_str(&"a?".repeat(n - m));
            p.push('$');
            Regex::new(&p).unwrap()
        };
        prop_assert_eq!(
            counted.is_match(&text),
            expanded.is_match(&text),
            "m={} n={} text={:?}", m, n, text
        );
    }

    #[test]
    fn captures_group0_equals_find(pattern in simple_pattern(), text in "[abc]{0,12}") {
        let re = Regex::new(&pattern).unwrap();
        let via_find = re.find(&text).map(|m| (m.start, m.end));
        let via_caps = re
            .captures(&text)
            .and_then(|c| c.get(0).map(|m| (m.start, m.end)));
        prop_assert_eq!(via_find, via_caps);
    }

    #[test]
    fn word_boundary_consistency(text in "[a cb]{0,16}") {
        // \bX and X agree whenever the match starts at a boundary by
        // construction (start-of-text or after a space).
        let plain = Regex::new("ab").unwrap();
        let bounded = Regex::new(r"\bab").unwrap();
        if let Some(m) = bounded.find(&text) {
            // Every bounded match is also a plain match at the same spot.
            let pm = plain.find_at(&text, m.start).unwrap();
            prop_assert_eq!((pm.start, pm.end), (m.start, m.end));
        }
    }
}
