//! Differential sweep: the DFA-prefiltered public API vs the raw Pike VM.
//!
//! The lazy DFA in front of `Regex::{is_match, find_at, captures_at}` must
//! never change an answer — only skip Pike VM runs that would have found
//! nothing. This sweep drives both engines over (a) the library's own test
//! corpus of patterns and (b) seeded pseudo-random patterns and haystacks,
//! asserting identical matches, identical spans, identical capture slots,
//! and identical fuel-exhaustion refusals.

use incite_regex::compile::{compile, Program};
use incite_regex::parser::parse;
use incite_regex::{vm, Regex};

/// Deterministic SplitMix64 — the sweep must be reproducible.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: usize) -> usize {
        (self.next() % n as u64) as usize
    }

    fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len())]
    }
}

/// The Pike-only reference: same parse + compile, searched via `vm::`.
fn reference(pattern: &str, ci: bool) -> Program {
    compile(&parse(pattern).expect(pattern), ci).expect(pattern)
}

/// Asserts the public (DFA-prefiltered) API agrees with the raw VM on
/// `text`: existence, leftmost span, capture slots, and iteration.
fn assert_agreement(re: &Regex, prog: &Program, text: &str) {
    let pat = re.pattern();
    // Existence.
    let vm_found = vm::search(prog, text, 0);
    assert_eq!(
        re.is_match(text),
        vm_found.is_some(),
        "is_match diverged: {pat:?} over {text:?}"
    );
    // Leftmost span.
    assert_eq!(
        re.find(text).map(|m| (m.start, m.end)),
        vm_found,
        "find diverged: {pat:?} over {text:?}"
    );
    // Spans from every start offset (exercises offset context: \b, ^).
    for start in 0..=text.len().min(12) {
        if !text.is_char_boundary(start) {
            continue;
        }
        assert_eq!(
            re.find_at(text, start).map(|m| (m.start, m.end)),
            vm::search(prog, text, start),
            "find_at({start}) diverged: {pat:?} over {text:?}"
        );
    }
    // Capture slots.
    let vm_caps = vm::search_captures(prog, text, 0);
    let re_caps = re.captures(text);
    match (&re_caps, &vm_caps) {
        (None, None) => {}
        (Some(got), Some(want)) => {
            for g in 0..re.group_count() {
                let got_span = got.get(g).map(|m| (m.start, m.end));
                let want_span = want
                    .get(2 * g)
                    .copied()
                    .flatten()
                    .zip(want.get(2 * g + 1).copied().flatten());
                assert_eq!(
                    got_span, want_span,
                    "group {g} diverged: {pat:?} over {text:?}"
                );
            }
        }
        _ => panic!(
            "captures presence diverged: {pat:?} over {text:?}: {:?} vs {:?}",
            re_caps.is_some(),
            vm_caps.is_some()
        ),
    }
    // Non-overlapping iteration (drives find_at repeatedly through the
    // shared DFA cache).
    let mut pos = 0;
    let mut vm_iter: Vec<(usize, usize)> = Vec::new();
    while pos <= text.len() {
        match vm::search(prog, text, pos) {
            Some((s, e)) => {
                vm_iter.push((s, e));
                pos = if s == e {
                    let mut i = e + 1;
                    while i < text.len() && !text.is_char_boundary(i) {
                        i += 1;
                    }
                    i
                } else {
                    e
                };
            }
            None => break,
        }
    }
    let re_iter: Vec<(usize, usize)> = re.find_iter(text).map(|m| (m.start, m.end)).collect();
    assert_eq!(
        re_iter, vm_iter,
        "find_iter diverged: {pat:?} over {text:?}"
    );
}

/// The library's own test corpus of patterns (lib.rs + PII shapes).
const CORPUS_PATTERNS: &[&str] = &[
    "dox",
    "a+",
    "a|ab",
    "<.*>",
    "<.*?>",
    "a??",
    r"\d{3}",
    r"\d{2,3}",
    r"\d{5,}",
    "[a-c]+",
    "[^a-z ]+",
    r"[\d-]+",
    "^abc",
    "def$",
    "^$",
    r"\bcat\b",
    r"\Bcat\B",
    r"(\w+)@(\w+)\.com",
    r"(?:ab)+(c)",
    r"a(b)?c",
    r"\d+",
    "a*",
    "a.c",
    r"\.",
    r"\\",
    r"\w+",
    r"\s+",
    r"\D+",
    "ö+",
    r"\(?\d{3}\)?[-. ]?\d{3}[-. ]?\d{4}",
    r"(\w+):(\d+)",
    "(a+)+$",
    "x*",
    "é",
];

const CORPUS_HAYSTACKS: &[&str] = &[
    "",
    "please dox him",
    "nothing here",
    "baaab",
    "ab",
    "<a><b>",
    "ab 1234",
    "a 12345",
    "zzabcz",
    "ab 123 cd",
    "abcdef",
    "xabc",
    "defabc",
    "the cat sat",
    "concatenate",
    "mail me at someone@example.com now",
    "ababc",
    "ac",
    "12 and 345 and 6",
    "ba",
    "a\nc",
    "héllo!",
    "a \t b",
    "12ab34",
    "grün öö",
    "é",
    "call (212) 555-0187 today",
    "212.555.0187",
    "2125550187",
    "call 555-018 today",
    "a:1 b:22 c:333",
    "café déjà",
    "aaaaaaaaab",
    "x",
];

#[test]
fn corpus_patterns_agree_everywhere() {
    for pat in CORPUS_PATTERNS {
        let re = Regex::new(pat).unwrap();
        let prog = reference(pat, false);
        for text in CORPUS_HAYSTACKS {
            assert_agreement(&re, &prog, text);
        }
    }
}

#[test]
fn case_insensitive_patterns_agree() {
    for pat in ["twitter", "[a-z]+", r"\bCAT\b", "aBc{2,3}"] {
        let re = Regex::case_insensitive(pat).unwrap();
        let prog = reference(pat, true);
        for text in [
            "check his TWITTER account",
            "Twitter",
            "ABC",
            "the CaT sat",
            "xxaBCCcc",
            "",
        ] {
            assert_agreement(&re, &prog, text);
        }
    }
}

/// Grows a random pattern from a tiny grammar; every production parses.
fn random_pattern(rng: &mut Rng, depth: usize) -> String {
    const ATOMS: &[&str] = &[
        "a", "b", "c", "x", "1", " ", ".", r"\d", r"\w", r"\s", r"\D", "[abc]", "[^ab]",
        "[a-c1-3]", "é",
    ];
    if depth == 0 {
        return (*rng.pick(ATOMS)).to_string();
    }
    match rng.below(10) {
        0 => format!(
            "{}|{}",
            random_pattern(rng, depth - 1),
            random_pattern(rng, depth - 1)
        ),
        1 => format!("({})", random_pattern(rng, depth - 1)),
        2 => format!("(?:{})", random_pattern(rng, depth - 1)),
        3 => {
            let q = *rng.pick(&["*", "+", "?", "*?", "+?", "{2}", "{1,3}", "{2,}"]);
            format!("(?:{}){q}", random_pattern(rng, depth - 1))
        }
        4 => format!(
            "{}{}",
            random_pattern(rng, depth - 1),
            random_pattern(rng, depth - 1)
        ),
        5 => format!(r"\b{}", random_pattern(rng, depth - 1)),
        6 => format!("^{}", random_pattern(rng, depth - 1)),
        7 => format!("{}$", random_pattern(rng, depth - 1)),
        _ => (*rng.pick(ATOMS)).to_string(),
    }
}

fn random_haystack(rng: &mut Rng) -> String {
    const CHARS: &[char] = &['a', 'b', 'c', 'x', '1', '2', ' ', '.', 'é', '\n', '_'];
    let len = rng.below(40);
    (0..len).map(|_| *rng.pick(CHARS)).collect()
}

#[test]
fn seeded_random_sweep_agrees() {
    let mut rng = Rng(0x1ce_d0f5);
    for _ in 0..150 {
        let pat = random_pattern(&mut rng, 3);
        let re = Regex::new(&pat).unwrap();
        let prog = reference(&pat, false);
        for _ in 0..12 {
            let text = random_haystack(&mut rng);
            assert_agreement(&re, &prog, &text);
        }
    }
}

#[test]
fn fuel_exhaustion_refusals_are_unchanged() {
    // The fueled search API is pure Pike — the DFA must not alter its
    // deterministic refusal behavior or step counts.
    let prog = reference("a+b", false);
    let text = "aaaaaaaaab";
    let (found, fuel) = vm::search_fueled(&prog, text, 0, 3);
    assert_eq!(found, None);
    assert!(fuel.exhausted());
    let (found2, fuel2) = vm::search_fueled(&prog, text, 0, 3);
    assert_eq!(found2, None);
    assert_eq!(fuel.used(), fuel2.used());
    // With an adequate budget the fueled result matches the public API.
    let budget = vm::fuel_for(&prog, text.len());
    let (found3, fuel3) = vm::search_fueled(&prog, text, 0, budget);
    assert!(!fuel3.exhausted());
    let re = Regex::new("a+b").unwrap();
    assert_eq!(re.find(text).map(|m| (m.start, m.end)), found3);
}
