//! Pattern abstract syntax tree.

/// A character-class item: either a single character or an inclusive range.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ClassItem {
    /// A single character.
    Char(char),
    /// An inclusive range `lo-hi`.
    Range(char, char),
    /// A named Perl class inside brackets (`[\d]`, `[\w]`, `[\s]`).
    Perl(PerlClass),
}

/// The Perl shorthand classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PerlClass {
    /// `\d` — ASCII digits.
    Digit,
    /// `\w` — alphanumerics plus `_` (Unicode alphabetic allowed).
    Word,
    /// `\s` — whitespace.
    Space,
}

/// A parsed character class.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharClass {
    /// Items in the class.
    pub items: Vec<ClassItem>,
    /// Whether the class is negated (`[^…]`).
    pub negated: bool,
}

/// Quantifier bounds: `{min, max}` with `max == None` meaning unbounded.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Repeat {
    pub min: u32,
    pub max: Option<u32>,
    /// Greedy unless a `?` suffix made it lazy.
    pub greedy: bool,
}

/// An AST node.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty pattern (matches the empty string).
    Empty,
    /// A literal character.
    Literal(char),
    /// `.` — any character except `\n`.
    AnyChar,
    /// A bracketed character class.
    Class(CharClass),
    /// A Perl shorthand outside brackets (`\d`, `\W`, …); `negated`
    /// represents the uppercase variants.
    Perl { class: PerlClass, negated: bool },
    /// `^` — start of text.
    StartAnchor,
    /// `$` — end of text.
    EndAnchor,
    /// `\b` (`negated = false`) or `\B` (`negated = true`).
    WordBoundary { negated: bool },
    /// Concatenation of sub-patterns.
    Concat(Vec<Ast>),
    /// Alternation of branches.
    Alternate(Vec<Ast>),
    /// A repeated sub-pattern.
    Repeat { node: Box<Ast>, repeat: Repeat },
    /// A group. `index` is `Some(n)` for capturing groups (1-based).
    Group { node: Box<Ast>, index: Option<u32> },
}

impl Ast {
    /// Number of capturing groups contained in (and including) this node.
    pub fn capture_count(&self) -> u32 {
        match self {
            Ast::Concat(items) | Ast::Alternate(items) => {
                items.iter().map(Ast::capture_count).sum()
            }
            Ast::Repeat { node, .. } => node.capture_count(),
            Ast::Group { node, index } => u32::from(index.is_some()) + node.capture_count(),
            _ => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capture_count_counts_nested_groups() {
        // ((a)(?:b))(c)
        let ast = Ast::Concat(vec![
            Ast::Group {
                index: Some(1),
                node: Box::new(Ast::Concat(vec![
                    Ast::Group {
                        index: Some(2),
                        node: Box::new(Ast::Literal('a')),
                    },
                    Ast::Group {
                        index: None,
                        node: Box::new(Ast::Literal('b')),
                    },
                ])),
            },
            Ast::Group {
                index: Some(3),
                node: Box::new(Ast::Literal('c')),
            },
        ]);
        assert_eq!(ast.capture_count(), 3);
    }

    #[test]
    fn leaves_have_no_captures() {
        assert_eq!(Ast::Literal('x').capture_count(), 0);
        assert_eq!(Ast::AnyChar.capture_count(), 0);
        assert_eq!(Ast::Empty.capture_count(), 0);
    }
}
