//! Thompson-construction compiler: AST → NFA bytecode.

use crate::ast::{Ast, CharClass, ClassItem, PerlClass, Repeat};
use crate::error::Error;

/// Maximum compiled program size, guarding against counted-repetition blowup.
const MAX_PROGRAM: usize = 100_000;

/// A character predicate tested by [`Inst::Char`].
#[derive(Debug, Clone, PartialEq)]
pub enum CharPred {
    /// Exact character.
    Literal(char),
    /// `.` — anything but `\n`.
    Any,
    /// Bracketed class, flattened to ranges.
    Class {
        ranges: Vec<(char, char)>,
        perls: Vec<PerlClass>,
        negated: bool,
    },
    /// A Perl shorthand (`\d`, `\W`, …).
    Perl { class: PerlClass, negated: bool },
}

pub(crate) fn perl_matches(class: PerlClass, c: char) -> bool {
    match class {
        PerlClass::Digit => c.is_ascii_digit(),
        PerlClass::Word => c.is_alphanumeric() || c == '_',
        PerlClass::Space => c.is_whitespace(),
    }
}

impl CharPred {
    /// Whether the predicate accepts `c`. `ci` enables case folding.
    pub fn matches(&self, c: char, ci: bool) -> bool {
        match self {
            CharPred::Literal(l) => {
                if ci {
                    let lc = lower(c);
                    let ll = lower(*l);
                    lc == ll
                } else {
                    c == *l
                }
            }
            CharPred::Any => c != '\n',
            CharPred::Class {
                ranges,
                perls,
                negated,
            } => {
                let mut hit = perls.iter().any(|p| perl_matches(*p, c));
                if !hit {
                    hit = in_ranges(ranges, c) || (ci && in_ranges(ranges, flip_case(c)));
                }
                hit != *negated
            }
            CharPred::Perl { class, negated } => perl_matches(*class, c) != *negated,
        }
    }
}

fn lower(c: char) -> char {
    let mut it = c.to_lowercase();
    let l = it.next().unwrap_or(c);
    if it.next().is_some() {
        c
    } else {
        l
    }
}

fn flip_case(c: char) -> char {
    if c.is_uppercase() {
        lower(c)
    } else {
        let mut it = c.to_uppercase();
        let u = it.next().unwrap_or(c);
        if it.next().is_some() {
            c
        } else {
            u
        }
    }
}

fn in_ranges(ranges: &[(char, char)], c: char) -> bool {
    ranges.iter().any(|&(lo, hi)| lo <= c && c <= hi)
}

/// One NFA instruction.
#[derive(Debug, Clone, PartialEq)]
pub enum Inst {
    /// Consume one character matching the predicate.
    Char(CharPred),
    /// Try `a` first (higher priority), then `b`.
    Split(usize, usize),
    /// Unconditional jump.
    Jmp(usize),
    /// Record the current position into capture slot `n`.
    Save(usize),
    /// Zero-width: start of text.
    AssertStart,
    /// Zero-width: end of text.
    AssertEnd,
    /// Zero-width: `\b` / `\B`.
    WordBoundary { negated: bool },
    /// Accept.
    Match,
}

/// A compiled program.
#[derive(Debug, Clone)]
pub struct Program {
    /// Instruction stream. Entry point is index 0.
    pub insts: Vec<Inst>,
    /// Number of capture groups including group 0.
    pub n_groups: usize,
    /// Case-insensitive matching.
    pub case_insensitive: bool,
}

impl Program {
    /// Number of capture slots (two per group).
    pub fn n_slots(&self) -> usize {
        self.n_groups * 2
    }
}

struct Compiler {
    insts: Vec<Inst>,
}

impl Compiler {
    fn emit(&mut self, inst: Inst) -> Result<usize, Error> {
        if self.insts.len() >= MAX_PROGRAM {
            return Err(Error::new("compiled program too large", 0));
        }
        self.insts.push(inst);
        Ok(self.insts.len() - 1)
    }

    fn here(&self) -> usize {
        self.insts.len()
    }

    fn patch_split(&mut self, at: usize, which: u8, target: usize) {
        if let Inst::Split(a, b) = &mut self.insts[at] {
            if which == 0 {
                *a = target;
            } else {
                *b = target;
            }
        } else {
            unreachable!("patch_split on non-split");
        }
    }

    fn patch_jmp(&mut self, at: usize, target: usize) {
        if let Inst::Jmp(t) = &mut self.insts[at] {
            *t = target;
        } else {
            unreachable!("patch_jmp on non-jmp");
        }
    }

    /// Compiles `ast`; on return the program falls through to `self.here()`.
    fn node(&mut self, ast: &Ast) -> Result<(), Error> {
        match ast {
            Ast::Empty => Ok(()),
            Ast::Literal(c) => {
                self.emit(Inst::Char(CharPred::Literal(*c)))?;
                Ok(())
            }
            Ast::AnyChar => {
                self.emit(Inst::Char(CharPred::Any))?;
                Ok(())
            }
            Ast::Perl { class, negated } => {
                self.emit(Inst::Char(CharPred::Perl {
                    class: *class,
                    negated: *negated,
                }))?;
                Ok(())
            }
            Ast::Class(class) => {
                self.emit(Inst::Char(compile_class(class)))?;
                Ok(())
            }
            Ast::StartAnchor => {
                self.emit(Inst::AssertStart)?;
                Ok(())
            }
            Ast::EndAnchor => {
                self.emit(Inst::AssertEnd)?;
                Ok(())
            }
            Ast::WordBoundary { negated } => {
                self.emit(Inst::WordBoundary { negated: *negated })?;
                Ok(())
            }
            Ast::Concat(items) => {
                for item in items {
                    self.node(item)?;
                }
                Ok(())
            }
            Ast::Alternate(branches) => {
                // split b1, (split b2, (... bn)); each branch jumps to end.
                let mut jmp_holes = Vec::new();
                let n = branches.len();
                for (i, branch) in branches.iter().enumerate() {
                    if i + 1 < n {
                        let split = self.emit(Inst::Split(0, 0))?;
                        let b_start = self.here();
                        self.patch_split(split, 0, b_start);
                        self.node(branch)?;
                        let j = self.emit(Inst::Jmp(0))?;
                        jmp_holes.push(j);
                        let next = self.here();
                        self.patch_split(split, 1, next);
                    } else {
                        self.node(branch)?;
                    }
                }
                let end = self.here();
                for j in jmp_holes {
                    self.patch_jmp(j, end);
                }
                Ok(())
            }
            Ast::Group { node, index } => {
                if let Some(i) = index {
                    self.emit(Inst::Save(2 * *i as usize))?;
                    self.node(node)?;
                    self.emit(Inst::Save(2 * *i as usize + 1))?;
                } else {
                    self.node(node)?;
                }
                Ok(())
            }
            Ast::Repeat { node, repeat } => self.repeat(node, *repeat),
        }
    }

    fn repeat(&mut self, node: &Ast, rep: Repeat) -> Result<(), Error> {
        let Repeat { min, max, greedy } = rep;
        // Mandatory copies.
        for _ in 0..min {
            self.node(node)?;
        }
        match max {
            None => {
                // Star loop over one more copy: L: split body, out; body; jmp L
                let split = self.emit(Inst::Split(0, 0))?;
                let body = self.here();
                self.node(node)?;
                self.emit(Inst::Jmp(split))?;
                let out = self.here();
                if greedy {
                    self.patch_split(split, 0, body);
                    self.patch_split(split, 1, out);
                } else {
                    self.patch_split(split, 0, out);
                    self.patch_split(split, 1, body);
                }
                Ok(())
            }
            Some(max) => {
                // (max - min) optional copies, each individually skippable.
                let mut splits = Vec::new();
                for _ in min..max {
                    let split = self.emit(Inst::Split(0, 0))?;
                    let body = self.here();
                    if greedy {
                        self.patch_split(split, 0, body);
                    } else {
                        self.patch_split(split, 1, body);
                    }
                    splits.push(split);
                    self.node(node)?;
                }
                let out = self.here();
                for split in splits {
                    if greedy {
                        self.patch_split(split, 1, out);
                    } else {
                        self.patch_split(split, 0, out);
                    }
                }
                Ok(())
            }
        }
    }
}

fn compile_class(class: &CharClass) -> CharPred {
    let mut ranges = Vec::new();
    let mut perls = Vec::new();
    for item in &class.items {
        match item {
            ClassItem::Char(c) => ranges.push((*c, *c)),
            ClassItem::Range(lo, hi) => ranges.push((*lo, *hi)),
            ClassItem::Perl(p) => perls.push(*p),
        }
    }
    CharPred::Class {
        ranges,
        perls,
        negated: class.negated,
    }
}

/// Compiles an AST into a program. The program is wrapped as
/// `Save(0) <body> Save(1) Match`; unanchored search is handled by the VM.
pub fn compile(ast: &Ast, case_insensitive: bool) -> Result<Program, Error> {
    let n_groups = ast.capture_count() as usize + 1;
    let mut c = Compiler { insts: Vec::new() };
    c.emit(Inst::Save(0))?;
    c.node(ast)?;
    c.emit(Inst::Save(1))?;
    c.emit(Inst::Match)?;
    Ok(Program {
        insts: c.insts,
        n_groups,
        case_insensitive,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse;

    fn compile_pat(pat: &str) -> Program {
        compile(&parse(pat).unwrap(), false).unwrap()
    }

    #[test]
    fn literal_program_shape() {
        let p = compile_pat("ab");
        assert_eq!(p.insts.len(), 5); // Save0, a, b, Save1, Match
        assert!(matches!(p.insts[4], Inst::Match));
        assert_eq!(p.n_groups, 1);
        assert_eq!(p.n_slots(), 2);
    }

    #[test]
    fn groups_allocate_slots() {
        let p = compile_pat("(a)(b)");
        assert_eq!(p.n_groups, 3);
        let saves: Vec<usize> = p
            .insts
            .iter()
            .filter_map(|i| {
                if let Inst::Save(n) = i {
                    Some(*n)
                } else {
                    None
                }
            })
            .collect();
        assert_eq!(saves, vec![0, 2, 3, 4, 5, 1]);
    }

    #[test]
    fn counted_repeat_expands() {
        let p3 = compile_pat("a{3}");
        let p5 = compile_pat("a{5}");
        assert!(p5.insts.len() > p3.insts.len());
    }

    #[test]
    fn huge_repeat_is_rejected() {
        // 1000 is allowed per repetition but nesting multiplies; the program
        // size cap must kick in.
        let ast = parse("(?:a{1000}){1000}").unwrap();
        assert!(compile(&ast, false).is_err());
    }

    #[test]
    fn char_pred_literal_case_folding() {
        let pred = CharPred::Literal('a');
        assert!(pred.matches('a', false));
        assert!(!pred.matches('A', false));
        assert!(pred.matches('A', true));
    }

    #[test]
    fn char_pred_class_negation() {
        let pred = CharPred::Class {
            ranges: vec![('a', 'z')],
            perls: vec![],
            negated: true,
        };
        assert!(!pred.matches('q', false));
        assert!(pred.matches('1', false));
    }

    #[test]
    fn char_pred_class_ci_checks_flipped_case() {
        let pred = CharPred::Class {
            ranges: vec![('a', 'z')],
            perls: vec![],
            negated: false,
        };
        assert!(pred.matches('Q', true));
        assert!(!pred.matches('Q', false));
    }

    #[test]
    fn perl_word_includes_underscore_and_unicode() {
        assert!(perl_matches(PerlClass::Word, '_'));
        assert!(perl_matches(PerlClass::Word, 'ü'));
        assert!(!perl_matches(PerlClass::Word, '-'));
        assert!(perl_matches(PerlClass::Digit, '7'));
        assert!(!perl_matches(PerlClass::Digit, '٧')); // ASCII digits only
    }
}
