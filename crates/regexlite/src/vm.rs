//! Pike VM: NFA simulation with capture slots in linear time.
//!
//! The VM advances all live threads in lock step over the input, keeping
//! threads ordered by priority so greedy/lazy quantifier semantics and
//! leftmost-first alternation fall out of the ordering. Captures travel with
//! each thread as reference-counted slot vectors (cloned on write).

use crate::ast::PerlClass;
use crate::compile::{perl_matches, Inst, Program};
use std::rc::Rc;

type Slots = Rc<Vec<Option<usize>>>;

struct ThreadList {
    /// Dense list of (pc, slots), in priority order.
    threads: Vec<(usize, Slots)>,
    /// Sparse visited markers: `seen[pc] == gen` means pc already queued.
    seen: Vec<u64>,
    gen: u64,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList {
            threads: Vec::new(),
            seen: vec![0; n],
            gen: 0,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.gen += 1;
    }
}

/// Zero-width assertion context at an input position.
#[derive(Clone, Copy)]
struct Ctx {
    at_start: bool,
    at_end: bool,
    prev_is_word: bool,
    next_is_word: bool,
    pos: usize,
}

fn is_word(c: char) -> bool {
    perl_matches(PerlClass::Word, c)
}

/// Deterministic execution budget, replacing any wall-clock guard: the VM
/// spends one unit of fuel per scheduled or resumed thread and aborts the
/// search when the tank runs dry. The Pike VM visits each `(instruction,
/// position)` pair at most once, so [`fuel_for`] — a small multiple of
/// `insts × positions` — is unreachable unless the scheduler is broken;
/// exhaustion is therefore a bug signal, not a tuning knob, and the step
/// count is bit-for-bit reproducible across runs and machines.
#[derive(Debug, Clone, Copy)]
pub struct Fuel {
    remaining: u64,
    used: u64,
}

impl Fuel {
    /// A budget of exactly `steps` units.
    pub fn new(steps: u64) -> Fuel {
        Fuel {
            remaining: steps,
            used: 0,
        }
    }

    /// Steps consumed so far.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Whether the budget ran out (the search was abandoned).
    pub fn exhausted(&self) -> bool {
        self.remaining == 0
    }

    /// Burns one unit; returns false once the tank is empty.
    fn burn(&mut self) -> bool {
        if self.remaining == 0 {
            return false;
        }
        self.remaining -= 1;
        self.used += 1;
        true
    }
}

/// The default budget for a search: 4 × instructions × input positions,
/// comfortably above the VM's theoretical one-visit-per-pair bound.
pub fn fuel_for(prog: &Program, text_len: usize) -> u64 {
    let insts = prog.insts.len() as u64 + 1;
    let positions = text_len as u64 + 2;
    insts.saturating_mul(positions).saturating_mul(4)
}

/// Adds a thread, following epsilon transitions until a `Char`/`Match`.
fn add_thread(
    prog: &Program,
    list: &mut ThreadList,
    pc: usize,
    slots: Slots,
    ctx: Ctx,
    fuel: &mut Fuel,
) {
    if !fuel.burn() {
        return;
    }
    // Checked access throughout: a pc outside the program (a compiler bug)
    // drops the thread instead of panicking mid-search.
    match list.seen.get_mut(pc) {
        Some(gen) if *gen == list.gen => return,
        Some(gen) => *gen = list.gen,
        None => {
            debug_assert!(false, "thread pc {pc} outside program");
            return;
        }
    }
    let Some(inst) = prog.insts.get(pc) else {
        debug_assert!(false, "thread pc {pc} outside program");
        return;
    };
    match inst {
        Inst::Jmp(t) => add_thread(prog, list, *t, slots, ctx, fuel),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, slots.clone(), ctx, fuel);
            add_thread(prog, list, *b, slots, ctx, fuel);
        }
        Inst::Save(n) => {
            let mut new_slots = slots;
            {
                let v = Rc::make_mut(&mut new_slots);
                if let Some(slot) = v.get_mut(*n) {
                    *slot = Some(ctx.pos);
                }
            }
            add_thread(prog, list, pc + 1, new_slots, ctx, fuel);
        }
        Inst::AssertStart => {
            if ctx.at_start {
                add_thread(prog, list, pc + 1, slots, ctx, fuel);
            }
        }
        Inst::AssertEnd => {
            if ctx.at_end {
                add_thread(prog, list, pc + 1, slots, ctx, fuel);
            }
        }
        Inst::WordBoundary { negated } => {
            let boundary = ctx.prev_is_word != ctx.next_is_word;
            if boundary != *negated {
                add_thread(prog, list, pc + 1, slots, ctx, fuel);
            }
        }
        Inst::Char(_) | Inst::Match => {
            list.threads.push((pc, slots));
        }
    }
}

/// Runs the VM over `text[start..]`, returning the capture slots of the
/// leftmost match (greedy within the leftmost start).
fn run(prog: &Program, text: &str, start: usize, fuel: &mut Fuel) -> Option<Vec<Option<usize>>> {
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    let empty_slots: Slots = Rc::new(vec![None; prog.n_slots()]);

    let mut best: Option<Vec<Option<usize>>> = None;

    // Character stream with byte offsets; we iterate positions start..=len.
    // A start offset outside the text (or off a char boundary) matches
    // nothing rather than panicking.
    let tail = text.get(start..)?;
    let mut chars = tail.char_indices().map(|(i, c)| (start + i, c)).peekable();
    let mut prev_char: Option<char> = if start == 0 {
        None
    } else {
        text.get(..start).and_then(|head| head.chars().next_back())
    };

    clist.clear();
    loop {
        let (pos, cur) = match chars.peek().copied() {
            Some((i, c)) => (i, Some(c)),
            None => (text.len(), None),
        };
        let ctx = Ctx {
            at_start: pos == 0,
            at_end: cur.is_none(),
            prev_is_word: prev_char.is_some_and(is_word),
            next_is_word: cur.is_some_and(is_word),
            pos,
        };

        // Seed a new lowest-priority thread at this position while no match
        // has been found (unanchored leftmost search).
        if best.is_none() {
            add_thread(prog, &mut clist, 0, empty_slots.clone(), ctx, fuel);
        }
        if clist.threads.is_empty() && best.is_some() {
            break;
        }
        if fuel.exhausted() {
            // Out of budget: report whatever was found before the cutoff.
            return best;
        }

        nlist.clear();
        let threads = std::mem::take(&mut clist.threads);
        for (pc, slots) in threads {
            if !fuel.burn() {
                break;
            }
            let Some(inst) = prog.insts.get(pc) else {
                debug_assert!(false, "thread pc {pc} outside program");
                continue;
            };
            match inst {
                Inst::Char(pred) => {
                    if let Some(c) = cur {
                        if pred.matches(c, prog.case_insensitive) {
                            let next_pos = pos + c.len_utf8();
                            // Context for epsilon closure at the *next* position.
                            let next_ctx = Ctx {
                                at_start: false,
                                at_end: next_pos >= text.len(),
                                prev_is_word: is_word(c),
                                next_is_word: next_char_at(text, next_pos).is_some_and(is_word),
                                pos: next_pos,
                            };
                            add_thread(prog, &mut nlist, pc + 1, slots, next_ctx, fuel);
                        }
                    }
                }
                Inst::Match => {
                    // Highest-priority match at this step: record it and cut
                    // all lower-priority threads.
                    best = Some(slots.as_ref().clone());
                    break;
                }
                _ => unreachable!("epsilon instruction in thread list"),
            }
        }

        std::mem::swap(&mut clist, &mut nlist);
        match chars.next() {
            Some((_, c)) => prev_char = Some(c),
            None => break,
        }
    }

    best
}

fn next_char_at(text: &str, pos: usize) -> Option<char> {
    text.get(pos..).and_then(|s| s.chars().next())
}

/// Finds the leftmost match; returns `(start, end)` byte offsets.
pub fn search(prog: &Program, text: &str, start: usize) -> Option<(usize, usize)> {
    let mut fuel = Fuel::new(fuel_for(prog, text.len()));
    let slots = run(prog, text, start, &mut fuel)?;
    let slot = |i: usize| slots.get(i).copied().flatten();
    Some((slot(0)?, slot(1)?))
}

/// Finds the leftmost match and returns all capture slots.
pub fn search_captures(prog: &Program, text: &str, start: usize) -> Option<Vec<Option<usize>>> {
    let mut fuel = Fuel::new(fuel_for(prog, text.len()));
    run(prog, text, start, &mut fuel)
}

/// [`search`] under an explicit budget, reporting the steps consumed.
/// Used by the linearity tests and available to callers that want a hard
/// ceiling on worst-case work.
pub fn search_fueled(
    prog: &Program,
    text: &str,
    start: usize,
    budget: u64,
) -> (Option<(usize, usize)>, Fuel) {
    let mut fuel = Fuel::new(budget);
    let found = run(prog, text, start, &mut fuel).and_then(|slots| {
        let slot = |i: usize| slots.get(i).copied().flatten();
        Some((slot(0)?, slot(1)?))
    });
    (found, fuel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn prog(pat: &str) -> Program {
        compile(&parse(pat).unwrap(), false).unwrap()
    }

    #[test]
    fn unanchored_search_finds_interior_match() {
        let p = prog("bc");
        assert_eq!(search(&p, "abcd", 0), Some((1, 3)));
    }

    #[test]
    fn leftmost_wins_over_longer_later_match() {
        let p = prog("a+");
        assert_eq!(search(&p, "a aaaa", 0), Some((0, 1)));
    }

    #[test]
    fn search_from_offset() {
        let p = prog("a+");
        assert_eq!(search(&p, "a aaaa", 1), Some((2, 6)));
    }

    #[test]
    fn anchored_end_requires_full_tail() {
        let p = prog("b$");
        assert_eq!(search(&p, "ab", 0), Some((1, 2)));
        assert_eq!(search(&p, "ba", 0), None);
    }

    #[test]
    fn captures_survive_priority_resolution() {
        let p = prog("(a+)(b?)");
        let slots = search_captures(&p, "xaab", 0).unwrap();
        assert_eq!(slots[0], Some(1));
        assert_eq!(slots[1], Some(4));
        assert_eq!((slots[2], slots[3]), (Some(1), Some(3)));
        assert_eq!((slots[4], slots[5]), (Some(3), Some(4)));
    }

    #[test]
    fn word_boundary_at_offsets() {
        let p = prog(r"\bword\b");
        assert_eq!(search(&p, "a word.", 0), Some((2, 6)));
        assert_eq!(search(&p, "sword", 0), None);
        // \b just after the search start offset still sees prior context.
        assert_eq!(search(&p, "sword", 1), None);
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let p = prog("");
        assert_eq!(search(&p, "xyz", 0), Some((0, 0)));
        assert_eq!(search(&p, "xyz", 2), Some((2, 2)));
        assert_eq!(search(&p, "", 0), Some((0, 0)));
    }

    #[test]
    fn multibyte_offsets_are_bytes() {
        let p = prog("b");
        assert_eq!(search(&p, "éb", 0), Some((2, 3)));
    }

    #[test]
    fn default_fuel_is_never_exhausted_on_normal_input() {
        let p = prog(r"(\w+)@(\w+)");
        let text = "contact someone@example repeatedly ".repeat(20);
        let (found, fuel) = search_fueled(&p, &text, 0, fuel_for(&p, text.len()));
        assert!(found.is_some());
        assert!(!fuel.exhausted());
        assert!(fuel.used() > 0);
    }

    #[test]
    fn tiny_budget_aborts_deterministically() {
        let p = prog("a+b");
        let text = "aaaaaaaaab";
        let (found, fuel) = search_fueled(&p, text, 0, 3);
        assert_eq!(found, None);
        assert!(fuel.exhausted());
        // The exact step count is reproducible run to run.
        let (_, fuel2) = search_fueled(&p, text, 0, 3);
        assert_eq!(fuel.used(), fuel2.used());
    }

    #[test]
    fn step_counts_are_deterministic() {
        let p = prog(r"\d{3}-\d{4}");
        let text = "call 555-0187 or 555-0188";
        let budget = fuel_for(&p, text.len());
        let (m1, f1) = search_fueled(&p, text, 0, budget);
        let (m2, f2) = search_fueled(&p, text, 0, budget);
        assert_eq!(m1, m2);
        assert_eq!(f1.used(), f2.used());
    }

    #[test]
    fn out_of_bounds_start_is_a_clean_miss() {
        let p = prog("a");
        assert_eq!(search(&p, "abc", 99), None);
        // Non-boundary offset into a multibyte char is also a miss.
        assert_eq!(search(&p, "éa", 1), None);
    }
}
