//! Pike VM: NFA simulation with capture slots in linear time.
//!
//! The VM advances all live threads in lock step over the input, keeping
//! threads ordered by priority so greedy/lazy quantifier semantics and
//! leftmost-first alternation fall out of the ordering. Captures travel with
//! each thread as reference-counted slot vectors (cloned on write).

use crate::ast::PerlClass;
use crate::compile::{perl_matches, Inst, Program};
use std::rc::Rc;

type Slots = Rc<Vec<Option<usize>>>;

struct ThreadList {
    /// Dense list of (pc, slots), in priority order.
    threads: Vec<(usize, Slots)>,
    /// Sparse visited markers: `seen[pc] == gen` means pc already queued.
    seen: Vec<u64>,
    gen: u64,
}

impl ThreadList {
    fn new(n: usize) -> Self {
        ThreadList {
            threads: Vec::new(),
            seen: vec![0; n],
            gen: 0,
        }
    }

    fn clear(&mut self) {
        self.threads.clear();
        self.gen += 1;
    }
}

/// Zero-width assertion context at an input position.
#[derive(Clone, Copy)]
struct Ctx {
    at_start: bool,
    at_end: bool,
    prev_is_word: bool,
    next_is_word: bool,
    pos: usize,
}

fn is_word(c: char) -> bool {
    perl_matches(PerlClass::Word, c)
}

/// Adds a thread, following epsilon transitions until a `Char`/`Match`.
fn add_thread(prog: &Program, list: &mut ThreadList, pc: usize, slots: Slots, ctx: Ctx) {
    if list.seen[pc] == list.gen {
        return;
    }
    list.seen[pc] = list.gen;
    match &prog.insts[pc] {
        Inst::Jmp(t) => add_thread(prog, list, *t, slots, ctx),
        Inst::Split(a, b) => {
            add_thread(prog, list, *a, slots.clone(), ctx);
            add_thread(prog, list, *b, slots, ctx);
        }
        Inst::Save(n) => {
            let mut new_slots = slots;
            {
                let v = Rc::make_mut(&mut new_slots);
                if *n < v.len() {
                    v[*n] = Some(ctx.pos);
                }
            }
            add_thread(prog, list, pc + 1, new_slots, ctx);
        }
        Inst::AssertStart => {
            if ctx.at_start {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        Inst::AssertEnd => {
            if ctx.at_end {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        Inst::WordBoundary { negated } => {
            let boundary = ctx.prev_is_word != ctx.next_is_word;
            if boundary != *negated {
                add_thread(prog, list, pc + 1, slots, ctx);
            }
        }
        Inst::Char(_) | Inst::Match => {
            list.threads.push((pc, slots));
        }
    }
}

/// Runs the VM over `text[start..]`, returning the capture slots of the
/// leftmost match (greedy within the leftmost start).
fn run(prog: &Program, text: &str, start: usize) -> Option<Vec<Option<usize>>> {
    let n = prog.insts.len();
    let mut clist = ThreadList::new(n);
    let mut nlist = ThreadList::new(n);
    let empty_slots: Slots = Rc::new(vec![None; prog.n_slots()]);

    let mut best: Option<Vec<Option<usize>>> = None;

    // Character stream with byte offsets; we iterate positions start..=len.
    let tail = &text[start..];
    let mut chars = tail.char_indices().map(|(i, c)| (start + i, c)).peekable();
    let mut prev_char: Option<char> = if start == 0 {
        None
    } else {
        text[..start].chars().next_back()
    };

    clist.clear();
    loop {
        let (pos, cur) = match chars.peek().copied() {
            Some((i, c)) => (i, Some(c)),
            None => (text.len(), None),
        };
        let ctx = Ctx {
            at_start: pos == 0,
            at_end: cur.is_none(),
            prev_is_word: prev_char.is_some_and(is_word),
            next_is_word: cur.is_some_and(is_word),
            pos,
        };

        // Seed a new lowest-priority thread at this position while no match
        // has been found (unanchored leftmost search).
        if best.is_none() {
            add_thread(prog, &mut clist, 0, empty_slots.clone(), ctx);
        }
        if clist.threads.is_empty() && best.is_some() {
            break;
        }

        nlist.clear();
        let threads = std::mem::take(&mut clist.threads);
        for (pc, slots) in threads {
            match &prog.insts[pc] {
                Inst::Char(pred) => {
                    if let Some(c) = cur {
                        if pred.matches(c, prog.case_insensitive) {
                            let next_pos = pos + c.len_utf8();
                            // Context for epsilon closure at the *next* position.
                            let next_ctx = Ctx {
                                at_start: false,
                                at_end: next_pos >= text.len(),
                                prev_is_word: is_word(c),
                                next_is_word: next_char_at(text, next_pos).is_some_and(is_word),
                                pos: next_pos,
                            };
                            add_thread(prog, &mut nlist, pc + 1, slots, next_ctx);
                        }
                    }
                }
                Inst::Match => {
                    // Highest-priority match at this step: record it and cut
                    // all lower-priority threads.
                    best = Some(slots.as_ref().clone());
                    break;
                }
                _ => unreachable!("epsilon instruction in thread list"),
            }
        }

        std::mem::swap(&mut clist, &mut nlist);
        match chars.next() {
            Some((_, c)) => prev_char = Some(c),
            None => break,
        }
    }

    best
}

fn next_char_at(text: &str, pos: usize) -> Option<char> {
    text.get(pos..).and_then(|s| s.chars().next())
}

/// Finds the leftmost match; returns `(start, end)` byte offsets.
pub fn search(prog: &Program, text: &str, start: usize) -> Option<(usize, usize)> {
    let slots = run(prog, text, start)?;
    Some((slots[0]?, slots[1]?))
}

/// Finds the leftmost match and returns all capture slots.
pub fn search_captures(prog: &Program, text: &str, start: usize) -> Option<Vec<Option<usize>>> {
    run(prog, text, start)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;

    fn prog(pat: &str) -> Program {
        compile(&parse(pat).unwrap(), false).unwrap()
    }

    #[test]
    fn unanchored_search_finds_interior_match() {
        let p = prog("bc");
        assert_eq!(search(&p, "abcd", 0), Some((1, 3)));
    }

    #[test]
    fn leftmost_wins_over_longer_later_match() {
        let p = prog("a+");
        assert_eq!(search(&p, "a aaaa", 0), Some((0, 1)));
    }

    #[test]
    fn search_from_offset() {
        let p = prog("a+");
        assert_eq!(search(&p, "a aaaa", 1), Some((2, 6)));
    }

    #[test]
    fn anchored_end_requires_full_tail() {
        let p = prog("b$");
        assert_eq!(search(&p, "ab", 0), Some((1, 2)));
        assert_eq!(search(&p, "ba", 0), None);
    }

    #[test]
    fn captures_survive_priority_resolution() {
        let p = prog("(a+)(b?)");
        let slots = search_captures(&p, "xaab", 0).unwrap();
        assert_eq!(slots[0], Some(1));
        assert_eq!(slots[1], Some(4));
        assert_eq!((slots[2], slots[3]), (Some(1), Some(3)));
        assert_eq!((slots[4], slots[5]), (Some(3), Some(4)));
    }

    #[test]
    fn word_boundary_at_offsets() {
        let p = prog(r"\bword\b");
        assert_eq!(search(&p, "a word.", 0), Some((2, 6)));
        assert_eq!(search(&p, "sword", 0), None);
        // \b just after the search start offset still sees prior context.
        assert_eq!(search(&p, "sword", 1), None);
    }

    #[test]
    fn empty_pattern_matches_everywhere() {
        let p = prog("");
        assert_eq!(search(&p, "xyz", 0), Some((0, 0)));
        assert_eq!(search(&p, "xyz", 2), Some((2, 2)));
        assert_eq!(search(&p, "", 0), Some((0, 0)));
    }

    #[test]
    fn multibyte_offsets_are_bytes() {
        let p = prog("b");
        assert_eq!(search(&p, "éb", 0), Some((2, 3)));
    }
}
