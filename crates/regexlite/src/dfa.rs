//! Lazy char-class DFA: an existence prefilter in front of the Pike VM.
//!
//! The 12 PII extractors run over every document, and the overwhelmingly
//! common outcome is *no match*: the Pike VM still pays an epsilon-closure
//! with reference-counted capture slots at every input position to discover
//! that. This module compiles the same NFA program, on demand, into a DFA
//! over character equivalence classes and answers one question — "does any
//! match exist in `text[start..]`?" — with one table lookup per character.
//!
//! Division of labor:
//!
//! * **Miss (the hot case):** the DFA proves no match exists and the caller
//!   returns `None` without ever running the Pike VM.
//! * **Hit:** the DFA only proves existence; the caller falls back to the
//!   unchanged Pike VM, which reports the exact leftmost-first span and
//!   capture slots. Correctness is therefore by construction: every span or
//!   capture the engine ever reports still comes from the same VM code path
//!   as before.
//! * **Bail:** if the pattern is too large to classify, the state cache
//!   overflows too often, or the cache lock is contended, the scan gives up
//!   and the caller runs the Pike VM alone — the DFA is an optimization,
//!   never a semantic dependency.
//!
//! Determinism: the cache is bounded at [`MAX_STATES`] states and, on
//! overflow, is flushed *entirely* and rebuilt from the live scan state.
//! Which states exist after any number of scans is a pure function of the
//! pattern and the scanned inputs — there is no recency or frequency
//! eviction that could depend on timing. A scan that flushes more than
//! [`MAX_FLUSHES`] times gives up deterministically (the cache-overflow
//! fallback), so the Pike-vs-DFA decision is itself reproducible. All
//! bookkeeping uses `BTreeMap`/`Vec` — no randomized hashing anywhere near
//! the scoring path (INC012).

use crate::ast::PerlClass;
use crate::compile::{perl_matches, CharPred, Inst, Program};
use std::collections::BTreeMap;
use std::sync::Mutex;

/// Programs above this size never get a DFA (pending-pc sets and per-step
/// closures would dwarf the Pike VM's cost on patterns this large).
const MAX_DFA_PROGRAM: usize = 4096;

/// Maximum distinct character predicates: signatures are bitsets in a
/// `u64` with the top bit reserved for the word-character property.
const MAX_PREDS: usize = 48;

/// Maximum character equivalence classes (the class list is grow-only and
/// survives state flushes; exceeding it bails the scan to the Pike VM).
const MAX_CLASSES: usize = 96;

/// State-cache bound. On overflow the whole cache is flushed — a
/// deterministic function of pattern + input, unlike LRU-style eviction.
const MAX_STATES: usize = 512;

/// A single scan that flushes more than this gives up and falls back to
/// the Pike VM: the pattern's reachable state space is too large to cache.
const MAX_FLUSHES: usize = 4;

/// Signature bit recording `\w`-ness of the class (for `\b` / `\B`).
const WORD_BIT: u64 = 1 << 63;

/// `State::trans` sentinel: transition not yet computed.
const UNCOMPUTED: u32 = u32::MAX;
/// `State::trans` sentinel: taking this transition proves a match exists.
const MATCHED: u32 = u32::MAX - 1;

/// Outcome of an existence scan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Scan {
    /// No match exists anywhere in `text[start..]` — the caller can return
    /// `None` without running the Pike VM.
    NoMatch,
    /// At least one match exists; the Pike VM must run to find its span.
    MatchExists,
    /// The DFA gave up (cache overflow, class overflow, or lock
    /// contention); the caller must run the Pike VM alone.
    GaveUp,
}

/// A DFA state: the set of NFA `Char` pcs pending consumption at the
/// current position, plus the zero-width context bits that epsilon closure
/// depends on. The pending set is kept sorted — priority order is
/// irrelevant for existence, and normalizing collapses equivalent states.
type StateKey = (Vec<u16>, bool, bool);

#[derive(Debug)]
struct State {
    pending: Vec<u16>,
    at_start: bool,
    prev_is_word: bool,
    /// Transition per class id; grown on demand, `UNCOMPUTED` until built.
    trans: Vec<u32>,
}

/// The mutable half of the DFA, shared across scans behind a `Mutex`.
/// Scans use `try_lock`: a contended scan bails to the Pike VM (identical
/// output, just slower) instead of serializing concurrent extractors.
#[derive(Debug, Default)]
struct Cache {
    /// Equivalence-class signatures, grow-only (survives state flushes).
    classes: Vec<u64>,
    ids: BTreeMap<StateKey, u32>,
    states: Vec<State>,
    /// Total deterministic flushes since construction (diagnostics).
    flushes: u64,
}

impl Cache {
    /// Class id for a signature, registering it if new.
    fn class_of_signature(&mut self, sig: u64) -> Option<u16> {
        if let Some(i) = self.classes.iter().position(|&s| s == sig) {
            return Some(i as u16);
        }
        if self.classes.len() >= MAX_CLASSES {
            return None;
        }
        self.classes.push(sig);
        Some((self.classes.len() - 1) as u16)
    }

    /// Interns a state, flushing the whole cache first if it is full.
    /// Returns `(id, flushed)`.
    fn intern(&mut self, pending: Vec<u16>, at_start: bool, prev_is_word: bool) -> (u32, bool) {
        let key: StateKey = (pending, at_start, prev_is_word);
        if let Some(&id) = self.ids.get(&key) {
            return (id, false);
        }
        let mut flushed = false;
        if self.states.len() >= MAX_STATES {
            // Deterministic wholesale flush: no recency bookkeeping, so the
            // cache contents never depend on scan interleaving history
            // beyond the inputs themselves.
            self.ids.clear();
            self.states.clear();
            self.flushes += 1;
            flushed = true;
        }
        let id = self.states.len() as u32;
        self.states.push(State {
            pending: key.0.clone(),
            at_start: key.1,
            prev_is_word: key.2,
            trans: Vec::new(),
        });
        self.ids.insert(key, id);
        (id, flushed)
    }
}

/// One step's result while the transition is being computed.
enum Step {
    /// Epsilon closure reached `Match`: a match exists.
    Matched,
    /// The next pending set (sorted, deduped) after consuming the class.
    Next(Vec<u16>),
}

/// The immutable half of the DFA, built once per compiled `Regex`.
#[derive(Debug)]
pub(crate) struct Dfa {
    /// Distinct `Char` predicates of the program, in first-use order.
    preds: Vec<CharPred>,
    /// pc → index into `preds` for `Char` instructions (`u16::MAX` else).
    pred_of: Vec<u16>,
    /// Precomputed class ids for ASCII; non-ASCII classifies on the fly.
    ascii: [u16; 128],
    case_insensitive: bool,
    cache: Mutex<Cache>,
}

/// Which predicates accept `c`, plus the word-character bit.
fn signature(preds: &[CharPred], c: char, ci: bool) -> u64 {
    let mut sig = 0u64;
    for (i, pred) in preds.iter().enumerate() {
        if pred.matches(c, ci) {
            sig |= 1u64 << i;
        }
    }
    if perl_matches(PerlClass::Word, c) {
        sig |= WORD_BIT;
    }
    sig
}

impl Dfa {
    /// Builds the DFA skeleton for `prog`, or `None` when the program is
    /// outside the DFA's caps (the `Regex` then always runs the Pike VM).
    pub(crate) fn build(prog: &Program) -> Option<Dfa> {
        if prog.insts.len() > MAX_DFA_PROGRAM {
            return None;
        }
        let mut preds: Vec<CharPred> = Vec::new();
        let mut pred_of = vec![u16::MAX; prog.insts.len()];
        for (pc, inst) in prog.insts.iter().enumerate() {
            if let Inst::Char(pred) = inst {
                let idx = match preds.iter().position(|p| p == pred) {
                    Some(i) => i,
                    None => {
                        preds.push(pred.clone());
                        preds.len() - 1
                    }
                };
                if idx >= MAX_PREDS {
                    return None;
                }
                pred_of[pc] = idx as u16;
            }
        }
        let mut cache = Cache::default();
        let mut ascii = [0u16; 128];
        for b in 0u8..128 {
            let sig = signature(&preds, b as char, prog.case_insensitive);
            ascii[b as usize] = cache.class_of_signature(sig)?;
        }
        Some(Dfa {
            preds,
            pred_of,
            ascii,
            case_insensitive: prog.case_insensitive,
            cache: Mutex::new(cache),
        })
    }

    /// Does any match of `prog` exist in `text[start..]`?
    ///
    /// Mirrors the Pike VM's unanchored search exactly: the start thread is
    /// seeded at every position (pc 0 at lowest priority) and zero-width
    /// assertions see the same context the VM computes, including the
    /// character *before* `start` for `\b`. Only the answer differs — this
    /// scan stops at "a match exists" instead of resolving which one wins.
    pub(crate) fn scan(&self, prog: &Program, text: &str, start: usize) -> Scan {
        let Some(tail) = text.get(start..) else {
            // Out-of-bounds / non-boundary start: the VM treats this as a
            // clean miss, so the prefilter may too.
            return Scan::NoMatch;
        };
        let Ok(mut guard) = self.cache.try_lock() else {
            return Scan::GaveUp;
        };
        let cache = &mut *guard;
        let prev_is_word = start > 0
            && text[..start]
                .chars()
                .next_back()
                .is_some_and(|c| perl_matches(PerlClass::Word, c));

        let mut scan_flushes = 0usize;
        let (mut state, _) = cache.intern(Vec::new(), start == 0, prev_is_word);
        for c in tail.chars() {
            let cls = if (c as u32) < 128 {
                self.ascii[c as usize]
            } else {
                let sig = signature(&self.preds, c, self.case_insensitive);
                match cache.class_of_signature(sig) {
                    Some(cls) => cls,
                    None => return Scan::GaveUp,
                }
            };
            let cached = cache.states[state as usize]
                .trans
                .get(cls as usize)
                .copied()
                .unwrap_or(UNCOMPUTED);
            state = match cached {
                MATCHED => return Scan::MatchExists,
                UNCOMPUTED => {
                    let here = &cache.states[state as usize];
                    let step = self.step(
                        prog,
                        &here.pending,
                        here.at_start,
                        here.prev_is_word,
                        Some(cache.classes[cls as usize]),
                    );
                    match step {
                        Step::Matched => {
                            set_transition(&mut cache.states[state as usize], cls, MATCHED);
                            return Scan::MatchExists;
                        }
                        Step::Next(pending) => {
                            let next_word = cache.classes[cls as usize] & WORD_BIT != 0;
                            let (next, flushed) = cache.intern(pending, false, next_word);
                            if flushed {
                                // The flush dropped the current state (and
                                // its half-built transition row); just keep
                                // scanning from the re-interned successor.
                                scan_flushes += 1;
                                if scan_flushes > MAX_FLUSHES {
                                    return Scan::GaveUp;
                                }
                            } else {
                                set_transition(&mut cache.states[state as usize], cls, next);
                            }
                            next
                        }
                    }
                }
                id => id,
            };
        }
        // End of input: one closure with `at_end` set and nothing to
        // consume (the VM's final loop iteration).
        let eof_state = &cache.states[state as usize];
        match self.step(
            prog,
            &eof_state.pending,
            eof_state.at_start,
            eof_state.prev_is_word,
            None,
        ) {
            Step::Matched => Scan::MatchExists,
            Step::Next(_) => Scan::NoMatch,
        }
    }

    /// One DFA step: epsilon closure of `pending + seed` under the position
    /// context, then consumption of `cls` (`None` = end of input).
    ///
    /// The closure follows exactly the transitions the Pike VM's
    /// `add_thread` follows — `Save` is a no-op here because capture
    /// positions cannot affect *whether* a match exists, only where it is.
    fn step(
        &self,
        prog: &Program,
        pending: &[u16],
        at_start: bool,
        prev_is_word: bool,
        cls: Option<u64>,
    ) -> Step {
        let at_end = cls.is_none();
        let next_is_word = cls.is_some_and(|sig| sig & WORD_BIT != 0);
        let mut seen = vec![false; prog.insts.len()];
        // Pending pcs plus the fresh seed at pc 0 (the VM re-seeds every
        // position until a match is found; existence scans always qualify).
        let mut stack: Vec<usize> = Vec::with_capacity(pending.len() + 1);
        stack.push(0);
        stack.extend(pending.iter().rev().map(|&pc| pc as usize));
        let mut consume: Vec<usize> = Vec::new();
        while let Some(pc) = stack.pop() {
            let Some(slot) = seen.get_mut(pc) else {
                debug_assert!(false, "dfa pc {pc} outside program");
                continue;
            };
            if *slot {
                continue;
            }
            *slot = true;
            match &prog.insts[pc] {
                Inst::Match => return Step::Matched,
                Inst::Char(_) => consume.push(pc),
                Inst::Jmp(t) => stack.push(*t),
                Inst::Split(a, b) => {
                    stack.push(*a);
                    stack.push(*b);
                }
                Inst::Save(_) => stack.push(pc + 1),
                Inst::AssertStart => {
                    if at_start {
                        stack.push(pc + 1);
                    }
                }
                Inst::AssertEnd => {
                    if at_end {
                        stack.push(pc + 1);
                    }
                }
                Inst::WordBoundary { negated } => {
                    if (prev_is_word != next_is_word) != *negated {
                        stack.push(pc + 1);
                    }
                }
            }
        }
        let mut next: Vec<u16> = match cls {
            None => Vec::new(),
            Some(sig) => consume
                .iter()
                .filter(|&&pc| {
                    let pred = self.pred_of[pc];
                    pred != u16::MAX && sig & (1u64 << pred) != 0
                })
                .map(|&pc| (pc + 1) as u16)
                .collect(),
        };
        next.sort_unstable();
        next.dedup();
        Step::Next(next)
    }

    /// Deterministic flush count (test/diagnostic hook).
    #[cfg(test)]
    pub(crate) fn flushes(&self) -> u64 {
        self.cache.lock().map(|c| c.flushes).unwrap_or(0)
    }
}

/// Writes `state.trans[cls] = value`, growing the row as needed.
fn set_transition(state: &mut State, cls: u16, value: u32) {
    let idx = cls as usize;
    if state.trans.len() <= idx {
        state.trans.resize(idx + 1, UNCOMPUTED);
    }
    state.trans[idx] = value;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::compile::compile;
    use crate::parser::parse;
    use crate::vm;

    fn prog(pat: &str) -> Program {
        compile(&parse(pat).unwrap(), false).unwrap()
    }

    fn scan(pat: &str, text: &str) -> Scan {
        let p = prog(pat);
        let d = Dfa::build(&p).expect("dfa");
        d.scan(&p, text, 0)
    }

    #[test]
    fn existence_agrees_with_pike_on_basics() {
        for (pat, text) in [
            ("dox", "please dox him"),
            ("dox", "nothing here"),
            (r"\d{3}-\d{4}", "call 555-0187 now"),
            (r"\d{3}-\d{4}", "call 555018 now"),
            ("^abc", "abcdef"),
            ("^abc", "xabc"),
            ("def$", "abcdef"),
            ("def$", "defabc"),
            (r"\bcat\b", "the cat sat"),
            (r"\bcat\b", "concatenate"),
            (r"\Bcat\B", "concatenate"),
            ("", "anything"),
            ("", ""),
            ("a+", ""),
            ("ö+", "grün öö"),
        ] {
            let p = prog(pat);
            let pike = vm::search(&p, text, 0).is_some();
            let dfa = match scan(pat, text) {
                Scan::MatchExists => true,
                Scan::NoMatch => false,
                Scan::GaveUp => panic!("unexpected bail for {pat:?}"),
            };
            assert_eq!(dfa, pike, "pattern {pat:?} over {text:?}");
        }
    }

    #[test]
    fn scan_honors_start_offset_context() {
        // \b just after the start offset must still see prior context.
        let p = prog(r"\bword\b");
        let d = Dfa::build(&p).expect("dfa");
        assert_eq!(d.scan(&p, "sword", 1), Scan::NoMatch);
        assert_eq!(d.scan(&p, "a word", 2), Scan::MatchExists);
        // ^ is absolute, not relative to the offset.
        let p2 = prog("^ab");
        let d2 = Dfa::build(&p2).expect("dfa");
        assert_eq!(d2.scan(&p2, "xab", 1), Scan::NoMatch);
        // Out-of-bounds and non-char-boundary starts are clean misses,
        // matching the VM.
        assert_eq!(d.scan(&p, "abc", 99), Scan::NoMatch);
        assert_eq!(d2.scan(&p2, "éab", 1), Scan::NoMatch);
    }

    #[test]
    fn cache_overflow_flushes_then_gives_up() {
        // ~2^15 reachable subset states: every input position whose trailing
        // 15-char window differs yields a fresh state, so the 512-state
        // cache flushes repeatedly and the scan must bail to the Pike VM.
        let p = prog("a(a|b){15}c");
        let d = Dfa::build(&p).expect("dfa");
        let mut text = String::new();
        let mut x = 0x1234_5678u64;
        for _ in 0..6000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            text.push(if x >> 63 == 0 { 'a' } else { 'b' });
        }
        assert_eq!(d.scan(&p, &text, 0), Scan::GaveUp);
        assert!(d.flushes() > MAX_FLUSHES as u64, "flushes: {}", d.flushes());
        // The public API must still answer correctly via the Pike VM.
        let re = crate::Regex::new("a(a|b){15}c").unwrap();
        assert_eq!(
            re.find(&text).map(|m| (m.start, m.end)),
            vm::search(&p, &text, 0)
        );
        assert!(!re.is_match(&text));
    }

    #[test]
    fn capture_groups_come_from_the_pike_vm() {
        // The DFA only answers existence; spans and groups must be the
        // VM's. A capture pattern through the public API exercises the
        // MatchExists → Pike fallback.
        let re = crate::Regex::new(r"(\w+)@(\w+)\.com").unwrap();
        let caps = re.captures("mail someone@example.com now").unwrap();
        assert_eq!(caps.get(1).unwrap().as_str(), "someone");
        assert_eq!(caps.get(2).unwrap().as_str(), "example");
        // And the NoMatch side skips the VM entirely yet agrees with it.
        let p = prog(r"(\w+)@(\w+)\.com");
        assert!(re.captures("no at sign here").is_none());
        assert!(vm::search_captures(&p, "no at sign here", 0).is_none());
    }

    #[test]
    fn flushed_cache_still_scans_correctly() {
        // After a mid-scan flush the scan continues from re-interned state;
        // a later match must still be found.
        let p = prog("a(a|b){12}c");
        let d = Dfa::build(&p).expect("dfa");
        let mut text = String::new();
        let mut x = 0xdead_beefu64;
        for _ in 0..1500 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            text.push(if x >> 63 == 0 { 'a' } else { 'b' });
        }
        text.push_str("aabbabababbabc");
        let got = d.scan(&p, &text, 0);
        let pike = vm::search(&p, &text, 0).is_some();
        match got {
            Scan::MatchExists => assert!(pike),
            Scan::NoMatch => assert!(!pike),
            Scan::GaveUp => {} // also fine: caller runs the VM
        }
    }

    #[test]
    fn huge_programs_get_no_dfa() {
        let p = prog("(?:a{100}){50}"); // 5000+ insts exceeds MAX_DFA_PROGRAM
        assert!(p.insts.len() > MAX_DFA_PROGRAM);
        assert!(Dfa::build(&p).is_none());
    }
}
