//! Recursive-descent pattern parser.
//!
//! Grammar (precedence low → high):
//!
//! ```text
//! alternation := concat ('|' concat)*
//! concat      := repeat*
//! repeat      := atom quantifier?
//! quantifier  := '*' | '+' | '?' | '{' n (',' m?)? '}'   with optional '?' (lazy)
//! atom        := literal | '.' | class | escape | anchor | group
//! group       := '(' ('?:')? alternation ')'
//! ```

use crate::ast::{Ast, CharClass, ClassItem, PerlClass, Repeat};
use crate::error::Error;

/// Maximum counted-repetition bound, to keep compiled programs small.
const MAX_REPEAT: u32 = 1000;

struct Parser<'p> {
    pattern: &'p str,
    chars: Vec<(usize, char)>,
    pos: usize,
    next_group: u32,
}

/// Parses a pattern into an AST.
pub fn parse(pattern: &str) -> Result<Ast, Error> {
    let mut p = Parser {
        pattern,
        chars: pattern.char_indices().collect(),
        pos: 0,
        next_group: 1,
    };
    let ast = p.alternation()?;
    if !p.at_end() {
        return Err(Error::new("unexpected ')'", p.offset()));
    }
    Ok(ast)
}

impl<'p> Parser<'p> {
    fn at_end(&self) -> bool {
        self.pos >= self.chars.len()
    }

    fn offset(&self) -> usize {
        self.chars
            .get(self.pos)
            .map(|(i, _)| *i)
            .unwrap_or(self.pattern.len())
    }

    fn peek(&self) -> Option<char> {
        self.chars.get(self.pos).map(|(_, c)| *c)
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek();
        if c.is_some() {
            self.pos += 1;
        }
        c
    }

    fn eat(&mut self, want: char) -> bool {
        if self.peek() == Some(want) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn alternation(&mut self) -> Result<Ast, Error> {
        let mut branches = vec![self.concat()?];
        while self.eat('|') {
            branches.push(self.concat()?);
        }
        Ok(if branches.len() == 1 {
            branches.pop().unwrap_or(Ast::Empty)
        } else {
            Ast::Alternate(branches)
        })
    }

    fn concat(&mut self) -> Result<Ast, Error> {
        let mut items = Vec::new();
        while let Some(c) = self.peek() {
            if c == '|' || c == ')' {
                break;
            }
            items.push(self.repeat()?);
        }
        Ok(match items.len() {
            0 => Ast::Empty,
            1 => items.pop().unwrap_or(Ast::Empty),
            _ => Ast::Concat(items),
        })
    }

    fn repeat(&mut self) -> Result<Ast, Error> {
        let atom = self.atom()?;
        let repeat = match self.peek() {
            Some('*') => {
                self.bump();
                Some(Repeat {
                    min: 0,
                    max: None,
                    greedy: true,
                })
            }
            Some('+') => {
                self.bump();
                Some(Repeat {
                    min: 1,
                    max: None,
                    greedy: true,
                })
            }
            Some('?') => {
                self.bump();
                Some(Repeat {
                    min: 0,
                    max: Some(1),
                    greedy: true,
                })
            }
            Some('{') => self.counted_repeat()?,
            _ => None,
        };
        match repeat {
            None => Ok(atom),
            Some(mut rep) => {
                if matches!(
                    atom,
                    Ast::StartAnchor | Ast::EndAnchor | Ast::WordBoundary { .. } | Ast::Empty
                ) {
                    return Err(Error::new(
                        "quantifier on zero-width assertion",
                        self.offset(),
                    ));
                }
                if self.eat('?') {
                    rep.greedy = false;
                }
                Ok(Ast::Repeat {
                    node: Box::new(atom),
                    repeat: rep,
                })
            }
        }
    }

    /// Parses `{m}`, `{m,}` or `{m,n}`. Returns `None` (and rewinds) when the
    /// brace does not introduce a valid counted repetition, in which case it
    /// is treated as a literal `{`.
    fn counted_repeat(&mut self) -> Result<Option<Repeat>, Error> {
        let save = self.pos;
        self.bump(); // '{'
        let min = self.number();
        let Some(min) = min else {
            self.pos = save;
            return Ok(None);
        };
        let max = if self.eat(',') {
            if self.peek() == Some('}') {
                None
            } else {
                match self.number() {
                    Some(n) => Some(n),
                    None => {
                        self.pos = save;
                        return Ok(None);
                    }
                }
            }
        } else {
            Some(min)
        };
        if !self.eat('}') {
            self.pos = save;
            return Ok(None);
        }
        if let Some(max) = max {
            if max < min {
                return Err(Error::new("repetition max below min", self.offset()));
            }
        }
        if min > MAX_REPEAT || max.is_some_and(|m| m > MAX_REPEAT) {
            return Err(Error::new("repetition bound too large", self.offset()));
        }
        Ok(Some(Repeat {
            min,
            max,
            greedy: true,
        }))
    }

    fn number(&mut self) -> Option<u32> {
        let mut value: u32 = 0;
        let mut any = false;
        while let Some(c) = self.peek() {
            let Some(d) = c.to_digit(10) else { break };
            value = value.checked_mul(10)?.checked_add(d)?;
            any = true;
            self.bump();
        }
        any.then_some(value)
    }

    fn atom(&mut self) -> Result<Ast, Error> {
        let off = self.offset();
        match self.bump() {
            None => Err(Error::new("unexpected end of pattern", off)),
            Some('(') => self.group(),
            Some('[') => Ok(Ast::Class(self.class()?)),
            Some('.') => Ok(Ast::AnyChar),
            Some('^') => Ok(Ast::StartAnchor),
            Some('$') => Ok(Ast::EndAnchor),
            Some('\\') => self.escape(),
            Some(c @ ('*' | '+' | '?')) => {
                Err(Error::new(format!("dangling quantifier '{c}'"), off))
            }
            Some(c) => Ok(Ast::Literal(c)),
        }
    }

    fn group(&mut self) -> Result<Ast, Error> {
        let capturing = if self.peek() == Some('?') {
            let save = self.pos;
            self.bump();
            if self.eat(':') {
                false
            } else {
                return Err(Error::new("unsupported group flag", self.chars[save].0));
            }
        } else {
            true
        };
        let index = if capturing {
            let i = self.next_group;
            self.next_group += 1;
            Some(i)
        } else {
            None
        };
        let inner = self.alternation()?;
        if !self.eat(')') {
            return Err(Error::new("unclosed group", self.offset()));
        }
        Ok(Ast::Group {
            node: Box::new(inner),
            index,
        })
    }

    fn escape(&mut self) -> Result<Ast, Error> {
        let off = self.offset();
        match self.bump() {
            None => Err(Error::new("trailing backslash", off)),
            Some('d') => Ok(Ast::Perl {
                class: PerlClass::Digit,
                negated: false,
            }),
            Some('D') => Ok(Ast::Perl {
                class: PerlClass::Digit,
                negated: true,
            }),
            Some('w') => Ok(Ast::Perl {
                class: PerlClass::Word,
                negated: false,
            }),
            Some('W') => Ok(Ast::Perl {
                class: PerlClass::Word,
                negated: true,
            }),
            Some('s') => Ok(Ast::Perl {
                class: PerlClass::Space,
                negated: false,
            }),
            Some('S') => Ok(Ast::Perl {
                class: PerlClass::Space,
                negated: true,
            }),
            Some('b') => Ok(Ast::WordBoundary { negated: false }),
            Some('B') => Ok(Ast::WordBoundary { negated: true }),
            Some('n') => Ok(Ast::Literal('\n')),
            Some('t') => Ok(Ast::Literal('\t')),
            Some('r') => Ok(Ast::Literal('\r')),
            Some(c) if c.is_ascii_punctuation() || c == ' ' => Ok(Ast::Literal(c)),
            Some(c) => Err(Error::new(format!("unknown escape '\\{c}'"), off)),
        }
    }

    fn class(&mut self) -> Result<CharClass, Error> {
        let negated = self.eat('^');
        let mut items = Vec::new();
        // `]` as the very first item is a literal.
        if self.peek() == Some(']') {
            self.bump();
            items.push(ClassItem::Char(']'));
        }
        loop {
            let off = self.offset();
            match self.bump() {
                None => return Err(Error::new("unclosed character class", off)),
                Some(']') => break,
                Some('\\') => {
                    let eoff = self.offset();
                    match self.bump() {
                        None => return Err(Error::new("trailing backslash in class", eoff)),
                        Some('d') => items.push(ClassItem::Perl(PerlClass::Digit)),
                        Some('w') => items.push(ClassItem::Perl(PerlClass::Word)),
                        Some('s') => items.push(ClassItem::Perl(PerlClass::Space)),
                        Some('n') => items.push(ClassItem::Char('\n')),
                        Some('t') => items.push(ClassItem::Char('\t')),
                        Some('r') => items.push(ClassItem::Char('\r')),
                        Some(c) if c.is_ascii_punctuation() || c == ' ' => {
                            items.push(ClassItem::Char(c))
                        }
                        Some(c) => {
                            return Err(Error::new(format!("unknown class escape '\\{c}'"), eoff))
                        }
                    }
                }
                Some(lo) => {
                    // Possible range `lo-hi` (a trailing '-' is a literal).
                    if self.peek() == Some('-')
                        && self.chars.get(self.pos + 1).map(|(_, c)| *c) != Some(']')
                        && self.chars.get(self.pos + 1).is_some()
                    {
                        self.bump(); // '-'
                        let hoff = self.offset();
                        let hi = match self.bump() {
                            None => return Err(Error::new("unclosed character class", hoff)),
                            Some('\\') => match self.bump() {
                                Some(c) if c.is_ascii_punctuation() => c,
                                _ => return Err(Error::new("invalid range end escape", hoff)),
                            },
                            Some(c) => c,
                        };
                        if hi < lo {
                            return Err(Error::new("invalid class range", hoff));
                        }
                        items.push(ClassItem::Range(lo, hi));
                    } else {
                        items.push(ClassItem::Char(lo));
                    }
                }
            }
        }
        if items.is_empty() {
            return Err(Error::new("empty character class", self.offset()));
        }
        Ok(CharClass { items, negated })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ast::Ast;

    #[test]
    fn parses_literal_concat() {
        let ast = parse("abc").unwrap();
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('b'),
                Ast::Literal('c')
            ])
        );
    }

    #[test]
    fn parses_alternation_precedence() {
        let ast = parse("ab|c").unwrap();
        match ast {
            Ast::Alternate(branches) => {
                assert_eq!(branches.len(), 2);
                assert_eq!(branches[1], Ast::Literal('c'));
            }
            other => panic!("expected alternation, got {other:?}"),
        }
    }

    #[test]
    fn group_indices_are_assigned_in_order() {
        let ast = parse("(a)(?:b)(c)").unwrap();
        assert_eq!(ast.capture_count(), 2);
    }

    #[test]
    fn counted_repeat_forms() {
        assert!(parse("a{3}").is_ok());
        assert!(parse("a{3,}").is_ok());
        assert!(parse("a{3,5}").is_ok());
        assert!(parse("a{5,3}").is_err());
        assert!(parse("a{2000}").is_err());
    }

    #[test]
    fn brace_without_number_is_literal() {
        // `{x}` is not a quantifier; it parses as literals.
        let ast = parse("a{x}").unwrap();
        assert_eq!(
            ast,
            Ast::Concat(vec![
                Ast::Literal('a'),
                Ast::Literal('{'),
                Ast::Literal('x'),
                Ast::Literal('}'),
            ])
        );
    }

    #[test]
    fn class_with_leading_bracket_literal() {
        let ast = parse("[]a]").unwrap();
        match ast {
            Ast::Class(c) => {
                assert!(!c.negated);
                assert_eq!(c.items.len(), 2);
            }
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn class_trailing_dash_is_literal() {
        let ast = parse("[a-]").unwrap();
        match ast {
            Ast::Class(c) => assert_eq!(c.items, vec![ClassItem::Char('a'), ClassItem::Char('-')]),
            other => panic!("expected class, got {other:?}"),
        }
    }

    #[test]
    fn rejects_malformed_patterns() {
        for bad in ["(", ")", "[", "[z-a]", "a**", "*", "\\", "(?P<x>a)"] {
            assert!(parse(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn quantifier_on_anchor_rejected() {
        assert!(parse("^*").is_err());
        assert!(parse(r"\b+").is_err());
    }

    #[test]
    fn lazy_flags_are_parsed() {
        let ast = parse("a+?").unwrap();
        match ast {
            Ast::Repeat { repeat, .. } => assert!(!repeat.greedy),
            other => panic!("expected repeat, got {other:?}"),
        }
    }

    #[test]
    fn empty_pattern_and_empty_branches() {
        assert_eq!(parse("").unwrap(), Ast::Empty);
        let ast = parse("a|").unwrap();
        match ast {
            Ast::Alternate(b) => assert_eq!(b[1], Ast::Empty),
            other => panic!("{other:?}"),
        }
    }
}
