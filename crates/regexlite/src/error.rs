//! Pattern compilation errors.

use std::fmt;

/// An error produced while parsing or compiling a pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
    /// Byte offset into the pattern where the problem was detected.
    pub position: usize,
}

impl Error {
    pub(crate) fn new(message: impl Into<String>, position: usize) -> Self {
        Error {
            message: message.into(),
            position,
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex error at byte {}: {}", self.position, self.message)
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_includes_position() {
        let e = Error::new("unbalanced group", 3);
        assert_eq!(e.to_string(), "regex error at byte 3: unbalanced group");
    }
}
