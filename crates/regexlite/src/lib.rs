//! # incite-regex
//!
//! A self-contained regular-expression engine built for the PII extractors
//! of §5.6. The paper's extraction layer is a set of 12 regular expressions
//! derived from the `CommonRegex` Python library; no regex crate is on this
//! project's approved dependency list, so the engine is implemented from
//! scratch as a substrate.
//!
//! Design: a recursive-descent [`parser`] produces an [`ast`], which the
//! [`compile`] pass lowers to a Thompson NFA bytecode program executed by a
//! Pike [`vm`] — linear time in the input, no backtracking, no pathological
//! cases. Supported syntax covers what the PII patterns need:
//!
//! * literals, `.`, escapes (`\d \w \s \D \W \S \. \\ \- …`)
//! * character classes `[a-z0-9_]`, negation `[^…]`, ranges and escapes
//! * alternation `a|b`, capturing `(…)` and non-capturing `(?:…)` groups
//! * quantifiers `* + ?` and counted `{m} {m,} {m,n}` (greedy, plus lazy
//!   `*? +? ??`)
//! * anchors `^ $` and word boundaries `\b \B`
//! * an engine-level case-insensitivity flag ([`Regex::case_insensitive`])
//!
//! Matching semantics are leftmost-first with greedy quantifier priority —
//! the semantics the original Python patterns assume.

pub mod ast;
pub mod compile;
mod dfa;
pub mod error;
pub mod parser;
pub mod vm;

pub use error::Error;

use compile::Program;
use dfa::{Dfa, Scan};

/// A compiled regular expression.
///
/// ```
/// use incite_regex::Regex;
///
/// let re = Regex::new(r"(\w+)@(\w+)\.com").unwrap();
/// let caps = re.captures("mail someone@example.com today").unwrap();
/// assert_eq!(caps.get(0).unwrap().as_str(), "someone@example.com");
/// assert_eq!(caps.get(1).unwrap().as_str(), "someone");
///
/// let re = Regex::case_insensitive("twitter").unwrap();
/// assert!(re.is_match("check TWITTER now"));
/// ```
#[derive(Debug)]
pub struct Regex {
    program: Program,
    pattern: String,
    /// Lazy existence-prefilter DFA (`None` when the program exceeds the
    /// DFA's caps — matching then always runs the Pike VM alone).
    dfa: Option<Dfa>,
}

impl Clone for Regex {
    fn clone(&self) -> Regex {
        // The DFA's state cache is derived data; a clone starts cold.
        Regex {
            program: self.program.clone(),
            pattern: self.pattern.clone(),
            dfa: Dfa::build(&self.program),
        }
    }
}

/// A single match: byte offsets into the haystack.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Match<'t> {
    haystack: &'t str,
    /// Byte offset of the match start.
    pub start: usize,
    /// Byte offset one past the match end.
    pub end: usize,
}

impl<'t> Match<'t> {
    /// The matched text.
    pub fn as_str(&self) -> &'t str {
        &self.haystack[self.start..self.end]
    }

    /// Match length in bytes.
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// Whether the match is empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

/// Capture groups for one match. Group 0 is the whole match.
#[derive(Debug, Clone)]
pub struct Captures<'t> {
    haystack: &'t str,
    slots: Vec<Option<usize>>,
}

impl<'t> Captures<'t> {
    /// The text of group `i`, if it participated in the match.
    pub fn get(&self, i: usize) -> Option<Match<'t>> {
        let start = self.slots.get(2 * i).copied().flatten()?;
        let end = self.slots.get(2 * i + 1).copied().flatten()?;
        Some(Match {
            haystack: self.haystack,
            start,
            end,
        })
    }

    /// Number of groups (including group 0).
    pub fn len(&self) -> usize {
        self.slots.len() / 2
    }

    /// Always false: group 0 is always present.
    pub fn is_empty(&self) -> bool {
        false
    }
}

impl Regex {
    /// Compiles a pattern with default (case-sensitive) options.
    pub fn new(pattern: &str) -> Result<Regex, Error> {
        Self::with_options(pattern, false)
    }

    /// Compiles a case-insensitive pattern.
    pub fn case_insensitive(pattern: &str) -> Result<Regex, Error> {
        Self::with_options(pattern, true)
    }

    fn with_options(pattern: &str, ci: bool) -> Result<Regex, Error> {
        let ast = parser::parse(pattern)?;
        let program = compile::compile(&ast, ci)?;
        let dfa = Dfa::build(&program);
        Ok(Regex {
            program,
            pattern: pattern.to_string(),
            dfa,
        })
    }

    /// The source pattern.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Number of capture groups, including group 0.
    pub fn group_count(&self) -> usize {
        self.program.n_groups
    }

    /// Whether the pattern matches anywhere in `text`.
    ///
    /// Existence needs no span, so the DFA prefilter can answer both ways
    /// on its own; only a DFA bail (cache overflow / contention) runs the
    /// Pike VM here.
    pub fn is_match(&self, text: &str) -> bool {
        match self.prefilter(text, 0) {
            Scan::NoMatch => false,
            Scan::MatchExists => true,
            Scan::GaveUp => self.find(text).is_some(),
        }
    }

    /// Finds the leftmost match.
    pub fn find<'t>(&self, text: &'t str) -> Option<Match<'t>> {
        self.find_at(text, 0)
    }

    /// Finds the leftmost match starting at or after byte offset `start`.
    ///
    /// The DFA prefilter screens out the no-match case (the common one for
    /// PII extraction); any hit falls through to the unchanged Pike VM,
    /// which reports the exact leftmost-first span.
    pub fn find_at<'t>(&self, text: &'t str, start: usize) -> Option<Match<'t>> {
        if self.prefilter(text, start) == Scan::NoMatch {
            return None;
        }
        let (s, e) = vm::search(&self.program, text, start)?;
        Some(Match {
            haystack: text,
            start: s,
            end: e,
        })
    }

    /// Runs the DFA existence scan, or `GaveUp` when no DFA was built.
    fn prefilter(&self, text: &str, start: usize) -> Scan {
        match &self.dfa {
            Some(dfa) => dfa.scan(&self.program, text, start),
            None => Scan::GaveUp,
        }
    }

    /// Iterates all non-overlapping matches, leftmost-first.
    pub fn find_iter<'r, 't>(&'r self, text: &'t str) -> Matches<'r, 't> {
        Matches {
            regex: self,
            text,
            pos: 0,
        }
    }

    /// Returns capture groups for the leftmost match.
    pub fn captures<'t>(&self, text: &'t str) -> Option<Captures<'t>> {
        self.captures_at(text, 0)
    }

    /// Returns capture groups for the leftmost match at or after `start`.
    ///
    /// Captures always come from the Pike VM (the DFA tracks no slots);
    /// the prefilter only saves the VM run when no match exists at all.
    pub fn captures_at<'t>(&self, text: &'t str, start: usize) -> Option<Captures<'t>> {
        if self.prefilter(text, start) == Scan::NoMatch {
            return None;
        }
        let slots = vm::search_captures(&self.program, text, start)?;
        Some(Captures {
            haystack: text,
            slots,
        })
    }

    /// Iterates captures of all non-overlapping matches.
    pub fn captures_iter<'r, 't>(&'r self, text: &'t str) -> CaptureMatches<'r, 't> {
        CaptureMatches {
            regex: self,
            text,
            pos: 0,
        }
    }

    /// Replaces every non-overlapping match using a callback.
    ///
    /// ```
    /// use incite_regex::Regex;
    ///
    /// let re = Regex::new(r"\d+").unwrap();
    /// let out = re.replace_all("a1 b22 c333", |m| format!("<{}>", m.as_str().len()));
    /// assert_eq!(out, "a<1> b<2> c<3>");
    /// ```
    pub fn replace_all<F>(&self, text: &str, mut replacement: F) -> String
    where
        F: FnMut(&Match<'_>) -> String,
    {
        let mut out = String::with_capacity(text.len());
        let mut cursor = 0;
        for m in self.find_iter(text) {
            // Skip empty matches that would not advance past the cursor.
            if m.end <= cursor && m.start < cursor {
                continue;
            }
            out.push_str(&text[cursor..m.start]);
            out.push_str(&replacement(&m));
            cursor = m.end.max(cursor);
        }
        out.push_str(&text[cursor..]);
        out
    }
}

/// Iterator over non-overlapping matches.
pub struct Matches<'r, 't> {
    regex: &'r Regex,
    text: &'t str,
    pos: usize,
}

impl<'t> Iterator for Matches<'_, 't> {
    type Item = Match<'t>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos > self.text.len() {
            return None;
        }
        let m = self.regex.find_at(self.text, self.pos)?;
        self.pos = if m.end == m.start {
            next_char_boundary(self.text, m.end)
        } else {
            m.end
        };
        Some(m)
    }
}

/// Iterator over captures of non-overlapping matches.
pub struct CaptureMatches<'r, 't> {
    regex: &'r Regex,
    text: &'t str,
    pos: usize,
}

impl<'t> Iterator for CaptureMatches<'_, 't> {
    type Item = Captures<'t>;

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos > self.text.len() {
            return None;
        }
        let caps = self.regex.captures_at(self.text, self.pos)?;
        // Group 0 is always present in a match; a miss would mean the VM
        // returned malformed slots, which ends iteration rather than panics.
        let whole = caps.get(0)?;
        self.pos = if whole.end == whole.start {
            next_char_boundary(self.text, whole.end)
        } else {
            whole.end
        };
        Some(caps)
    }
}

fn next_char_boundary(s: &str, mut i: usize) -> usize {
    i += 1;
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(pat: &str, text: &str) -> Option<(usize, usize)> {
        Regex::new(pat)
            .unwrap()
            .find(text)
            .map(|m| (m.start, m.end))
    }

    #[test]
    fn literal_match() {
        assert_eq!(m("dox", "please dox him"), Some((7, 10)));
        assert_eq!(m("dox", "nothing here"), None);
    }

    #[test]
    fn leftmost_first_semantics() {
        assert_eq!(m("a+", "baaab"), Some((1, 4)));
        // Alternation prefers the first branch even when shorter.
        assert_eq!(m("a|ab", "ab"), Some((0, 1)));
    }

    #[test]
    fn greedy_and_lazy_quantifiers() {
        assert_eq!(m("<.*>", "<a><b>"), Some((0, 6)));
        assert_eq!(m("<.*?>", "<a><b>"), Some((0, 3)));
        assert_eq!(m("a??", "a"), Some((0, 0)));
    }

    #[test]
    fn counted_repetition() {
        assert_eq!(m(r"\d{3}", "ab 1234"), Some((3, 6)));
        assert_eq!(m(r"\d{2,3}", "a 12345"), Some((2, 5)));
        assert_eq!(m(r"\d{5,}", "1234"), None);
        assert_eq!(m(r"\d{5,}", "1234567"), Some((0, 7)));
    }

    #[test]
    fn character_classes() {
        assert_eq!(m("[a-c]+", "zzabcz"), Some((2, 5)));
        assert_eq!(m("[^a-z ]+", "ab 123 cd"), Some((3, 6)));
        assert_eq!(m(r"[\d-]+", "a 55-66"), Some((2, 7)));
    }

    #[test]
    fn anchors() {
        assert_eq!(m("^abc", "abcdef"), Some((0, 3)));
        assert_eq!(m("^abc", "xabc"), None);
        assert_eq!(m("def$", "abcdef"), Some((3, 6)));
        assert_eq!(m("def$", "defabc"), None);
        assert_eq!(m("^$", ""), Some((0, 0)));
    }

    #[test]
    fn word_boundaries() {
        assert_eq!(m(r"\bcat\b", "the cat sat"), Some((4, 7)));
        assert_eq!(m(r"\bcat\b", "concatenate"), None);
        assert_eq!(m(r"\Bcat\B", "concatenate"), Some((3, 6)));
    }

    #[test]
    fn captures_basic() {
        let re = Regex::new(r"(\w+)@(\w+)\.com").unwrap();
        let caps = re.captures("mail me at someone@example.com now").unwrap();
        assert_eq!(caps.get(0).unwrap().as_str(), "someone@example.com");
        assert_eq!(caps.get(1).unwrap().as_str(), "someone");
        assert_eq!(caps.get(2).unwrap().as_str(), "example");
        assert_eq!(caps.len(), 3);
    }

    #[test]
    fn non_capturing_groups() {
        let re = Regex::new(r"(?:ab)+(c)").unwrap();
        let caps = re.captures("ababc").unwrap();
        assert_eq!(caps.get(0).unwrap().as_str(), "ababc");
        assert_eq!(caps.get(1).unwrap().as_str(), "c");
        assert_eq!(caps.len(), 2);
    }

    #[test]
    fn optional_group_absent() {
        let re = Regex::new(r"a(b)?c").unwrap();
        let caps = re.captures("ac").unwrap();
        assert!(caps.get(1).is_none());
    }

    #[test]
    fn find_iter_non_overlapping() {
        let re = Regex::new(r"\d+").unwrap();
        let all: Vec<&str> = re
            .find_iter("12 and 345 and 6")
            .map(|m| m.as_str())
            .collect();
        assert_eq!(all, vec!["12", "345", "6"]);
    }

    #[test]
    fn find_iter_handles_empty_matches() {
        let re = Regex::new(r"a*").unwrap();
        let all: Vec<(usize, usize)> = re
            .find_iter("ba")
            .map(|m| (m.start, m.end))
            .take(5)
            .collect();
        // Must terminate and advance through the string.
        assert!(all.len() <= 3, "{all:?}");
        assert!(all.contains(&(1, 2)));
    }

    #[test]
    fn case_insensitive_matching() {
        let re = Regex::case_insensitive("twitter").unwrap();
        assert!(re.is_match("check his TWITTER account"));
        assert!(re.is_match("Twitter"));
        let re2 = Regex::case_insensitive("[a-z]+").unwrap();
        assert_eq!(re2.find("ABC").unwrap().as_str(), "ABC");
    }

    #[test]
    fn dot_excludes_newline() {
        assert_eq!(m("a.c", "abc"), Some((0, 3)));
        assert_eq!(m("a.c", "a\nc"), None);
    }

    #[test]
    fn escapes() {
        assert_eq!(m(r"\.", "a.b"), Some((1, 2)));
        assert_eq!(m(r"\\", r"a\b"), Some((1, 2)));
        assert_eq!(m(r"\w+", "héllo!"), Some((0, 6)));
        assert_eq!(m(r"\s+", "a \t b"), Some((1, 4)));
        assert_eq!(m(r"\D+", "12ab34"), Some((2, 4)));
    }

    #[test]
    fn unicode_input() {
        assert_eq!(m("ö+", "grün öö"), Some((6, 10)));
        let re = Regex::new(".").unwrap();
        assert_eq!(re.find("é").unwrap().len(), 2); // full char, not a byte
    }

    #[test]
    fn parse_errors_are_reported() {
        assert!(Regex::new("a(b").is_err());
        assert!(Regex::new("a)").is_err());
        assert!(Regex::new("[a-").is_err());
        assert!(Regex::new("*a").is_err());
        assert!(Regex::new(r"a{3,2}").is_err());
        assert!(Regex::new(r"\q").is_err());
    }

    #[test]
    fn phone_number_shape() {
        // The kind of pattern the PII layer builds.
        let re = Regex::new(r"\(?\d{3}\)?[-. ]?\d{3}[-. ]?\d{4}").unwrap();
        assert!(re.is_match("call (212) 555-0187 today"));
        assert!(re.is_match("212.555.0187"));
        assert!(re.is_match("2125550187"));
        assert!(!re.is_match("call 555-018 today"));
    }

    #[test]
    fn no_pathological_blowup() {
        // Classic catastrophic-backtracking input; the Pike VM must stay
        // linear. Checked deterministically via the VM's step counter —
        // doubling the input must no more than double the work (plus a
        // constant) — instead of a wall-clock guard, so the test cannot
        // flake on a loaded machine and never reads the clock.
        let re = Regex::new("(a+)+$").unwrap();
        let steps = |n: usize| {
            let text = "a".repeat(n) + "b";
            let budget = vm::fuel_for(&re.program, text.len());
            let (found, fuel) = vm::search_fueled(&re.program, &text, 0, budget);
            assert_eq!(found, None);
            assert!(!fuel.exhausted(), "linear-time VM ran out of fuel");
            fuel.used()
        };
        let s40 = steps(40);
        let s80 = steps(80);
        assert!(s80 <= 2 * s40 + 64, "superlinear growth: {s40} -> {s80}");
    }

    #[test]
    fn captures_iter_collects_all() {
        let re = Regex::new(r"(\w+):(\d+)").unwrap();
        let pairs: Vec<(String, String)> = re
            .captures_iter("a:1 b:22 c:333")
            .map(|c| {
                (
                    c.get(1).unwrap().as_str().to_string(),
                    c.get(2).unwrap().as_str().to_string(),
                )
            })
            .collect();
        assert_eq!(pairs.len(), 3);
        assert_eq!(pairs[2], ("c".to_string(), "333".to_string()));
    }
}

#[cfg(test)]
mod replace_tests {
    use super::*;

    #[test]
    fn replace_all_basic() {
        let re = Regex::new(r"\d+").unwrap();
        let out = re.replace_all("a 12 b 345", |_| "N".to_string());
        assert_eq!(out, "a N b N");
    }

    #[test]
    fn replace_all_with_no_matches_is_identity() {
        let re = Regex::new("zzz").unwrap();
        assert_eq!(re.replace_all("hello world", |_| "!".into()), "hello world");
    }

    #[test]
    fn replace_all_handles_empty_matches() {
        let re = Regex::new("x*").unwrap();
        // Empty matches at each position must terminate and preserve text.
        let out = re.replace_all("ab", |m| {
            if m.is_empty() {
                String::new()
            } else {
                "X".into()
            }
        });
        assert_eq!(out, "ab");
    }

    #[test]
    fn replace_all_callback_sees_match_text() {
        let re = Regex::new(r"[a-z]+").unwrap();
        let out = re.replace_all("ab 12 cd", |m| m.as_str().to_uppercase());
        assert_eq!(out, "AB 12 CD");
    }

    #[test]
    fn replace_all_unicode_boundaries() {
        let re = Regex::new("é").unwrap();
        let out = re.replace_all("café déjà", |_| "e".into());
        assert_eq!(out, "cafe dejà"); // only 'é' is replaced, 'à' stays
    }
}
