//! The `swap_availability` experiment: availability of `incite-serve`
//! across an atomic model hot-swap.
//!
//! Boots a real server from a checkpointed run directory, drives it with
//! concurrent keep-alive clients, then swaps the active model to a second
//! checkpointed run (different pipeline seed, so observably different
//! weights) *while the load is running*. The gates encode the resilience
//! contract (DESIGN.md §17):
//!
//! * `dropped_ok` — zero requests failed or were dropped across the swap;
//! * `mixed_ok` — every response's bit patterns match the offline scores
//!   of exactly the model generation the response declares (no response
//!   ever mixes weights from two generations);
//! * `swap_ok` — the swap itself completed and advanced the generation;
//! * `p99_ratio_ok` — swap-phase p99 stays within 2× the steady-state
//!   p99 (with a small absolute floor so microsecond-scale jitter on a
//!   loopback cannot flake the gate).
//!
//! CI greps the `BENCH {...}` line for `"dropped_ok":true` and
//! `"mixed_ok":true`.

use crate::context::ReproContext;
use incite_core::{load_latest_classifier_with_hash, run_pipeline_resumable, PipelineConfig, Task};
use incite_serve::client::HttpClient;
use incite_serve::{ServeConfig, Server};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::sync::Barrier;
use std::time::{Duration, Instant};

/// Concurrent load-generator clients.
const CLIENTS: usize = 4;

/// Requests per client in each phase (steady, then swap).
const REQUESTS_PER_PHASE: usize = 60;

/// Distinct request texts cycled by the clients.
const TEXT_POOL: usize = 24;

#[derive(serde::Serialize)]
struct PhaseRow {
    requests: usize,
    dropped: usize,
    p50_us: u64,
    p99_us: u64,
}

/// The machine-readable payload printed as the `BENCH {...}` line.
#[derive(serde::Serialize)]
struct BenchReport {
    experiment: &'static str,
    clients: usize,
    requests_per_phase: usize,
    steady: PhaseRow,
    swap: PhaseRow,
    dropped_requests: usize,
    mixed_generation_responses: usize,
    generation_after_swap: u64,
    p99_ratio: f64,
    dropped_ok: bool,
    mixed_ok: bool,
    swap_ok: bool,
    p99_ratio_ok: bool,
}

fn score_body(text: &str) -> String {
    let escaped: String = text
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    format!("{{\"text\": \"{escaped}\"}}")
}

/// Extracts `bits[0]` and the declared `model_hash` from a `/v1/score`
/// response body.
fn parse_scored(body: &str) -> Option<(u32, String)> {
    let value = serde_json::from_str(body).ok()?;
    let serde::Value::Object(map) = value else {
        return None;
    };
    let serde::Value::Array(items) = map.get("bits")? else {
        return None;
    };
    let bits = match items.first()? {
        serde::Value::UInt(u) => u32::try_from(*u).ok()?,
        serde::Value::Int(i) => u32::try_from(*i).ok()?,
        _ => return None,
    };
    let serde::Value::Str(hash) = map.get("model_hash")? else {
        return None;
    };
    Some((bits, hash.clone()))
}

struct ClientOutcome {
    latencies_us: Vec<u64>,
    dropped: usize,
    mixed: usize,
}

/// One client phase: `n` keep-alive single-document requests, each
/// response checked against the expected bits of the generation it
/// declares. A response naming an unknown hash, or carrying bits that do
/// not match its declared generation's offline score, counts as mixed.
fn drive_phase(
    client: &mut HttpClient,
    texts: &[String],
    expected: &BTreeMap<String, Vec<u32>>,
    n: usize,
    offset: usize,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_us: Vec::with_capacity(n),
        dropped: 0,
        mixed: 0,
    };
    for i in 0..n {
        let idx = (offset + i) % texts.len();
        let body = score_body(&texts[idx]);
        let started = Instant::now();
        match client.post_json("/v1/score", &body) {
            Ok(resp) if resp.status == 200 => {
                outcome
                    .latencies_us
                    .push(started.elapsed().as_micros() as u64);
                match parse_scored(&resp.body) {
                    Some((bits, hash)) => match expected.get(&hash) {
                        Some(model_bits) if model_bits[idx] == bits => {}
                        _ => outcome.mixed += 1,
                    },
                    None => outcome.mixed += 1,
                }
            }
            _ => outcome.dropped += 1,
        }
    }
    outcome
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

fn phase_row(outcomes: &[ClientOutcome]) -> PhaseRow {
    let mut latencies: Vec<u64> = outcomes
        .iter()
        .flat_map(|o| o.latencies_us.iter().copied())
        .collect();
    latencies.sort_unstable();
    PhaseRow {
        requests: latencies.len(),
        dropped: outcomes.iter().map(|o| o.dropped).sum(),
        p50_us: percentile(&latencies, 0.5),
        p99_us: percentile(&latencies, 0.99),
    }
}

pub fn run(ctx: &mut ReproContext) -> String {
    let mut s = String::from(
        "\n================ swap_availability — hot-swap under load ================\n",
    );

    // Two checkpointed runs over the same corpus with different pipeline
    // seeds: different training subsets, hence observably different
    // weights and distinct verified model hashes.
    let root = std::env::temp_dir().join(format!("incite-bench-swap-{}", std::process::id()));
    std::fs::remove_dir_all(&root).ok();
    let dir_a = root.join("run-a");
    let dir_b = root.join("run-b");
    for (dir, seed) in [(&dir_a, 3u64), (&dir_b, 5u64)] {
        if std::fs::create_dir_all(dir).is_err() {
            s.push_str("swap_availability: cannot create bench run dirs; skipping\n");
            return s;
        }
        let config = PipelineConfig::quick(seed);
        if run_pipeline_resumable(&ctx.corpus, Task::Cth, &config, dir).is_err() {
            s.push_str("swap_availability: pipeline run failed; no BENCH line\n");
            return s;
        }
    }

    // The expected bits per model, keyed by verified hash — the oracle
    // the clients hold responses against.
    let texts: Vec<String> = ctx
        .corpus
        .documents
        .iter()
        .skip(600)
        .take(TEXT_POOL)
        .map(|d| d.text.clone())
        .collect();
    let mut expected: BTreeMap<String, Vec<u32>> = BTreeMap::new();
    for dir in [&dir_a, &dir_b] {
        match load_latest_classifier_with_hash(dir) {
            Ok((classifier, hash)) => {
                let bits = texts
                    .iter()
                    .map(|t| classifier.score(t).to_bits())
                    .collect();
                expected.insert(hash, bits);
            }
            Err(e) => {
                let _ = writeln!(s, "swap_availability: cannot load run dir: {e}");
                return s;
            }
        }
    }
    if expected.len() != 2 {
        s.push_str("swap_availability: the two runs produced identical models; no BENCH line\n");
        return s;
    }

    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        workers: 2,
        deadline: Duration::from_secs(30),
        ..ServeConfig::default()
    };
    let handle = match Server::start_from_run_dir(&dir_a, config) {
        Ok(h) => h,
        Err(e) => {
            let _ = writeln!(s, "swap_availability: server failed to start: {e}");
            return s;
        }
    };
    let addr = handle.local_addr().to_string();

    // Phase 1 (steady) establishes the baseline p99; the barrier then
    // releases phase 2 (swap) on every client at once, and the main
    // thread fires the swap into the middle of that load.
    let barrier = Barrier::new(CLIENTS + 1);
    let mut generation_after_swap = 0u64;
    let (steady_outcomes, swap_outcomes): (Vec<ClientOutcome>, Vec<ClientOutcome>) =
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let texts = &texts;
                    let expected = &expected;
                    let barrier = &barrier;
                    let addr = addr.as_str();
                    scope.spawn(move || {
                        let Ok(mut client) = HttpClient::connect(addr) else {
                            let dead = || ClientOutcome {
                                latencies_us: Vec::new(),
                                dropped: REQUESTS_PER_PHASE,
                                mixed: 0,
                            };
                            barrier.wait();
                            return (dead(), dead());
                        };
                        let steady = drive_phase(
                            &mut client,
                            texts,
                            expected,
                            REQUESTS_PER_PHASE,
                            c * REQUESTS_PER_PHASE,
                        );
                        barrier.wait();
                        let swap = drive_phase(
                            &mut client,
                            texts,
                            expected,
                            REQUESTS_PER_PHASE,
                            c * REQUESTS_PER_PHASE + 7,
                        );
                        (steady, swap)
                    })
                })
                .collect();

            // Fire the swap a moment into the second phase so in-flight
            // requests straddle the flip.
            barrier.wait();
            std::thread::sleep(Duration::from_millis(5));
            if let Ok(mut admin) = HttpClient::connect(addr.as_str()) {
                let body = format!("{{\"run_dir\": \"{}\"}}", dir_b.display());
                if let Ok(resp) = admin.post_json("/v1/admin/swap", &body) {
                    if resp.status == 200 {
                        generation_after_swap = 2;
                    }
                }
            }

            let mut steady_all = Vec::with_capacity(CLIENTS);
            let mut swap_all = Vec::with_capacity(CLIENTS);
            for h in handles {
                let (steady, swap) = h.join().unwrap_or_else(|_| {
                    let dead = || ClientOutcome {
                        latencies_us: Vec::new(),
                        dropped: REQUESTS_PER_PHASE,
                        mixed: 0,
                    };
                    (dead(), dead())
                });
                steady_all.push(steady);
                swap_all.push(swap);
            }
            (steady_all, swap_all)
        });
    let report = handle.join();
    std::fs::remove_dir_all(&root).ok();

    let steady = phase_row(&steady_outcomes);
    let swap = phase_row(&swap_outcomes);
    let dropped_requests = steady.dropped + swap.dropped;
    let mixed_generation_responses: usize = steady_outcomes
        .iter()
        .chain(&swap_outcomes)
        .map(|o| o.mixed)
        .sum();

    let p99_ratio = swap.p99_us as f64 / (steady.p99_us.max(1)) as f64;
    let dropped_ok = dropped_requests == 0 && report.panicked_threads == 0;
    let mixed_ok = mixed_generation_responses == 0;
    let swap_ok = generation_after_swap == 2;
    // The absolute floor: on a loopback with ~100 µs scores, a single
    // scheduler hiccup doubles p99 without meaning anything. Any swap-
    // phase p99 under 5 ms is availability by construction.
    let p99_ratio_ok = p99_ratio <= 2.0 || swap.p99_us < 5_000;

    let _ = writeln!(
        s,
        "steady : {:>4} ok / {} dropped | p50 {:>6} µs | p99 {:>6} µs",
        steady.requests, steady.dropped, steady.p50_us, steady.p99_us
    );
    let _ = writeln!(
        s,
        "swap   : {:>4} ok / {} dropped | p50 {:>6} µs | p99 {:>6} µs | p99 ratio {:.2}",
        swap.requests, swap.dropped, swap.p50_us, swap.p99_us, p99_ratio
    );
    let _ = writeln!(
        s,
        "generation after swap: {generation_after_swap} | mixed-generation responses: \
         {mixed_generation_responses} | server drained {} doc(s)",
        report.documents_scored
    );

    let bench = BenchReport {
        experiment: "swap_availability",
        clients: CLIENTS,
        requests_per_phase: REQUESTS_PER_PHASE,
        steady,
        swap,
        dropped_requests,
        mixed_generation_responses,
        generation_after_swap,
        p99_ratio,
        dropped_ok,
        mixed_ok,
        swap_ok,
        p99_ratio_ok,
    };
    match serde_json::to_string(&bench) {
        Ok(line) => {
            let _ = writeln!(s, "BENCH {line}");
        }
        Err(err) => {
            let _ = writeln!(s, "BENCH serialization failed: {err}");
        }
    }
    s
}
