//! Shared reproduction state: corpus + lazily-run pipelines.

use incite_core::{run_pipeline, PipelineConfig, PipelineOutcome, Task};
use incite_corpus::{generate, Corpus, CorpusConfig};

/// Reproduction scale presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ~6 K documents; CI-speed smoke reproduction.
    Tiny,
    /// ~60 K documents, positives at 10 % of the paper's counts.
    Small,
    /// 1/1000 of the paper's raw volume (~560 K documents) with the full
    /// 14,679 planted positives — the EXPERIMENTS.md reference scale.
    Paper,
}

impl Scale {
    /// Parses a CLI name.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "tiny" => Some(Scale::Tiny),
            "small" => Some(Scale::Small),
            "paper" | "default" => Some(Scale::Paper),
            _ => None,
        }
    }

    /// The corpus configuration for this scale.
    pub fn corpus_config(self, seed: u64) -> CorpusConfig {
        match self {
            Scale::Tiny => CorpusConfig::tiny(seed),
            Scale::Small => CorpusConfig::small(seed),
            Scale::Paper => CorpusConfig {
                seed,
                ..Default::default()
            },
        }
    }

    /// The pipeline configuration for this scale.
    pub fn pipeline_config(self, seed: u64) -> PipelineConfig {
        match self {
            Scale::Tiny => PipelineConfig::quick(seed),
            Scale::Small => PipelineConfig {
                seed,
                al_rounds: 2,
                per_decile: 30,
                max_seeds: 800,
                annotation_budget: 2_000,
                threads: 4,
                ..PipelineConfig::quick(seed)
            },
            Scale::Paper => PipelineConfig {
                seed,
                threads: num_threads(),
                ..Default::default()
            },
        }
    }
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Everything an experiment can ask for. Pipelines run lazily (many
/// experiments only need the corpus and its planted annotations).
pub struct ReproContext {
    pub scale: Scale,
    pub corpus: Corpus,
    seed: u64,
    cth: Option<PipelineOutcome>,
    dox: Option<PipelineOutcome>,
}

impl ReproContext {
    /// Generates the corpus for a scale.
    pub fn new(scale: Scale, seed: u64) -> Self {
        let corpus = generate(&scale.corpus_config(seed));
        ReproContext {
            scale,
            corpus,
            seed,
            cth: None,
            dox: None,
        }
    }

    /// The CTH pipeline outcome (runs it on first use).
    pub fn cth(&mut self) -> &PipelineOutcome {
        if self.cth.is_none() {
            let config = self.scale.pipeline_config(self.seed);
            self.cth = Some(run_pipeline(&self.corpus, Task::Cth, &config).expect("CTH pipeline"));
        }
        self.cth.as_ref().unwrap()
    }

    /// The dox pipeline outcome (runs it on first use).
    pub fn dox(&mut self) -> &PipelineOutcome {
        if self.dox.is_none() {
            let config = self.scale.pipeline_config(self.seed);
            self.dox = Some(run_pipeline(&self.corpus, Task::Dox, &config).expect("dox pipeline"));
        }
        self.dox.as_ref().unwrap()
    }

    /// The planted annotated CTH set (the experts' ground truth stand-in).
    pub fn annotated_cth(&self) -> Vec<&incite_corpus::Document> {
        self.corpus
            .documents
            .iter()
            .filter(|d| d.truth.is_cth)
            .collect()
    }

    /// The planted annotated dox set, excluding blogs (handled in §8).
    pub fn annotated_doxes(&self) -> Vec<&incite_corpus::Document> {
        self.corpus
            .documents
            .iter()
            .filter(|d| d.truth.is_dox && d.platform != incite_taxonomy::Platform::Blogs)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("tiny"), Some(Scale::Tiny));
        assert_eq!(Scale::parse("paper"), Some(Scale::Paper));
        assert_eq!(Scale::parse("default"), Some(Scale::Paper));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn context_lazily_runs_pipelines() {
        let mut ctx = ReproContext::new(Scale::Tiny, 3);
        assert!(ctx.cth.is_none());
        assert!(!ctx.annotated_cth().is_empty());
        let _ = ctx.cth();
        assert!(ctx.cth.is_some());
        assert!(ctx.dox.is_none());
    }
}
