//! The `checkpoint_overhead` experiment: plain pipeline vs the
//! checkpointed, crash-recoverable pipeline.
//!
//! [`incite_core::run_pipeline_resumable`] persists a verified snapshot at
//! every step boundary (DESIGN.md §12): the RNG words, annotation ledger,
//! model weights, thresholds and engine stats, each written atomically with
//! an FNV-64 integrity footer and recorded in the run manifest. This
//! experiment times both entry points on the same corpus and
//! configuration, checks the two outcomes are byte-identical (`PartialEq`
//! plus [`incite_core::PipelineOutcome::digest`]), and emits a single
//! machine-readable `BENCH {...}` line that CI greps for
//! `"overhead_ok":true` — the acceptance bar is checkpointing costing
//! under 10 % of wall-clock on quick corpora.

use crate::context::ReproContext;
use incite_core::checkpoint::{Manifest, MANIFEST_FILE};
use incite_core::{clear_run_dir, run_pipeline, run_pipeline_resumable, Task};
use std::fmt::Write as _;
use std::time::Instant;

/// The machine-readable payload printed as the `BENCH {...}` line.
#[derive(serde::Serialize)]
struct BenchReport {
    experiment: &'static str,
    task: &'static str,
    docs: usize,
    steps_checkpointed: usize,
    plain_secs: f64,
    resumable_secs: f64,
    overhead_frac: f64,
    overhead_ok: bool,
    outcome_identical: bool,
}

/// Wall-clock fraction the checkpoint funnel may add (ISSUE acceptance
/// criterion: < 10 % on quick corpora).
const OVERHEAD_BUDGET: f64 = 0.10;

/// Minimum corpus size for the overhead measurement; below this the
/// wall-clock is fixed-latency-bound and the ratio is noise.
const MIN_MEASUREMENT_DOCS: usize = 20_000;

/// Timing repetitions; the median-free minimum over a few runs is stable
/// enough for a pass/fail ratio without a Criterion dependency. Five
/// repetitions because the measured filesystems jitter individual runs
/// by up to ±15 % — the minimum of five keeps the ratio honest.
const REPS: usize = 5;

/// Number of steps the finished run recorded, read from the manifest
/// (core snapshots are embedded there; there is no per-step state file).
fn manifest_steps(run_dir: &std::path::Path) -> Option<usize> {
    let payload =
        incite_core::checkpoint::atomic_io::read_hashed(&run_dir.join(MANIFEST_FILE)).ok()?;
    let text = String::from_utf8(payload).ok()?;
    let manifest: Manifest = serde_json::from_str(&text).ok()?;
    Some(manifest.steps.len())
}

pub fn run(ctx: &mut ReproContext) -> String {
    let mut s = String::from(
        "\n================ checkpoint_overhead — resumable pipeline tax ================\n",
    );
    let task = Task::Dox;
    // The acceptance criterion is phrased against quick corpora: the
    // `quick` pipeline configuration on a corpus large enough that the
    // measurement reflects checkpoint design rather than fixed per-file
    // filesystem latency. A tiny corpus finishes in tens of
    // milliseconds, where the ~10 atomic renames of a run dominate any
    // conceivable checkpoint implementation; floor the corpus at small
    // scale so the ratio is meaningful.
    let config = incite_core::PipelineConfig::quick(1);
    let generated;
    let corpus = if ctx.corpus.len() >= MIN_MEASUREMENT_DOCS {
        &ctx.corpus
    } else {
        generated = incite_corpus::generate(&incite_corpus::CorpusConfig::small(1404));
        &generated
    };
    let run_dir = std::env::temp_dir().join(format!("incite-bench-ckpt-{}", std::process::id()));

    // Plain path: the in-memory pipeline, no persistence at all.
    let mut plain_secs = f64::INFINITY;
    let mut plain_outcome = None;
    for _ in 0..REPS {
        let start = Instant::now();
        let outcome = run_pipeline(corpus, task, &config);
        plain_secs = plain_secs.min(start.elapsed().as_secs_f64());
        plain_outcome = outcome.ok();
    }

    // Resumable path: a fresh run directory each repetition, so every run
    // pays the full cost of writing (never reading) each checkpoint.
    let mut resumable_secs = f64::INFINITY;
    let mut resumable_outcome = None;
    let mut steps = 0;
    for _ in 0..REPS {
        if clear_run_dir(&run_dir).is_err() {
            s.push_str("checkpoint_overhead: cannot clear bench run dir; skipping\n");
            return s;
        }
        let start = Instant::now();
        let outcome = run_pipeline_resumable(corpus, task, &config, &run_dir);
        resumable_secs = resumable_secs.min(start.elapsed().as_secs_f64());
        resumable_outcome = outcome.ok();
        steps = manifest_steps(&run_dir).unwrap_or(0);
    }
    clear_run_dir(&run_dir).ok();
    std::fs::remove_dir(&run_dir).ok();

    let (Some(plain), Some(resumable)) = (plain_outcome, resumable_outcome) else {
        s.push_str("checkpoint_overhead: a pipeline run failed; no BENCH line\n");
        return s;
    };

    // The determinism contract (DESIGN.md §12): checkpointing must not
    // perturb the outcome by a single byte.
    let outcome_identical = plain == resumable && plain.digest() == resumable.digest();
    let overhead_frac = (resumable_secs - plain_secs).max(0.0) / plain_secs.max(1e-9);

    let _ = writeln!(
        s,
        "documents: {} | task: {} | checkpointed steps: {steps} | reps: {REPS} (min taken)",
        corpus.len(),
        task.slug(),
    );
    let _ = writeln!(s, "plain pipeline     : {plain_secs:>8.3}s");
    let _ = writeln!(s, "resumable pipeline : {resumable_secs:>8.3}s");
    let _ = writeln!(
        s,
        "checkpoint overhead: {:.1}% (budget {:.0}%) | outcome identical: {outcome_identical} | digest {:016x}",
        100.0 * overhead_frac,
        100.0 * OVERHEAD_BUDGET,
        resumable.digest(),
    );

    let bench = BenchReport {
        experiment: "checkpoint_overhead",
        task: task.slug(),
        docs: corpus.len(),
        steps_checkpointed: steps,
        plain_secs,
        resumable_secs,
        overhead_frac,
        overhead_ok: overhead_frac < OVERHEAD_BUDGET,
        outcome_identical,
    };
    match serde_json::to_string(&bench) {
        Ok(line) => {
            let _ = writeln!(s, "BENCH {line}");
        }
        Err(err) => {
            let _ = writeln!(s, "BENCH serialization failed: {err}");
        }
    }
    s
}
