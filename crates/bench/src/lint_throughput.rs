//! The `lint_throughput` experiment: the incite-lint engine over its own
//! workspace.
//!
//! Times a cold full scan and a warm (cache-hit) rescan of the real
//! repository at 4 threads, and re-checks the engine's two determinism
//! gates in-process: the report must be byte-identical between 1 and 4
//! threads, and a warm run over an unchanged tree must re-analyze zero
//! files. Emits a `BENCH {...}` line for CI's ratchet.

use crate::context::ReproContext;
use incite_lint::baseline::Baseline;
use incite_lint::engine::{self, Options};
use std::fmt::Write as _;
use std::path::Path;
use std::time::Instant;

/// The machine-readable payload printed as the `BENCH {...}` line.
#[derive(serde::Serialize)]
struct BenchReport {
    experiment: &'static str,
    files: usize,
    findings: usize,
    cold_files_per_sec: f64,
    warm_files_per_sec: f64,
    byte_identical: bool,
    warm_skip_ok: bool,
}

pub fn run(_ctx: &mut ReproContext) -> String {
    let mut s = String::from(
        "\n================ lint_throughput — incite-lint engine self-scan ================\n",
    );

    // The bench crate sits at crates/bench; the workspace root is two up.
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf();
    let baseline = Baseline::default();
    let cache_dir = std::env::temp_dir().join(format!("incite-lint-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&cache_dir).ok();

    let cached = |threads: usize| Options {
        threads,
        cache_dir: Some(cache_dir.clone()),
    };

    // Cold: every file lexes and pattern-scans. Warm: all cache hits,
    // only the global passes run.
    let start = Instant::now();
    let cold = match engine::run_with(&root, &baseline, &cached(4)) {
        Ok(report) => report,
        Err(err) => {
            let _ = writeln!(s, "cold scan failed: {err}");
            return s;
        }
    };
    let cold_secs = start.elapsed().as_secs_f64();
    let start = Instant::now();
    let warm = match engine::run_with(&root, &baseline, &cached(4)) {
        Ok(report) => report,
        Err(err) => {
            let _ = writeln!(s, "warm scan failed: {err}");
            return s;
        }
    };
    let warm_secs = start.elapsed().as_secs_f64();

    let cold_files_per_sec = cold.files_scanned as f64 / cold_secs.max(1e-9);
    let warm_files_per_sec = warm.files_scanned as f64 / warm_secs.max(1e-9);
    let warm_skip_ok = warm.files_reanalyzed == 0;
    let _ = writeln!(
        s,
        "cold: {} file(s) in {:.1} ms ({:>8.1} files/sec), {} finding(s), fuel {}",
        cold.files_scanned,
        1e3 * cold_secs,
        cold_files_per_sec,
        cold.findings.len(),
        cold.fuel,
    );
    let _ = writeln!(
        s,
        "warm: {} re-analyzed in {:.1} ms ({:>8.1} files/sec)",
        warm.files_reanalyzed,
        1e3 * warm_secs,
        warm_files_per_sec,
    );

    // Thread-invariance gate: the sequential uncached report must match
    // the 4-thread cold report byte for byte.
    let sequential = match engine::run_with(
        &root,
        &baseline,
        &Options {
            threads: 1,
            cache_dir: None,
        },
    ) {
        Ok(report) => report,
        Err(err) => {
            let _ = writeln!(s, "sequential scan failed: {err}");
            return s;
        }
    };
    let byte_identical = engine::report_json(&sequential) == engine::report_json(&cold)
        && engine::report_json(&warm) == engine::report_json(&cold);
    let _ = writeln!(
        s,
        "report byte-identical across 1/4 threads and cold/warm cache: {byte_identical}"
    );
    let _ = writeln!(s, "warm run skipped every unchanged file: {warm_skip_ok}");
    std::fs::remove_dir_all(&cache_dir).ok();

    let bench = BenchReport {
        experiment: "lint_throughput",
        files: cold.files_scanned,
        findings: cold.findings.len(),
        cold_files_per_sec,
        warm_files_per_sec,
        byte_identical,
        warm_skip_ok,
    };
    match serde_json::to_string(&bench) {
        Ok(line) => {
            let _ = writeln!(s, "BENCH {line}");
        }
        Err(err) => {
            let _ = writeln!(s, "BENCH serialization failed: {err}");
        }
    }
    s
}
