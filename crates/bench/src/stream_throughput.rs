//! The `stream_throughput` experiment: the `incite watch` loop end to end.
//!
//! Simulates the amplification event stream over the repro corpus,
//! quick-trains a CTH classifier, and times [`incite_stream::run_watch`]
//! driving the two-axis threat ranker over the whole stream. Alongside
//! the throughput numbers it re-checks the subsystem's two determinism
//! gates in-process — rankings byte-identical across thread counts, and
//! a checkpoint/resume split byte-identical to the uninterrupted run —
//! and emits a `BENCH {...}` line for CI.

use crate::context::ReproContext;
use incite_ml::{FeaturizerConfig, TextClassifier, TrainConfig};
use incite_stream::{run_watch, simulate, RankerConfig, SimConfig, WatchConfig};
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Instant;

/// The machine-readable payload printed as the `BENCH {...}` line.
#[derive(serde::Serialize)]
struct BenchReport {
    experiment: &'static str,
    events: usize,
    epochs: u64,
    events_per_sec: f64,
    epoch_ms: f64,
    byte_identical: bool,
    resume_identical: bool,
}

fn config(threads: usize) -> WatchConfig {
    WatchConfig {
        ranker: RankerConfig {
            threads,
            epoch_len: 2048,
            ..RankerConfig::default()
        },
        ..WatchConfig::default()
    }
}

pub fn run(ctx: &mut ReproContext) -> String {
    let mut s = String::from(
        "\n================ stream_throughput — incite watch event loop ================\n",
    );

    let stream = simulate(&ctx.corpus, &SimConfig::default());
    let doc_texts: BTreeMap<u64, &str> = ctx
        .corpus
        .documents
        .iter()
        .map(|d| (d.id.0, d.text.as_str()))
        .collect();
    let labeled: Vec<(&str, bool)> = ctx
        .corpus
        .documents
        .iter()
        .take(800)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    let classifier = TextClassifier::train(
        labeled.iter().copied(),
        FeaturizerConfig::default(),
        TrainConfig {
            epochs: 3,
            ..TrainConfig::default()
        },
    );
    let _ = writeln!(
        s,
        "stream: {} event(s) over {} actor(s), digest {}",
        stream.events.len(),
        stream.actors.len(),
        stream.digest()
    );

    // Timed runs at 1 and 4 threads; the 4-thread run is the headline
    // number and the pair doubles as the thread-invariance gate.
    let mut rankings: Vec<String> = Vec::new();
    let mut timed_events = 0usize;
    let mut timed_epochs = 0u64;
    let mut timed_secs = 0.0f64;
    for threads in [1usize, 4] {
        let start = Instant::now();
        let outcome = match run_watch(&stream, &doc_texts, &classifier, &config(threads)) {
            Ok(outcome) => outcome,
            Err(err) => {
                let _ = writeln!(s, "watch run at {threads} thread(s) failed: {err}");
                return s;
            }
        };
        let elapsed = start.elapsed().as_secs_f64();
        let _ = writeln!(
            s,
            "{threads} thread(s): {} event(s) in {} epoch(s), {:>9.1} events/sec, {:.1} ms/epoch",
            outcome.events,
            outcome.epochs,
            outcome.events as f64 / elapsed.max(1e-9),
            1e3 * elapsed / outcome.epochs.max(1) as f64,
        );
        if threads == 4 {
            timed_events = outcome.events;
            timed_epochs = outcome.epochs;
            timed_secs = elapsed;
        }
        rankings.push(outcome.rankings);
    }
    let byte_identical = rankings[0] == rankings[1];
    let _ = writeln!(
        s,
        "rankings byte-identical across threads: {byte_identical}"
    );

    // Checkpoint/resume split: two epochs saved, fresh invocation resumes
    // and must land on the same bytes as the uninterrupted run.
    let dir = std::env::temp_dir().join(format!("incite-stream-bench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let mut first = config(4);
    first.state_dir = Some(dir.clone());
    first.max_epochs = Some(2);
    let mut second = config(4);
    second.state_dir = Some(dir.clone());
    let resume_identical = match run_watch(&stream, &doc_texts, &classifier, &first)
        .and_then(|_| run_watch(&stream, &doc_texts, &classifier, &second))
    {
        Ok(resumed) => resumed.resumed_at.is_some() && resumed.rankings == rankings[1],
        Err(err) => {
            let _ = writeln!(s, "split run failed: {err}");
            false
        }
    };
    std::fs::remove_dir_all(&dir).ok();
    let _ = writeln!(s, "checkpoint/resume byte-identical: {resume_identical}");

    let bench = BenchReport {
        experiment: "stream_throughput",
        events: timed_events,
        epochs: timed_epochs,
        events_per_sec: timed_events as f64 / timed_secs.max(1e-9),
        epoch_ms: 1e3 * timed_secs / timed_epochs.max(1) as f64,
        byte_identical,
        resume_identical,
    };
    match serde_json::to_string(&bench) {
        Ok(line) => {
            let _ = writeln!(s, "BENCH {line}");
        }
        Err(err) => {
            let _ = writeln!(s, "BENCH serialization failed: {err}");
        }
    }
    s
}
