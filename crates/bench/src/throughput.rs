//! The `score_throughput` experiment: featurize-once engine vs the naive
//! per-pass scoring loop.
//!
//! The pipeline scores the full applicable corpus `al_rounds + 1` times
//! (each active-learning round plus final prediction). The naive loop
//! re-tokenizes every document on every pass; the
//! [`incite_core::ScoringEngine`] tokenizes once into a CSR arena and
//! serves each pass as a parallel spmv sweep. This experiment times both
//! on the same documents and model, checks the scores are byte-identical,
//! and emits a single machine-readable `BENCH {...}` line that CI greps
//! for `"speedup_ok":true`.

use crate::context::ReproContext;
use incite_core::{ScoringEngine, Task};
use incite_corpus::Document;
use incite_ml::{FeaturizerConfig, TextClassifier, TrainConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// The machine-readable payload printed as the `BENCH {...}` line.
#[derive(serde::Serialize)]
struct BenchReport {
    experiment: &'static str,
    docs: usize,
    passes: usize,
    threads: usize,
    nnz: usize,
    featurize_passes: usize,
    score_passes: usize,
    serial_docs_per_sec: f64,
    cached_parallel_docs_per_sec: f64,
    speedup: f64,
    speedup_ok: bool,
    byte_identical: bool,
}

/// Scoring passes the pipeline performs at the reference configuration:
/// two active-learning rounds plus the final full prediction.
const PASSES: usize = 3;

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

pub fn run(ctx: &mut ReproContext) -> String {
    let mut s = String::from(
        "\n================ score_throughput — featurize-once engine ================\n",
    );
    let task = Task::Dox;
    let docs: Vec<&Document> = ctx
        .corpus
        .documents
        .iter()
        .filter(|d| task.applies_to(d.platform))
        .collect();
    let threads = num_threads();

    // Train a classifier the way the pipeline does: subword features on a
    // truth-labeled seed slice.
    let labeled: Vec<(&str, bool)> = docs
        .iter()
        .take(1_000)
        .map(|d| (d.text.as_str(), task.truth(d)))
        .collect();
    let classifier =
        TextClassifier::train(labeled, FeaturizerConfig::default(), TrainConfig::default());

    // Naive path: every pass re-tokenizes every document (what the
    // pipeline did before the engine existed).
    let serial_start = Instant::now();
    let mut serial_scores: Vec<f32> = Vec::new();
    for pass in 0..PASSES {
        let scores: Vec<f32> = docs.iter().map(|d| classifier.score(&d.text)).collect();
        if pass == 0 {
            serial_scores = scores;
        }
    }
    let serial_elapsed = serial_start.elapsed();

    // Engine path: featurize once in parallel, then serve every pass as an
    // spmv sweep.
    let engine_start = Instant::now();
    let mut engine = ScoringEngine::build(classifier.featurizer(), &docs, threads)
        .expect("engine featurization");
    let mut engine_scores: Vec<(incite_corpus::DocId, f32)> = Vec::new();
    for pass in 0..PASSES {
        let scores = engine
            .score_all(classifier.model(), threads)
            .expect("engine scoring");
        if pass == 0 {
            engine_scores = scores;
        }
    }
    let engine_elapsed = engine_start.elapsed();

    // The determinism contract: the engine's scores are bit-identical to
    // the per-document path.
    let byte_identical = serial_scores.len() == engine_scores.len()
        && serial_scores
            .iter()
            .zip(&engine_scores)
            .all(|(a, (_, b))| a.to_bits() == b.to_bits());

    let work = (docs.len() * PASSES) as f64;
    let serial_rate = work / serial_elapsed.as_secs_f64().max(1e-9);
    let engine_rate = work / engine_elapsed.as_secs_f64().max(1e-9);
    let speedup = serial_elapsed.as_secs_f64() / engine_elapsed.as_secs_f64().max(1e-9);
    let stats = engine.stats();

    let _ = writeln!(
        s,
        "documents: {} | passes: {} | threads: {} | arena nnz: {}",
        docs.len(),
        PASSES,
        threads,
        stats.nnz
    );
    let _ = writeln!(
        s,
        "naive per-pass loop : {:>10.1} docs/sec ({:.3}s total)",
        serial_rate,
        serial_elapsed.as_secs_f64()
    );
    let _ = writeln!(
        s,
        "featurize-once engine: {:>10.1} docs/sec ({:.3}s total, {} featurize pass, {} score passes)",
        engine_rate,
        engine_elapsed.as_secs_f64(),
        stats.featurize_passes,
        stats.score_passes
    );
    let _ = writeln!(
        s,
        "speedup: {speedup:.2}x | byte-identical scores: {byte_identical}"
    );

    let bench = BenchReport {
        experiment: "score_throughput",
        docs: docs.len(),
        passes: PASSES,
        threads,
        nnz: stats.nnz,
        featurize_passes: stats.featurize_passes,
        score_passes: stats.score_passes,
        serial_docs_per_sec: serial_rate,
        cached_parallel_docs_per_sec: engine_rate,
        speedup,
        speedup_ok: speedup >= 1.0,
        byte_identical,
    };
    match serde_json::to_string(&bench) {
        Ok(line) => {
            let _ = writeln!(s, "BENCH {line}");
        }
        Err(err) => {
            let _ = writeln!(s, "BENCH serialization failed: {err}");
        }
    }
    s
}
