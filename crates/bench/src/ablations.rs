//! Quality ablations for the design choices DESIGN.md §5 calls out.
//!
//! The Criterion benches measure *throughput* of these choices; this module
//! measures *classification quality* (held-out AUC / F1), which is what the
//! paper actually optimized. Exposed through `repro ablations`.

use crate::context::ReproContext;
use incite_analysis::render;
use incite_core::Task;
use incite_ml::{FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
use incite_textkit::SpanStrategy;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use std::fmt::Write as _;

/// Labeled examples: `(text, label)` pairs.
type LabeledSplit = Vec<(String, bool)>;

/// A labeled train/dev split drawn from the corpus ground truth, balanced
/// enough for quality comparisons.
fn splits(ctx: &ReproContext, task: Task, n: usize, seed: u64) -> (LabeledSplit, LabeledSplit) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut pos: Vec<&incite_corpus::Document> = ctx
        .corpus
        .documents
        .iter()
        .filter(|d| task.applies_to(d.platform) && task.truth(d))
        .collect();
    let mut neg: Vec<&incite_corpus::Document> = ctx
        .corpus
        .documents
        .iter()
        .filter(|d| task.applies_to(d.platform) && !task.truth(d))
        .collect();
    pos.shuffle(&mut rng);
    neg.shuffle(&mut rng);
    let take = |v: &[&incite_corpus::Document], from: usize, to: usize, label_from_truth: bool| {
        v.iter()
            .skip(from)
            .take(to - from)
            .map(|d| {
                (
                    d.text.clone(),
                    if label_from_truth {
                        task.truth(d)
                    } else {
                        false
                    },
                )
            })
            .collect::<Vec<_>>()
    };
    // Train in the pipeline's actual regime: a small seed set (the paper
    // bootstraps from ~1.4 K CTH seeds) against a dev set at the natural
    // base rate, where hard negatives matter.
    let n_pos = (n / 4).min(pos.len() / 2);
    let n_neg = (n - n / 4).min(neg.len() / 8);
    let mut train = take(&pos, 0, n_pos, true);
    train.extend(take(&neg, 0, n_neg, true));
    let mut dev = take(&pos, n_pos, 2 * n_pos, true);
    dev.extend(take(&neg, n_neg, n_neg + 20 * n_pos, true));
    (train, dev)
}

fn auc_of(train: &[(String, bool)], dev: &[(String, bool)], fc: FeaturizerConfig) -> (f64, f64) {
    let clf = TextClassifier::train(
        train.iter().map(|(t, l)| (t.as_str(), *l)),
        fc,
        TrainConfig {
            epochs: 8,
            ..Default::default()
        },
    );
    let report = clf.evaluate(dev.iter().map(|(t, l)| (t.as_str(), *l)), 0.5);
    (report.auc.unwrap_or(0.5), report.metrics.positive.f1)
}

/// Runs every quality ablation and renders a report.
pub fn run(ctx: &mut ReproContext) -> String {
    let mut s = String::from("\n================ Ablations (DESIGN.md §5) ================\n");
    let (cth_train, cth_dev) = splits(ctx, Task::Cth, 400, 1);
    let (dox_train, dox_dev) = splits(ctx, Task::Dox, 400, 2);

    // 1. Span-sampling strategy (quality on the long-document dox task).
    let mut rows = vec![vec![
        "Span strategy".into(),
        "Dox AUC".into(),
        "Dox F1".into(),
    ]];
    for strategy in SpanStrategy::ablation_set() {
        let fc = FeaturizerConfig {
            strategy,
            max_len: 128,
            max_spans: 2,
            mode: FeatureMode::Word,
            hash_bits: 16,
            ..Default::default()
        };
        let (auc, f1) = auc_of(&dox_train, &dox_dev, fc);
        rows.push(vec![
            strategy.slug().into(),
            format!("{auc:.3}"),
            format!("{f1:.3}"),
        ]);
    }
    s.push_str("\n1. Long-document span strategy (§5.2; paper picked random non-overlap):\n");
    s.push_str(&render::table(&rows));

    // 2. Text length hyperparameter (Table 3: dox 512 vs CTH 128).
    let mut rows = vec![vec![
        "Max length".into(),
        "CTH AUC".into(),
        "Dox AUC".into(),
    ]];
    for max_len in [64usize, 128, 256, 512] {
        // One span per document, as in a single fixed-length input window.
        let fc = |_: Task| FeaturizerConfig {
            max_len,
            max_spans: 1,
            mode: FeatureMode::Word,
            hash_bits: 16,
            ..Default::default()
        };
        let (cth_auc, _) = auc_of(&cth_train, &cth_dev, fc(Task::Cth));
        let (dox_auc, _) = auc_of(&dox_train, &dox_dev, fc(Task::Dox));
        rows.push(vec![
            max_len.to_string(),
            format!("{cth_auc:.3}"),
            format!("{dox_auc:.3}"),
        ]);
    }
    s.push_str("\n2. Max text length (Table 3: CTH best at 128, dox at 512):\n");
    s.push_str(&render::table(&rows));

    // 3. Feature space.
    let mut rows = vec![vec!["Features".into(), "CTH AUC".into(), "Dox AUC".into()]];
    for mode in [FeatureMode::Word, FeatureMode::Subword, FeatureMode::Char] {
        let fc = FeaturizerConfig {
            mode,
            hash_bits: 16,
            vocab_size: 2048,
            ..Default::default()
        };
        let (cth_auc, _) = auc_of(&cth_train, &cth_dev, fc.clone());
        let (dox_auc, _) = auc_of(&dox_train, &dox_dev, fc);
        rows.push(vec![
            format!("{mode:?}"),
            format!("{cth_auc:.3}"),
            format!("{dox_auc:.3}"),
        ]);
    }
    s.push_str("\n3. Feature space (word vs WordPiece-subword vs char n-grams):\n");
    s.push_str(&render::table(&rows));

    // 4. Combined vs per-platform training (§5.4: combined wins).
    let mut combined: Vec<(String, bool)> = cth_train.clone();
    let per_platform: Vec<(String, bool)> = ctx
        .corpus
        .by_platform(incite_taxonomy::Platform::Gab)
        .take(combined.len())
        .map(|d| (d.text.clone(), d.truth.is_cth))
        .collect();
    combined.truncate(per_platform.len());
    let fc = FeaturizerConfig {
        max_len: 128,
        mode: FeatureMode::Word,
        hash_bits: 16,
        ..Default::default()
    };
    let (combined_auc, _) = auc_of(&combined, &cth_dev, fc.clone());
    let (single_auc, _) = auc_of(&per_platform, &cth_dev, fc);
    let _ = writeln!(
        s,
        "\n4. Training-data scope (CTH dev AUC): combined {:.3} vs Gab-only {:.3} (paper: combined wins)",
        combined_auc, single_auc
    );
    s
}
