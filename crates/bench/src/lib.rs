//! # incite-bench
//!
//! The reproduction harness: one regeneration entry point per table and
//! figure in the paper (see DESIGN.md §4 for the experiment index), plus
//! shared state for the Criterion benches.
//!
//! ```text
//! cargo run --release -p incite-bench --bin repro -- all --scale small
//! cargo run --release -p incite-bench --bin repro -- table5 figure2
//! ```

pub mod ablations;
pub mod checkpoint_overhead;
pub mod context;
pub mod experiments;
pub mod featurize_throughput;
pub mod lint_throughput;
pub mod serve_latency;
pub mod stream_throughput;
pub mod swap_availability;
pub mod throughput;

pub use context::{ReproContext, Scale};
pub use experiments::{run_experiment, EXPERIMENTS};
