//! One regeneration function per paper table/figure (DESIGN.md §4).
//!
//! Every experiment prints a *measured* block computed from the synthetic
//! corpus / pipeline run, next to the *paper* reference values from
//! [`incite_taxonomy::calibration`], so EXPERIMENTS.md can be regenerated
//! mechanically.

use crate::context::ReproContext;
use incite_analysis::{
    attack_types, blogs, gender, harm_risk, overlap, pii_tables, render, repeats, threads,
};
use incite_core::query::figure4_query;
use incite_corpus::Document;
use incite_pii::eval::{evaluate_extractors, evaluate_gender};
use incite_pii::PiiExtractor;
use incite_taxonomy::harm::RiskSet;
use incite_taxonomy::{
    calibration, AttackType, DataSet, Gender, HarmRisk, PiiKind, Platform, Subcategory,
};
use std::fmt::Write as _;

/// `(id, description)` for every experiment, in paper order.
pub const EXPERIMENTS: &[(&str, &str)] = &[
    ("table1", "Raw data set sizes and date ranges"),
    ("figure1", "Pipeline stage counts (both pipelines)"),
    ("figure4", "Bootstrap keyword query yield"),
    ("table2", "Training-set sizes per task and platform"),
    ("table3", "Classifier performance (held-out)"),
    ("table4", "Threshold selection per platform"),
    ("table5", "Parent attack types per data set"),
    ("table6", "PII in doxes per data set"),
    ("table7", "Harm-risk taxonomy mapping"),
    ("figure2", "Harm-risk combination overlap"),
    ("table8", "Blog analysis overview"),
    ("table9", "Blog attack registers"),
    ("table10", "Attack taxonomy by inferred gender"),
    ("table11", "Full attack taxonomy per data set"),
    ("figure5", "Thread-size CDF: CTH vs baseline"),
    ("figure6", "Thread sizes per attack type"),
    ("sec5_3", "Crowd annotation agreement"),
    ("sec5_6", "PII extractor and gender-inference accuracy"),
    ("sec6_2", "Attack-type statistics and co-occurrence"),
    ("sec6_3", "CTH thread analysis and CTH/dox overlap"),
    ("sec7_1", "PII co-occurrence"),
    ("sec7_3", "Repeated doxes"),
    ("sec7_4", "Dox thread analysis"),
    (
        "ablations",
        "Quality ablations for DESIGN.md \u{a7}5 design choices",
    ),
    (
        "score_throughput",
        "Featurize-once engine vs naive per-pass scoring (BENCH line)",
    ),
    (
        "checkpoint_overhead",
        "Plain vs checkpointed resumable pipeline (BENCH line)",
    ),
    (
        "serve_latency",
        "Online inference service loopback load test (BENCH line)",
    ),
    (
        "featurize_throughput",
        "Rolling n-gram hashing vs legacy string path (BENCH line)",
    ),
    (
        "swap_availability",
        "Hot model swap under serve load (BENCH line)",
    ),
    (
        "stream_throughput",
        "incite watch event loop: simulate + rank (BENCH line)",
    ),
    (
        "lint_throughput",
        "incite-lint engine self-scan: cold vs warm cache (BENCH line)",
    ),
    (
        "extension_attack_types",
        "\u{a7}9.2 extension: per-attack-type classifiers",
    ),
    (
        "extension_longitudinal",
        "\u{a7}9.2 extension: longitudinal growth analysis",
    ),
];

/// Runs one experiment by id. Returns `None` for unknown ids.
pub fn run_experiment(id: &str, ctx: &mut ReproContext) -> Option<String> {
    let out = match id {
        "table1" => table1(ctx),
        "figure1" => figure1(ctx),
        "figure4" => figure4(ctx),
        "table2" => table2(ctx),
        "table3" => table3(ctx),
        "table4" => table4(ctx),
        "table5" => table5(ctx),
        "table6" => table6(ctx),
        "table7" => table7(),
        "figure2" => figure2(ctx),
        "table8" => table8(ctx),
        "table9" => table9(ctx),
        "table10" => table10(ctx),
        "table11" => table11(ctx),
        "figure5" => figure5(ctx),
        "figure6" => figure6(ctx),
        "sec5_3" => sec5_3(ctx),
        "sec5_6" => sec5_6(ctx),
        "sec6_2" => sec6_2(ctx),
        "sec6_3" => sec6_3(ctx),
        "sec7_1" => sec7_1(ctx),
        "sec7_3" => sec7_3(ctx),
        "sec7_4" => sec7_4(ctx),
        "ablations" => crate::ablations::run(ctx),
        "score_throughput" => crate::throughput::run(ctx),
        "checkpoint_overhead" => crate::checkpoint_overhead::run(ctx),
        "serve_latency" => crate::serve_latency::run(ctx),
        "featurize_throughput" => crate::featurize_throughput::run(ctx),
        "swap_availability" => crate::swap_availability::run(ctx),
        "stream_throughput" => crate::stream_throughput::run(ctx),
        "lint_throughput" => crate::lint_throughput::run(ctx),
        "extension_attack_types" => extension_attack_types(ctx),
        "extension_longitudinal" => extension_longitudinal(ctx),
        _ => return None,
    };
    Some(out)
}

fn header(title: &str) -> String {
    format!("\n================ {title} ================\n")
}

// --------------------------------------------------------------------------
// Table 1
// --------------------------------------------------------------------------

fn table1(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 1 — raw data sets");
    let mut rows = vec![vec![
        "Data set".into(),
        "Posts (measured)".into(),
        "Posts (paper)".into(),
        "Min year".into(),
        "Max year".into(),
    ]];
    for summary in ctx.corpus.summary() {
        let paper = calibration::TABLE1
            .iter()
            .find(|r| r.data_set == summary.data_set)
            .unwrap();
        rows.push(vec![
            summary.data_set.to_string(),
            summary.posts.to_string(),
            paper.posts.to_string(),
            year(summary.min_timestamp),
            year(summary.max_timestamp),
        ]);
    }
    s.push_str(&render::table(&rows));
    let _ = writeln!(
        s,
        "(measured counts are paper volume × scale; blogs use their own scale — DESIGN.md §2)"
    );
    s
}

fn year(ts: u64) -> String {
    // Good enough for a report: 1970 + ts/365.25d.
    let y = 1970 + (ts as f64 / 31_557_600.0) as u64;
    y.to_string()
}

// --------------------------------------------------------------------------
// Figure 1 / Figure 4
// --------------------------------------------------------------------------

fn figure1(ctx: &mut ReproContext) -> String {
    let mut s = header("Figure 1 — pipeline stage counts");
    let cth = ctx.cth().counts.clone();
    let dox = ctx.dox().counts.clone();
    let rows = vec![
        vec![
            "Stage".into(),
            "CTH pipeline".into(),
            "Dox pipeline".into(),
            "Paper (CTH/Dox)".into(),
        ],
        vec![
            "raw documents".into(),
            cth.raw_documents.to_string(),
            dox.raw_documents.to_string(),
            "~560M / ~560M".into(),
        ],
        vec![
            "seed annotations".into(),
            cth.seed_annotations.to_string(),
            dox.seed_annotations.to_string(),
            "1,371 / 11,614".into(),
        ],
        vec![
            "crowd annotations".into(),
            cth.crowd_annotations.to_string(),
            dox.crowd_annotations.to_string(),
            "26.35K / 79.37K".into(),
        ],
        vec![
            "above threshold".into(),
            cth.above_threshold.to_string(),
            dox.above_threshold.to_string(),
            "38.09K / 70.82K".into(),
        ],
        vec![
            "final annotated".into(),
            cth.final_annotated.to_string(),
            dox.final_annotated.to_string(),
            "10.42K / 9.84K".into(),
        ],
        vec![
            "true positives".into(),
            cth.true_positives.to_string(),
            dox.true_positives.to_string(),
            "6.25K / 8.43K".into(),
        ],
    ];
    s.push_str(&render::table(&rows));
    let _ = writeln!(
        s,
        "final precision: CTH {:.1}% (paper 60.0%), dox {:.1}% (paper 85.6%)",
        100.0 * cth.final_precision(),
        100.0 * dox.final_precision()
    );
    s
}

fn figure4(ctx: &mut ReproContext) -> String {
    let mut s = header("Figure 4 — bootstrap keyword query");
    let query = figure4_query();
    let boards: Vec<&Document> = ctx.corpus.by_platform(Platform::Boards).collect();
    let hits: Vec<&&Document> = boards.iter().filter(|d| query.matches(&d.text)).collect();
    let true_hits = hits.iter().filter(|d| d.truth.is_cth).count();
    let cth_total = boards.iter().filter(|d| d.truth.is_cth).count();
    let _ = writeln!(s, "boards documents scanned : {}", boards.len());
    let _ = writeln!(s, "query matches            : {}", hits.len());
    let _ = writeln!(
        s,
        "query precision          : {:.1}% ({} true CTH among matches)",
        100.0 * true_hits as f64 / hits.len().max(1) as f64,
        true_hits
    );
    let _ = writeln!(
        s,
        "query recall on planted  : {:.1}% ({} of {})",
        100.0 * true_hits as f64 / cth_total.max(1) as f64,
        true_hits,
        cth_total
    );
    let _ = writeln!(
        s,
        "(the paper used the seed query for initial annotation only; Figure 4)"
    );
    s
}

// --------------------------------------------------------------------------
// Tables 2–4
// --------------------------------------------------------------------------

fn table2(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 2 — training-set sizes");
    let cth = ctx.cth().training_by_platform.clone();
    let dox = ctx.dox().training_by_platform.clone();
    let mut rows = vec![vec![
        "Platform".into(),
        "Dox +".into(),
        "Dox -".into(),
        "CTH +".into(),
        "CTH -".into(),
    ]];
    for platform in Platform::ALL {
        let d = dox.get(&platform).copied().unwrap_or((0, 0));
        let c = cth.get(&platform).copied().unwrap_or((0, 0));
        if d == (0, 0) && c == (0, 0) {
            continue;
        }
        rows.push(vec![
            platform.to_string(),
            d.0.to_string(),
            d.1.to_string(),
            c.0.to_string(),
            c.1.to_string(),
        ]);
    }
    s.push_str(&render::table(&rows));
    let _ = writeln!(
        s,
        "paper totals: dox 3,870+ / 75,504-; CTH 1,724+ / 24,629- (Table 2)"
    );
    s
}

fn table3(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 3 — classifier performance (held-out)");
    let mut rows = vec![vec![
        "Classifier".into(),
        "Label".into(),
        "F1".into(),
        "Precision".into(),
        "Recall".into(),
        "Paper F1".into(),
    ]];
    {
        let dox = ctx.dox().eval.clone();
        let m = dox.metrics;
        rows.push(vec![
            "Doxing".into(),
            "Dox".into(),
            f2(m.positive.f1),
            f2(m.positive.precision),
            f2(m.positive.recall),
            "0.76".into(),
        ]);
        rows.push(vec![
            "".into(),
            "No Dox".into(),
            f2(m.negative.f1),
            f2(m.negative.precision),
            f2(m.negative.recall),
            "0.99".into(),
        ]);
        rows.push(vec![
            "".into(),
            "Macro Avg.".into(),
            f2(m.macro_avg.f1),
            f2(m.macro_avg.precision),
            f2(m.macro_avg.recall),
            "0.88".into(),
        ]);
    }
    {
        let cth = ctx.cth().eval.clone();
        let m = cth.metrics;
        rows.push(vec![
            "CTH".into(),
            "CTH".into(),
            f2(m.positive.f1),
            f2(m.positive.precision),
            f2(m.positive.recall),
            "0.63".into(),
        ]);
        rows.push(vec![
            "".into(),
            "No CTH".into(),
            f2(m.negative.f1),
            f2(m.negative.precision),
            f2(m.negative.recall),
            "0.97".into(),
        ]);
        rows.push(vec![
            "".into(),
            "Macro Avg.".into(),
            f2(m.macro_avg.f1),
            f2(m.macro_avg.precision),
            f2(m.macro_avg.recall),
            "0.80".into(),
        ]);
    }
    s.push_str(&render::table(&rows));
    let dox_auc = ctx.dox().eval.auc;
    let cth_auc = ctx.cth().eval.auc;
    let _ = writeln!(
        s,
        "AUC-ROC: dox {} / CTH {}  (paper optimizes AUC but prints F1; dox > CTH expected)",
        dox_auc.map(|a| format!("{a:.3}")).unwrap_or("n/a".into()),
        cth_auc.map(|a| format!("{a:.3}")).unwrap_or("n/a".into()),
    );
    s
}

fn f2(x: f64) -> String {
    format!("{x:.2}")
}

fn table4(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 4 — thresholds per platform");
    for (task_name, thresholds, paper) in [
        (
            "Doxing",
            ctx.dox().thresholds.clone(),
            &calibration::TABLE4_DOX[..],
        ),
        (
            "Call to harassment",
            ctx.cth().thresholds.clone(),
            &calibration::TABLE4_CTH[..],
        ),
    ] {
        let _ = writeln!(s, "\n{task_name}:");
        let mut rows = vec![vec![
            "Platform".into(),
            "t".into(),
            "Above".into(),
            "Annotated".into(),
            "True+".into(),
            "Paper (t / above / true+)".into(),
        ]];
        for row in &thresholds {
            let p = paper.iter().find(|p| p.platform == row.platform.slug());
            rows.push(vec![
                row.platform.to_string(),
                format!("{}", row.threshold),
                row.above_threshold.to_string(),
                format!("{}{}", row.annotated, if row.exhaustive { "*" } else { "" }),
                row.true_positives.to_string(),
                p.map(|p| {
                    format!(
                        "{} / {} / {}",
                        p.threshold, p.above_threshold, p.true_positive
                    )
                })
                .unwrap_or_default(),
            ]);
        }
        s.push_str(&render::table(&rows));
    }
    s.push_str("* exhaustive annotation (every document above the threshold)\n");
    s
}

// --------------------------------------------------------------------------
// Tables 5 / 10 / 11 — attack taxonomy
// --------------------------------------------------------------------------

fn table5(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 5 — parent attack types per data set");
    let docs = ctx.annotated_cth();
    let columns = attack_types::tabulate(&docs);
    let mut rows = vec![vec![
        "Attack Type".into(),
        "Boards".into(),
        "Chat".into(),
        "Gab".into(),
        "Paper (Boards/Chat/Gab %)".into(),
    ]];
    for parent in AttackType::ALL {
        let mut row = vec![parent.to_string()];
        for col in &columns {
            row.push(render::count_pct(col.parent(parent, &docs), col.size));
        }
        let paper: Vec<String> = [DataSet::Boards, DataSet::Chat, DataSet::Gab]
            .iter()
            .map(|ds| {
                let total = calibration::CTH_SIZE
                    .iter()
                    .find(|(d, _)| d == ds)
                    .unwrap()
                    .1;
                let count = calibration::table11_parent_total(*ds, parent);
                format!("{:.1}", 100.0 * count as f64 / total as f64)
            })
            .collect();
        row.push(paper.join("/"));
        rows.push(row);
    }
    s.push_str(&render::table(&rows));
    s
}

fn table10(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 10 — taxonomy by inferred gender");
    let docs = ctx.annotated_cth();
    let columns = gender::tabulate_by_gender(&docs);
    let sizes: Vec<String> = columns.iter().map(|c| c.size.to_string()).collect();
    let _ = writeln!(
        s,
        "column sizes (Unknown/Female/Male): measured {} — paper 2,711 / 1,160 / 2,383",
        sizes.join(" / ")
    );
    let mut rows = vec![vec![
        "Subcategory".into(),
        "Unknown".into(),
        "Female".into(),
        "Male".into(),
        "Paper (U/F/M)".into(),
    ]];
    for sub in Subcategory::ALL {
        let mut row = vec![sub.to_string()];
        for col in &columns {
            row.push(render::count_pct(col.subcategory(sub), col.size));
        }
        let paper_row = calibration::TABLE10
            .iter()
            .find(|r| r.subcategory == sub)
            .unwrap();
        row.push(format!(
            "{}/{}/{}",
            paper_row.unknown, paper_row.female, paper_row.male
        ));
        rows.push(row);
    }
    s.push_str(&render::table(&rows));
    s
}

fn table11(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 11 — full taxonomy per data set");
    let docs = ctx.annotated_cth();
    let columns = attack_types::tabulate(&docs);
    let mut rows = vec![vec![
        "Subcategory".into(),
        "Boards".into(),
        "Chat".into(),
        "Gab".into(),
        "Paper (B/C/G)".into(),
    ]];
    for sub in Subcategory::ALL {
        let mut row = vec![sub.to_string()];
        for col in &columns {
            row.push(render::count_pct(col.subcategory(sub), col.size));
        }
        let p = calibration::TABLE11
            .iter()
            .find(|r| r.subcategory == sub)
            .unwrap();
        row.push(format!("{}/{}/{}", p.boards, p.chat, p.gab));
        rows.push(row);
    }
    s.push_str(&render::table(&rows));
    s
}

// --------------------------------------------------------------------------
// Table 6 / 7 / Figure 2 — dox PII and harm
// --------------------------------------------------------------------------

fn table6(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 6 — PII in doxes per data set");
    let docs = ctx.annotated_doxes();
    let extractor = PiiExtractor::new();
    let (columns, _) = pii_tables::tabulate_pii(&extractor, &docs);
    let mut rows = vec![vec![
        "PII".into(),
        "Boards".into(),
        "Chat".into(),
        "Gab".into(),
        "Pastes".into(),
        "Paper % (B/C/G/P)".into(),
    ]];
    for kind in PiiKind::ALL {
        let mut row = vec![kind.to_string()];
        for col in &columns {
            row.push(render::count_pct(col.count(kind), col.size));
        }
        let p = calibration::TABLE6.iter().find(|r| r.kind == kind).unwrap();
        let pct = |count: u32, ds: DataSet| {
            let size = calibration::DOX_SIZE
                .iter()
                .find(|(d, _)| *d == ds)
                .unwrap()
                .1;
            format!("{:.1}", 100.0 * count as f64 / size as f64)
        };
        row.push(format!(
            "{}/{}/{}/{}",
            pct(p.boards, DataSet::Boards),
            pct(p.chat, DataSet::Chat),
            pct(p.gab, DataSet::Gab),
            pct(p.pastes, DataSet::Pastes)
        ));
        rows.push(row);
    }
    s.push_str(&render::table(&rows));
    s
}

fn table7() -> String {
    let mut s = header("Table 7 — harm-risk taxonomy");
    let mut rows = vec![vec!["Harm Risk".into(), "Triggering PII".into()]];
    for risk in HarmRisk::ALL {
        let kinds: Vec<String> = risk.trigger_kinds().iter().map(|k| k.to_string()).collect();
        rows.push(vec![
            risk.to_string(),
            if kinds.is_empty() {
                "family / employer information (manual annotation)".into()
            } else {
                kinds.join(", ")
            },
        ]);
    }
    s.push_str(&render::table(&rows));
    s.push_str("(static mapping; assignment measured in Figure 2)\n");
    s
}

fn figure2(ctx: &mut ReproContext) -> String {
    let mut s = header("Figure 2 — harm-risk overlap");
    let docs = ctx.annotated_doxes();
    let extractor = PiiExtractor::new();
    let (fig, per_doc) = harm_risk::figure2(&extractor, &docs);
    let _ = writeln!(s, "doxes analyzed: {}", fig.total);
    let mut rows: Vec<(String, usize)> = Vec::new();
    for bits in 0u8..16 {
        let set = RiskSet::from_bits(bits);
        let label = if set.is_empty() {
            "none".to_string()
        } else {
            set.iter()
                .map(|r| r.slug().chars().next().unwrap().to_string())
                .collect::<Vec<_>>()
                .join("+")
        };
        let count = fig.combination(set);
        if count > 0 {
            rows.push((label, count));
        }
    }
    rows.sort_by_key(|row| std::cmp::Reverse(row.1));
    s.push_str(&render::bar_chart(&rows, 40));
    let _ = writeln!(s, "\nper-risk totals (paper: Physical 3,518 / Economic 2,443 / Online 3,959 / Reputation 3,601 of 8,425):");
    for risk in HarmRisk::ALL {
        let _ = writeln!(
            s,
            "  {:<20} {}",
            risk.to_string(),
            render::count_pct(fig.risk_total(risk), fig.total)
        );
    }
    let _ = writeln!(
        s,
        "all four risks: {} (paper: 970 = 11.5%)",
        render::count_pct(fig.all_four(), fig.total)
    );
    let obs = harm_risk::observations(&docs, &per_doc);
    let _ = writeln!(
        s,
        "Discord doxes with no indicator: {:.0}% (paper: >50%)  |  all-four from pastes: {:.0}% (paper: 73%)",
        100.0 * obs.discord_no_indicator,
        100.0 * obs.all_four_from_pastes
    );
    s
}

// --------------------------------------------------------------------------
// Tables 8 / 9 — blogs
// --------------------------------------------------------------------------

fn table8(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 8 — blog analysis");
    let rows8 = blogs::table8(&ctx.corpus);
    let mut rows = vec![vec![
        "Blog".into(),
        "Posts".into(),
        "Relevant".into(),
        "Actual doxes".into(),
        "Query recall".into(),
        "Paper (posts/relevant/doxes)".into(),
    ]];
    for r in &rows8 {
        let paper = calibration::blogs::TABLE8
            .iter()
            .find(|p| {
                p.name
                    .to_lowercase()
                    .replace(' ', "_")
                    .contains(&r.blog[..4.min(r.blog.len())])
                    || r.blog.contains(&p.name.to_lowercase().replace(' ', "_"))
            })
            .map(|p| format!("{}/{}/{}", p.total_posts, p.relevant, p.actual_doxes))
            .unwrap_or_default();
        rows.push(vec![
            r.blog.clone(),
            r.total_posts.to_string(),
            r.relevant.to_string(),
            r.actual_doxes.to_string(),
            format!("{:.0}%", 100.0 * r.query_recall()),
            paper,
        ]);
    }
    s.push_str(&render::table(&rows));
    let _ = writeln!(
        s,
        "(paper: the keyword query missed 10 of 33 Torch doxes — recall 70%)"
    );
    s
}

fn table9(ctx: &mut ReproContext) -> String {
    let mut s = header("Table 9 — blog attack registers");
    let stats = blogs::register_stats(&ctx.corpus);
    let _ = writeln!(
        s,
        "Daily Stormer doxes with a call to overload: {} of {} ({:.0}%; paper: 60%)",
        stats.stormer_with_overload,
        stats.stormer_doxes,
        100.0 * stats.stormer_with_overload as f64 / stats.stormer_doxes.max(1) as f64
    );
    let _ = writeln!(
        s,
        "mean PII kinds per dox: antifascist blogs {:.1} vs Daily Stormer {:.1} (paper: Stormer doxes carry less PII)",
        stats.antifascist_mean_pii, stats.stormer_mean_pii
    );
    s.push_str("qualitative register (paper Table 9): antifascist = narration + extensive PII +\n");
    s.push_str("community alert; Stormer = narration + single contact + raid/spam call.\n");
    s
}

// --------------------------------------------------------------------------
// Figures 5 / 6 + thread sections
// --------------------------------------------------------------------------

fn board_cth(ctx: &ReproContext) -> Vec<&Document> {
    ctx.corpus
        .by_platform(Platform::Boards)
        .filter(|d| d.truth.is_cth)
        .collect()
}

fn board_dox(ctx: &ReproContext) -> Vec<&Document> {
    ctx.corpus
        .by_platform(Platform::Boards)
        .filter(|d| d.truth.is_dox)
        .collect()
}

fn figure5(ctx: &mut ReproContext) -> String {
    let mut s = header("Figure 5 — thread-size CDF (CTH vs baseline)");
    let cth = board_cth(ctx);
    let baseline = threads::baseline_sample(&ctx.corpus, 5_000, 1234);
    let fig = threads::figure5(&cth, &baseline, 48);
    s.push_str(&render::cdf_sketch(
        &[("CTH", &fig.cth_curve), ("Baseline", &fig.baseline_curve)],
        48,
    ));
    for q in [0.25, 0.5, 0.75, 0.9] {
        let at = |curve: &[(f64, f64)]| {
            curve
                .iter()
                .find(|(_, y)| *y >= q)
                .map(|(x, _)| format!("{x:.0}"))
                .unwrap_or("-".into())
        };
        let _ = writeln!(
            s,
            "  q{}: CTH thread ≤ {} posts | baseline ≤ {} posts",
            (q * 100.0) as u32,
            at(&fig.cth_curve),
            at(&fig.baseline_curve)
        );
    }
    s.push_str("(paper: the two CDFs nearly coincide over 1..10^3; x is log-scaled)\n");
    s
}

fn figure6(ctx: &mut ReproContext) -> String {
    let mut s = header("Figure 6 — thread sizes per attack type");
    let cth = board_cth(ctx);
    let baseline = threads::baseline_sample(&ctx.corpus, 5_000, 1234);
    let rows6 = threads::figure6(&cth, &baseline);
    let mut rows = vec![vec![
        "Attack type".into(),
        "n".into(),
        "Q1".into(),
        "Median".into(),
        "Q3".into(),
    ]];
    for r in rows6 {
        rows.push(vec![
            r.attack_type
                .map(|a| a.to_string())
                .unwrap_or("Baseline".into()),
            r.n.to_string(),
            format!("{:.0}", r.q1),
            format!("{:.0}", r.median),
            format!("{:.0}", r.q3),
        ]);
    }
    s.push_str(&render::table(&rows));
    s.push_str("(paper Figure 6: box plots; toxic-content threads skew largest)\n");
    s
}

// --------------------------------------------------------------------------
// Section statistics
// --------------------------------------------------------------------------

fn sec5_3(ctx: &mut ReproContext) -> String {
    let mut s = header("§5.3 — crowd annotation agreement");
    for (name, rounds, paper_dis, paper_kappa) in [
        (
            "CTH",
            ctx.cth().rounds.clone(),
            calibration::annotation::CTH_DISAGREEMENT,
            calibration::annotation::CTH_CROWD_KAPPA,
        ),
        (
            "Dox",
            ctx.dox().rounds.clone(),
            calibration::annotation::DOX_DISAGREEMENT,
            calibration::annotation::DOX_CROWD_KAPPA,
        ),
    ] {
        for (i, round) in rounds.iter().enumerate() {
            let _ = writeln!(
                s,
                "{name} round {}: {} sampled, disagreement {:.1}% (paper {:.1}%), kappa {} (paper {:.3})",
                i + 1,
                round.sampled,
                100.0 * round.disagreement_rate,
                100.0 * paper_dis,
                round.kappa.map(|k| format!("{k:.3}")).unwrap_or("n/a".into()),
                paper_kappa,
            );
        }
    }
    s.push_str("(crowd disagreement reflects task difficulty: CTH >> dox, as in the paper)\n");
    s
}

fn sec5_6(ctx: &mut ReproContext) -> String {
    let mut s = header("§5.6 — extractor and gender accuracy");
    let extractor = PiiExtractor::new();
    // Paper evaluates on 98 true-positive pastes doxes.
    let sample: Vec<(&str, incite_taxonomy::pii_kind::PiiSet)> = ctx
        .corpus
        .by_platform(Platform::Pastes)
        .filter(|d| d.truth.is_dox)
        .take(98)
        .map(|d| (d.text.as_str(), d.truth.pii))
        .collect();
    let accs = evaluate_extractors(&extractor, &sample);
    let mut perfect = 0;
    for acc in &accs {
        if acc.accuracy() >= 1.0 {
            perfect += 1;
        }
        let _ = writeln!(
            s,
            "  {:<12} accuracy {:.1}% ({} / {})",
            acc.kind.to_string(),
            100.0 * acc.accuracy(),
            acc.correct,
            acc.total
        );
    }
    let _ = writeln!(
        s,
        "extractors at 100%: {perfect} of 9 (paper: 7 of 12 expressions; all ≥ 95%)"
    );
    // Gender: paper evaluates on 123 pronoun-bearing doxes.
    let gsample: Vec<(&str, Gender)> = ctx
        .corpus
        .by_platform(Platform::Pastes)
        .filter(|d| d.truth.is_dox && d.truth.gender != Gender::Unknown)
        .take(123)
        .map(|d| (d.text.as_str(), d.truth.gender))
        .collect();
    let (correct, total) = evaluate_gender(&gsample);
    let _ = writeln!(
        s,
        "pronoun gender inference: {:.1}% ({} / {}) — paper: 94.3%",
        100.0 * correct as f64 / total.max(1) as f64,
        correct,
        total
    );
    s
}

fn sec6_2(ctx: &mut ReproContext) -> String {
    let mut s = header("§6.2 — attack-type statistics");
    let docs = ctx.annotated_cth();
    let co = attack_types::co_occurrence(&docs);
    let _ = writeln!(
        s,
        "multi-type calls: {} of {} ({:.1}%; paper 13.3%) — two {} / three {} / four+ {}",
        co.multi_label,
        co.total,
        100.0 * co.multi_label as f64 / co.total.max(1) as f64,
        co.exactly_two,
        co.exactly_three,
        co.four_or_more
    );
    let _ = writeln!(
        s,
        "surveillance ∩ content leakage: {:.0}% (paper 64%)  |  impersonation ∩ POM: {:.0}% (paper 30%)",
        100.0 * co.surveillance_with_leakage,
        100.0 * co.impersonation_with_pom
    );
    let columns = attack_types::tabulate(&docs);
    let comps = attack_types::reporting_comparisons(&columns, 0.1);
    s.push_str("\nreporting subcategories across data sets (one-way chi-square, BH-corrected):\n");
    for c in comps {
        let _ = writeln!(
            s,
            "  {:<32} {}",
            c.subcategory.to_string(),
            match c.test {
                Some(t) => format!(
                    "chi2 = {:>8.2}, p = {:.4}{}",
                    t.statistic,
                    t.p_value,
                    if c.significant { "  *significant*" } else { "" }
                ),
                None => "n/a".into(),
            }
        );
    }
    s.push_str("(paper: nearly all reporting differences significant at p < 0.01)\n");

    // Gender difference test.
    let gcols = gender::tabulate_by_gender(&docs);
    if let Some(test) = gender::private_reputation_gender_test(&gcols) {
        let female = gcols.iter().find(|c| c.gender == Gender::Female).unwrap();
        let male = gcols.iter().find(|c| c.gender == Gender::Male).unwrap();
        let _ = writeln!(
            s,
            "\nprivate reputational harm: female {:.1}% vs male {:.1}% (paper 7.5% vs 3.0%), chi2 = {:.2}, p = {:.4}",
            female.percent(female.subcategory(Subcategory::ReputationalHarmPrivate)),
            male.percent(male.subcategory(Subcategory::ReputationalHarmPrivate)),
            test.statistic,
            test.p_value
        );
    }
    s
}

fn sec6_3(ctx: &mut ReproContext) -> String {
    let mut s = header("§6.3 — CTH thread analysis");
    let cth = board_cth(ctx);
    let pos = threads::position_stats(&cth);
    let _ = writeln!(
        s,
        "first post: {:.1}% (paper 3.7%) | last post: {:.1}% (paper 2.7%)",
        100.0 * pos.first_fraction,
        100.0 * pos.last_fraction
    );
    let _ = writeln!(
        s,
        "position median {:.0} / mean {:.0} / σ {:.0} (paper 70 / 145 / 263)",
        pos.position.median, pos.position.mean, pos.position.std_dev
    );

    let baseline = threads::baseline_sample(&ctx.corpus, 5_000, 55);
    let tests = threads::response_size_tests(&cth, &baseline, 5, 0.1);
    s.push_str("\nresponse-size tests (log sizes, Welch vs baseline, BH 0.1):\n");
    for t in tests {
        match t.test {
            Some(r) => {
                let _ = writeln!(
                    s,
                    "  {:<24} n={:<5} t={:>6.2}  p={:.4}  rank-p={}{}",
                    t.attack_type.to_string(),
                    t.n,
                    r.t,
                    r.p_value,
                    t.rank_p.map(|p| format!("{p:.4}")).unwrap_or("n/a".into()),
                    if t.significant { "  *significant*" } else { "" }
                );
            }
            None => {
                let _ = writeln!(
                    s,
                    "  {:<24} n={:<5} excluded",
                    t.attack_type.to_string(),
                    t.n
                );
            }
        }
    }
    s.push_str("(paper: only toxic content significant, t = 2.85, p < 0.01)\n");

    // Overlap on the above-threshold sets, exactly as the paper computes it.
    let cth_ids = ctx.cth().above_threshold_ids();
    let dox_ids = ctx.dox().above_threshold_ids();
    let ov = overlap::thread_overlap(&ctx.corpus, &cth_ids, &dox_ids);
    let _ = writeln!(
        s,
        "\nCTH sharing a thread with a dox: {:.2}% (paper 8.53%)",
        100.0 * ov.cth_with_dox_fraction()
    );
    let _ = writeln!(
        s,
        "dox threads containing a CTH:   {:.2}% (paper 17.85%)",
        100.0 * ov.dox_with_cth_fraction()
    );
    let _ = writeln!(
        s,
        "documents in both sets: {} (paper: 95) | thread base rates CTH {:.2}% / dox {:.2}% (paper 0.20% / 0.10% at full scale)",
        ov.both_documents,
        100.0 * ov.cth_thread_base_rate,
        100.0 * ov.dox_thread_base_rate
    );
    s
}

fn sec7_1(ctx: &mut ReproContext) -> String {
    let mut s = header("§7.1 — PII co-occurrence");
    let docs = ctx.annotated_doxes();
    let extractor = PiiExtractor::new();
    let (_, per_doc) = pii_tables::tabulate_pii(&extractor, &docs);
    let matrix = pii_tables::co_occurrence_matrix(&per_doc);
    s.push_str(
        "P(column | row) for contact PII (paper: addresses/phones/emails co-occur > 35%):\n",
    );
    let kinds = [
        PiiKind::Address,
        PiiKind::Phone,
        PiiKind::Email,
        PiiKind::Facebook,
    ];
    let mut rows = vec![{
        let mut h = vec!["given \\ with".to_string()];
        h.extend(kinds.iter().map(|k| k.to_string()));
        h
    }];
    for given in kinds {
        let mut row = vec![given.to_string()];
        for other in kinds {
            row.push(format!(
                "{:.0}%",
                100.0 * pii_tables::co_rate(&matrix, given, other)
            ));
        }
        rows.push(row);
    }
    s.push_str(&render::table(&rows));
    let _ = writeln!(
        s,
        "facebook → email: {:.0}% (paper 39%) | facebook → phone: {:.0}% (paper 25%)",
        100.0 * pii_tables::co_rate(&matrix, PiiKind::Facebook, PiiKind::Email),
        100.0 * pii_tables::co_rate(&matrix, PiiKind::Facebook, PiiKind::Phone)
    );
    s
}

fn sec7_3(ctx: &mut ReproContext) -> String {
    let mut s = header("§7.3 — repeated doxes");
    let docs = ctx.annotated_doxes();
    let extractor = PiiExtractor::new();
    let stats = repeats::repeated_doxes(&extractor, &docs);
    let _ = writeln!(
        s,
        "repeated doxes: {} of {} ({:.1}%) — paper: 11.12% inside the annotated set, 20.1% on the full above-threshold set",
        stats.repeated,
        stats.total,
        100.0 * stats.repeated_fraction()
    );
    let _ = writeln!(
        s,
        "same-data-set repeats: {:.0}% (paper 98%) | cross-posted: {} (paper 250)",
        100.0 * stats.same_data_set_fraction(),
        stats.cross_posted
    );
    s.push_str("repeats per data set (paper: pastes 13,076 / boards 1,402 / chats 62 / Gab 47):\n");
    for (ds, n) in &stats.per_data_set {
        let _ = writeln!(s, "  {:<8} {}", ds.to_string(), n);
    }
    s
}

fn sec7_4(ctx: &mut ReproContext) -> String {
    let mut s = header("§7.4 — dox thread analysis");
    let dox = board_dox(ctx);
    let pos = threads::position_stats(&dox);
    let _ = writeln!(
        s,
        "first post: {:.1}% (paper 9.7%) | last post: {:.1}% (paper 2.7%)",
        100.0 * pos.first_fraction,
        100.0 * pos.last_fraction
    );
    let _ = writeln!(
        s,
        "position median {:.0} / mean {:.0} / σ {:.0} (paper prints 142 / 59 / 236)",
        pos.position.median, pos.position.mean, pos.position.std_dev
    );
    let baseline = threads::baseline_sample(&ctx.corpus, 5_000, 56);
    let base_sizes: Vec<f64> = threads::response_sizes(&baseline);
    let dox_sizes: Vec<f64> = threads::response_sizes(&dox);
    let test = incite_stats::welch_t_test(
        &incite_stats::descriptive::log_transform(&dox_sizes),
        &incite_stats::descriptive::log_transform(&base_sizes),
    );
    match test {
        Some(t) => {
            let _ = writeln!(
                s,
                "response volume vs baseline: t = {:.2}, p = {:.4} (paper: no significant difference)",
                t.t, t.p_value
            );
        }
        None => s.push_str("response volume vs baseline: insufficient data\n"),
    }
    s
}

// --------------------------------------------------------------------------
// §9.2 extensions
// --------------------------------------------------------------------------

/// Per-attack-type classification (§9.2: "extend our classifiers to detect
/// each type of attack separately").
fn extension_attack_types(ctx: &mut ReproContext) -> String {
    use incite_core::attack_classifier::{default_featurizer, AttackTypeClassifier};
    let mut s = header("Extension — per-attack-type classifiers (§9.2)");
    let labeled: Vec<(String, incite_taxonomy::LabelSet)> = ctx
        .annotated_cth()
        .iter()
        .map(|d| (d.text.clone(), d.truth.labels))
        .collect();
    let mid = labeled.len() / 2;
    let clf = AttackTypeClassifier::train(
        &labeled[..mid],
        default_featurizer(),
        incite_ml::TrainConfig::default(),
    );
    let reports = clf.evaluate(&labeled[mid..]);
    let mut rows = vec![vec![
        "Attack type".into(),
        "threshold".into(),
        "F1".into(),
        "Precision".into(),
        "Recall".into(),
        "AUC".into(),
    ]];
    for (attack, report) in &reports {
        let m = report.metrics.positive;
        rows.push(vec![
            attack.to_string(),
            format!("{:.2}", clf.threshold(*attack).unwrap_or(0.5)),
            f2(m.f1),
            f2(m.precision),
            f2(m.recall),
            report
                .auc
                .map(|a| format!("{a:.3}"))
                .unwrap_or("n/a".into()),
        ]);
    }
    s.push_str(&render::table(&rows));
    if !clf.skipped.is_empty() {
        let skipped: Vec<String> = clf.skipped.iter().map(|a| a.to_string()).collect();
        let _ = writeln!(
            s,
            "skipped for lack of training data (paper: lockout/surveillance have < 10 examples): {}",
            skipped.join(", ")
        );
    }
    s
}

/// Longitudinal growth analysis (§9.2: "longitudinal analysis of calls to
/// harassment could provide insights into … trends of growth").
fn extension_longitudinal(ctx: &mut ReproContext) -> String {
    use incite_analysis::longitudinal;
    let mut s = header("Extension — longitudinal growth (§9.2)");
    let boards: Vec<&Document> = ctx.corpus.by_platform(Platform::Boards).collect();
    let rates = longitudinal::yearly_rates(&boards, |d| d.truth.is_cth);
    s.push_str("CTH rate per year on the boards (positives skew recent by construction):\n");
    let recent: Vec<_> = rates.iter().rev().take(8).rev().collect();
    let chart: Vec<(String, usize)> = recent
        .iter()
        .map(|(year, pos, _, _)| (year.to_string(), *pos))
        .collect();
    s.push_str(&render::bar_chart(&chart, 40));
    let g = longitudinal::growth_test(&boards, |d| d.truth.is_cth);
    let _ = writeln!(
        s,
        "growth: late/early CTH-rate ratio {:.2} ({}+/{} early vs {}+/{} late){}",
        g.rate_ratio(),
        g.early_positives,
        g.early_total,
        g.late_positives,
        g.late_total,
        match g.test {
            Some(t) => format!(", chi2 = {:.1}, p = {:.2e}", t.statistic, t.p_value),
            None => String::new(),
        }
    );
    s.push_str("(the paper proposes this analysis as future work; the generator plants a\n");
    s.push_str(" linear-in-time growth signal for the machinery to recover)\n");
    s
}
