//! The `serve_latency` experiment: loopback load test of the
//! `incite-serve` online inference service.
//!
//! Boots a real [`incite_serve::Server`] on `127.0.0.1:0`, drives it with
//! concurrent keep-alive clients over the actual HTTP surface, and
//! measures *exact* client-side latency percentiles (the server's own
//! `/metrics` histogram is log₂-bucketed) at several `--threads` values.
//! Every response's raw `f32` bit patterns are checked against the
//! offline `classifier.score` output, so the run doubles as an end-to-end
//! proof of the serving determinism contract. CI greps the `BENCH {...}`
//! line for `"latency_ok":true` and `"byte_identical":true`.

use crate::context::ReproContext;
use incite_serve::client::HttpClient;
use incite_serve::{ServeConfig, Server};
use std::fmt::Write as _;
use std::time::{Duration, Instant};

/// Concurrent load-generator clients per sweep point.
const CLIENTS: usize = 4;

/// Requests each client sends (single-document scores, keep-alive).
const REQUESTS_PER_CLIENT: usize = 50;

/// One sweep point of the thread sweep.
#[derive(serde::Serialize)]
struct SweepRow {
    threads: usize,
    requests: usize,
    errors: usize,
    throughput_rps: f64,
    p50_us: u64,
    p90_us: u64,
    p99_us: u64,
}

/// The machine-readable payload printed as the `BENCH {...}` line.
#[derive(serde::Serialize)]
struct BenchReport {
    experiment: &'static str,
    clients: usize,
    requests_per_client: usize,
    sweep: Vec<SweepRow>,
    byte_identical: bool,
    latency_ok: bool,
}

fn num_threads() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4)
}

/// Extracts the `"bits"` array from a `/v1/score` response body.
fn parse_bits(body: &str) -> Option<Vec<u32>> {
    let value = serde_json::from_str(body).ok()?;
    let serde::Value::Object(map) = value else {
        return None;
    };
    let serde::Value::Array(items) = map.get("bits")? else {
        return None;
    };
    items
        .iter()
        .map(|v| match v {
            serde::Value::UInt(u) => u32::try_from(*u).ok(),
            serde::Value::Int(i) => u32::try_from(*i).ok(),
            _ => None,
        })
        .collect()
}

/// Builds the one-document request body by hand; the text is generator
/// output (ASCII), so escaping quotes and backslashes suffices.
fn score_body(text: &str) -> String {
    let escaped: String = text
        .chars()
        .flat_map(|c| match c {
            '"' => vec!['\\', '"'],
            '\\' => vec!['\\', '\\'],
            '\n' => vec!['\\', 'n'],
            c => vec![c],
        })
        .collect();
    format!("{{\"text\": \"{escaped}\"}}")
}

struct ClientOutcome {
    latencies_us: Vec<u64>,
    mismatches: usize,
    errors: usize,
}

// The address travels as a string so the load generator never names a
// `std::net` type — the network edge stays in incite-serve (INC007).
fn drive_client(
    addr: &str,
    texts: &[String],
    expected_bits: &[u32],
    offset: usize,
) -> ClientOutcome {
    let mut outcome = ClientOutcome {
        latencies_us: Vec::with_capacity(REQUESTS_PER_CLIENT),
        mismatches: 0,
        errors: 0,
    };
    let Ok(mut client) = HttpClient::connect(addr) else {
        outcome.errors = REQUESTS_PER_CLIENT;
        return outcome;
    };
    for i in 0..REQUESTS_PER_CLIENT {
        let idx = (offset + i) % texts.len();
        let body = score_body(&texts[idx]);
        let started = Instant::now();
        match client.post_json("/v1/score", &body) {
            Ok(resp) if resp.status == 200 => {
                outcome
                    .latencies_us
                    .push(started.elapsed().as_micros() as u64);
                match parse_bits(&resp.body).as_deref() {
                    Some([bits]) if *bits == expected_bits[idx] => {}
                    _ => outcome.mismatches += 1,
                }
            }
            _ => outcome.errors += 1,
        }
    }
    outcome
}

fn percentile(sorted_us: &[u64], q: f64) -> u64 {
    if sorted_us.is_empty() {
        return 0;
    }
    let rank = ((q * sorted_us.len() as f64).ceil() as usize).clamp(1, sorted_us.len());
    sorted_us[rank - 1]
}

pub fn run(ctx: &mut ReproContext) -> String {
    let mut s = String::from(
        "\n================ serve_latency — online inference service ================\n",
    );
    // Train the same shape of classifier the pipeline produces.
    let labeled: Vec<(&str, bool)> = ctx
        .corpus
        .documents
        .iter()
        .take(1_000)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    let classifier = incite_ml::TextClassifier::train(
        labeled,
        incite_ml::FeaturizerConfig::default(),
        incite_ml::TrainConfig::default(),
    );

    // The request mix: a slice of corpus documents, scored offline once to
    // fix the expected bit patterns.
    let texts: Vec<String> = ctx
        .corpus
        .documents
        .iter()
        .take(64)
        .map(|d| d.text.clone())
        .collect();
    let expected_bits: Vec<u32> = texts
        .iter()
        .map(|t| classifier.score(t).to_bits())
        .collect();

    let mut sweep_points: Vec<usize> = vec![1, 4, num_threads()];
    sweep_points.sort_unstable();
    sweep_points.dedup();

    let mut sweep = Vec::new();
    let mut total_mismatches = 0usize;
    let mut total_errors = 0usize;
    for threads in sweep_points {
        let config = ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads,
            deadline: Duration::from_secs(30),
            ..ServeConfig::default()
        };
        let handle = match Server::start(classifier.clone(), config) {
            Ok(h) => h,
            Err(e) => {
                let _ = writeln!(s, "threads={threads}: server failed to start: {e}");
                total_errors += CLIENTS * REQUESTS_PER_CLIENT;
                continue;
            }
        };
        let addr = handle.local_addr().to_string();

        let wall = Instant::now();
        let outcomes: Vec<ClientOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = (0..CLIENTS)
                .map(|c| {
                    let texts = &texts;
                    let expected_bits = &expected_bits;
                    let addr = addr.as_str();
                    scope.spawn(move || {
                        drive_client(addr, texts, expected_bits, c * REQUESTS_PER_CLIENT)
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| {
                    h.join().unwrap_or(ClientOutcome {
                        latencies_us: Vec::new(),
                        mismatches: 0,
                        errors: REQUESTS_PER_CLIENT,
                    })
                })
                .collect()
        });
        let elapsed = wall.elapsed();
        let report = handle.join();

        let mut latencies: Vec<u64> = outcomes
            .iter()
            .flat_map(|o| o.latencies_us.iter().copied())
            .collect();
        latencies.sort_unstable();
        let errors: usize = outcomes.iter().map(|o| o.errors).sum();
        let mismatches: usize = outcomes.iter().map(|o| o.mismatches).sum();
        total_errors += errors;
        total_mismatches += mismatches;

        let row = SweepRow {
            threads,
            requests: latencies.len(),
            errors,
            throughput_rps: latencies.len() as f64 / elapsed.as_secs_f64().max(1e-9),
            p50_us: percentile(&latencies, 0.5),
            p90_us: percentile(&latencies, 0.9),
            p99_us: percentile(&latencies, 0.99),
        };
        let _ = writeln!(
            s,
            "threads={:<2} {:>4} ok / {} err | {:>8.1} req/s | p50 {:>6} µs | p90 {:>6} µs | p99 {:>6} µs | drained {} docs",
            row.threads,
            row.requests,
            row.errors,
            row.throughput_rps,
            row.p50_us,
            row.p90_us,
            row.p99_us,
            report.documents_scored
        );
        sweep.push(row);
    }

    let byte_identical = total_mismatches == 0 && total_errors == 0;
    // Sanity gate, not a performance target: every sweep point answered
    // every request and produced a nonzero p99.
    let latency_ok = !sweep.is_empty()
        && sweep
            .iter()
            .all(|r| r.errors == 0 && r.requests == CLIENTS * REQUESTS_PER_CLIENT && r.p99_us > 0);
    let _ = writeln!(
        s,
        "byte-identical to offline scoring: {byte_identical} ({total_mismatches} mismatches, {total_errors} errors)"
    );

    let bench = BenchReport {
        experiment: "serve_latency",
        clients: CLIENTS,
        requests_per_client: REQUESTS_PER_CLIENT,
        sweep,
        byte_identical,
        latency_ok,
    };
    match serde_json::to_string(&bench) {
        Ok(line) => {
            let _ = writeln!(s, "BENCH {line}");
        }
        Err(err) => {
            let _ = writeln!(s, "BENCH serialization failed: {err}");
        }
    }
    s
}
