//! The `featurize_throughput` experiment: rolling n-gram hashing vs the
//! legacy per-gram string path.
//!
//! `Featurizer::features` hashes every n-gram incrementally with
//! [`incite_textkit::RollingSlot`] — no per-gram string assembly — while
//! `features_legacy` keeps the original formatted-string path as the
//! differential reference. This experiment times both over the repro
//! corpus for every feature mode, verifies the sparse vectors are
//! byte-identical per document (index equality and `f32::to_bits` value
//! equality), and emits a `BENCH {...}` line for CI.

use crate::context::ReproContext;
use incite_ml::{FeatureMode, Featurizer, FeaturizerConfig};
use std::fmt::Write as _;
use std::time::Instant;

/// The machine-readable payload printed as the `BENCH {...}` line.
#[derive(serde::Serialize)]
struct BenchReport {
    experiment: &'static str,
    docs: usize,
    modes: usize,
    legacy_docs_per_sec: f64,
    rolling_docs_per_sec: f64,
    speedup: f64,
    speedup_ok: bool,
    byte_identical: bool,
}

pub fn run(ctx: &mut ReproContext) -> String {
    let mut s = String::from(
        "\n================ featurize_throughput — rolling n-gram hashing ================\n",
    );
    let texts: Vec<&str> = ctx
        .corpus
        .documents
        .iter()
        .map(|d| d.text.as_str())
        .collect();

    let mut legacy_elapsed = 0.0f64;
    let mut rolling_elapsed = 0.0f64;
    let mut byte_identical = true;
    let mut modes = 0usize;
    for mode in [FeatureMode::Word, FeatureMode::Subword, FeatureMode::Char] {
        modes += 1;
        let featurizer = Featurizer::fit(
            FeaturizerConfig {
                mode,
                ..FeaturizerConfig::default()
            },
            texts.iter().take(512).copied(),
        );

        let start = Instant::now();
        let legacy: Vec<_> = texts
            .iter()
            .map(|t| featurizer.features_legacy(t))
            .collect();
        let mode_legacy = start.elapsed().as_secs_f64();
        legacy_elapsed += mode_legacy;

        let start = Instant::now();
        let rolling: Vec<_> = texts.iter().map(|t| featurizer.features(t)).collect();
        let mode_rolling = start.elapsed().as_secs_f64();
        rolling_elapsed += mode_rolling;

        // The equivalence contract: identical indices, bit-identical values,
        // for every document in the corpus.
        let identical = legacy.iter().zip(&rolling).all(|(a, b)| {
            a.len() == b.len()
                && a.iter()
                    .zip(b.iter())
                    .all(|((i, x), (j, y))| i == j && x.to_bits() == y.to_bits())
        });
        byte_identical &= identical;

        let _ = writeln!(
            s,
            "{mode:?}: legacy {:>9.1} docs/sec | rolling {:>9.1} docs/sec | {:.2}x | byte-identical: {identical}",
            texts.len() as f64 / mode_legacy.max(1e-9),
            texts.len() as f64 / mode_rolling.max(1e-9),
            mode_legacy / mode_rolling.max(1e-9),
        );
    }

    let work = (texts.len() * modes) as f64;
    let legacy_rate = work / legacy_elapsed.max(1e-9);
    let rolling_rate = work / rolling_elapsed.max(1e-9);
    let speedup = legacy_elapsed / rolling_elapsed.max(1e-9);
    let _ = writeln!(
        s,
        "all modes: {legacy_rate:.1} -> {rolling_rate:.1} docs/sec | speedup: {speedup:.2}x | byte-identical: {byte_identical}"
    );

    let bench = BenchReport {
        experiment: "featurize_throughput",
        docs: texts.len(),
        modes,
        legacy_docs_per_sec: legacy_rate,
        rolling_docs_per_sec: rolling_rate,
        speedup,
        speedup_ok: speedup >= 1.0,
        byte_identical,
    };
    match serde_json::to_string(&bench) {
        Ok(line) => {
            let _ = writeln!(s, "BENCH {line}");
        }
        Err(err) => {
            let _ = writeln!(s, "BENCH serialization failed: {err}");
        }
    }
    s
}
