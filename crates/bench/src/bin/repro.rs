//! `repro` — regenerates every table and figure of the paper.
//!
//! ```text
//! repro all                       # every experiment at the default scale
//! repro table5 figure2            # specific experiments
//! repro all --scale paper         # 1/1000 of the paper's raw volume
//! repro all --seed 7 --out out.txt
//! repro list                      # show experiment ids
//! ```

use incite_bench::{run_experiment, ReproContext, Scale, EXPERIMENTS};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut ids: Vec<String> = Vec::new();
    let mut scale = Scale::Small;
    let mut seed = 0x1c17e5u64;
    let mut out_path: Option<String> = None;

    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| die("--scale takes tiny|small|paper"));
            }
            "--seed" => {
                i += 1;
                seed = args
                    .get(i)
                    .and_then(|s| s.parse().ok())
                    .unwrap_or_else(|| die("--seed takes a u64"));
            }
            "--out" => {
                i += 1;
                out_path = Some(
                    args.get(i)
                        .cloned()
                        .unwrap_or_else(|| die("--out takes a path")),
                );
            }
            "list" => {
                println!("available experiments:");
                for (id, desc) in EXPERIMENTS {
                    println!("  {id:<10} {desc}");
                }
                return;
            }
            other => ids.push(other.to_string()),
        }
        i += 1;
    }

    if ids.is_empty() {
        eprintln!("usage: repro <experiment ...|all|list> [--scale tiny|small|paper] [--seed N] [--out FILE]");
        std::process::exit(2);
    }
    if ids.iter().any(|i| i == "all") {
        ids = EXPERIMENTS.iter().map(|(id, _)| id.to_string()).collect();
    }
    for id in &ids {
        if !EXPERIMENTS.iter().any(|(e, _)| e == id) {
            die(&format!("unknown experiment '{id}' (try `repro list`)"));
        }
    }

    eprintln!("generating corpus at scale {scale:?} (seed {seed}) ...");
    let start = std::time::Instant::now();
    let mut ctx = ReproContext::new(scale, seed);
    eprintln!(
        "  {} documents in {:.1}s",
        ctx.corpus.len(),
        start.elapsed().as_secs_f64()
    );

    let mut report = String::new();
    report.push_str(&format!(
        "incite reproduction report — scale {scale:?}, seed {seed}, {} documents\n",
        ctx.corpus.len()
    ));
    for id in &ids {
        eprintln!("running {id} ...");
        let t = std::time::Instant::now();
        let section = run_experiment(id, &mut ctx).expect("validated id");
        report.push_str(&section);
        eprintln!("  done in {:.1}s", t.elapsed().as_secs_f64());
    }

    match out_path {
        Some(path) => {
            let mut f = std::fs::File::create(&path)
                .unwrap_or_else(|e| die(&format!("cannot create {path}: {e}")));
            f.write_all(report.as_bytes()).expect("write report");
            eprintln!("report written to {path}");
        }
        None => print!("{report}"),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("error: {msg}");
    std::process::exit(2);
}
