//! `corpus-gen` — generates a synthetic corpus and writes it as JSONL, for
//! downstream users who want the data without the pipeline.
//!
//! ```text
//! corpus-gen --scale small --seed 7 --out corpus.jsonl
//! corpus-gen --scale tiny            # stdout
//! ```

use incite_bench::Scale;
use incite_corpus::{generate, jsonl};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Tiny;
    let mut seed = 1u64;
    let mut out: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("--scale takes tiny|small|paper");
                        std::process::exit(2);
                    });
            }
            "--seed" => {
                i += 1;
                seed = args.get(i).and_then(|s| s.parse().ok()).unwrap_or(1);
            }
            "--out" => {
                i += 1;
                out = args.get(i).cloned();
            }
            other => {
                eprintln!("unknown argument {other}");
                std::process::exit(2);
            }
        }
        i += 1;
    }

    let corpus = generate(&scale.corpus_config(seed));
    eprintln!("generated {} documents", corpus.len());
    match out {
        Some(path) => {
            let f = std::fs::File::create(&path).expect("create output file");
            jsonl::write_jsonl(f, &corpus.documents).expect("write JSONL");
            eprintln!("written to {path}");
        }
        None => {
            let stdout = std::io::stdout();
            jsonl::write_jsonl(stdout.lock(), &corpus.documents).expect("write JSONL");
        }
    }
}
