//! Every registered experiment must run and produce non-empty output on a
//! tiny corpus (the CI-speed smoke reproduction).

use incite_bench::{run_experiment, ReproContext, Scale, EXPERIMENTS};

#[test]
fn every_experiment_runs_at_tiny_scale() {
    let mut ctx = ReproContext::new(Scale::Tiny, 0xbeef);
    for (id, _) in EXPERIMENTS {
        let out = run_experiment(id, &mut ctx).expect("registered id runs");
        assert!(out.len() > 40, "{id} produced almost no output: {out:?}");
        assert!(out.contains("====") || out.contains('\n'), "{id}");
    }
}

#[test]
fn unknown_experiment_returns_none() {
    let mut ctx = ReproContext::new(Scale::Tiny, 1);
    assert!(run_experiment("not_an_experiment", &mut ctx).is_none());
}

#[test]
fn experiment_ids_are_unique() {
    let mut ids: Vec<&str> = EXPERIMENTS.iter().map(|(id, _)| *id).collect();
    ids.sort_unstable();
    ids.dedup();
    assert_eq!(ids.len(), EXPERIMENTS.len());
}
