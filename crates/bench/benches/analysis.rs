//! Analysis-stage benchmarks: attack tabulation, thread statistics,
//! harm-risk assignment, repeated-dox linking, and the quality ablations
//! (combined vs per-platform training; fixed vs searched threshold).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use incite_analysis::{attack_types, harm_risk, repeats, threads};
use incite_annotate::Annotator;
use incite_core::threshold::{select_threshold, ThresholdConfig};
use incite_core::Task;
use incite_corpus::{generate, Corpus, CorpusConfig, DocId, Document};
use incite_ml::{FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
use incite_pii::PiiExtractor;
use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn corpus() -> Corpus {
    generate(&CorpusConfig::small(77))
}

fn bench_analyses(c: &mut Criterion) {
    let corpus = corpus();
    let cth: Vec<&Document> = corpus.documents.iter().filter(|d| d.truth.is_cth).collect();
    let doxes: Vec<&Document> = corpus.documents.iter().filter(|d| d.truth.is_dox).collect();
    let extractor = PiiExtractor::new();

    let mut group = c.benchmark_group("analysis");
    group.sample_size(10);
    group.bench_function("attack_tabulate", |b| {
        b.iter(|| attack_types::tabulate(&cth).len())
    });
    group.bench_function("thread_position_stats", |b| {
        let board: Vec<&Document> = cth
            .iter()
            .copied()
            .filter(|d| d.platform == Platform::Boards)
            .collect();
        b.iter(|| threads::position_stats(&board).n)
    });
    group.throughput(Throughput::Elements(doxes.len() as u64));
    group.bench_function("harm_risk_figure2", |b| {
        b.iter(|| harm_risk::figure2(&extractor, &doxes).0.total)
    });
    group.bench_function("repeated_dox_linking", |b| {
        b.iter(|| repeats::repeated_doxes(&extractor, &doxes).repeated)
    });
    group.finish();
}

/// DESIGN.md ablation 2: combined vs per-platform training data. The paper
/// found per-source models underperform; this bench reports the quality
/// difference as AUC printed to stderr alongside timing.
fn bench_training_scope_ablation(c: &mut Criterion) {
    let corpus = corpus();
    let combined: Vec<(&str, bool)> = corpus
        .documents
        .iter()
        .filter(|d| Task::Cth.applies_to(d.platform))
        .take(4_000)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    let single: Vec<(&str, bool)> = corpus
        .by_platform(Platform::Gab)
        .take(4_000)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();
    let eval: Vec<(&str, bool)> = corpus
        .by_platform(Platform::Boards)
        .take(2_000)
        .map(|d| (d.text.as_str(), d.truth.is_cth))
        .collect();

    let fc = || FeaturizerConfig {
        mode: FeatureMode::Word,
        hash_bits: 15,
        max_len: 128,
        ..Default::default()
    };
    let mut group = c.benchmark_group("training_scope_ablation");
    group.sample_size(10);
    for (name, data) in [("combined", &combined), ("gab_only", &single)] {
        group.bench_with_input(BenchmarkId::from_parameter(name), data, |b, data| {
            b.iter(|| {
                let clf = TextClassifier::train(
                    data.iter().copied(),
                    fc(),
                    TrainConfig {
                        epochs: 4,
                        ..Default::default()
                    },
                );
                let report = clf.evaluate(eval.iter().copied(), 0.5);
                report.auc.unwrap_or(0.5)
            })
        });
    }
    group.finish();
}

/// DESIGN.md ablation 4: the §5.5 precision-driven threshold search vs the
/// fixed 0.5 default.
fn bench_threshold_policy_ablation(c: &mut Criterion) {
    let corpus = corpus();
    // Synthetic scores with realistic noise.
    let mut rng = StdRng::seed_from_u64(1);
    use rand::Rng;
    let scores: Vec<(DocId, f32)> = corpus
        .documents
        .iter()
        .map(|d| {
            let base: f32 = if d.truth.is_dox { 0.82 } else { 0.25 };
            (d.id, (base + rng.gen_range(-0.3f32..0.3)).clamp(0.0, 1.0))
        })
        .collect();
    let expert = Annotator::expert("e");

    let mut group = c.benchmark_group("threshold_policy");
    group.sample_size(10);
    group.bench_function("searched", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            select_threshold(
                &corpus,
                Task::Dox,
                Platform::Pastes,
                &scores,
                &expert,
                ThresholdConfig::default(),
                1_000,
                &mut rng,
            )
            .true_positives
        })
    });
    group.bench_function("fixed_0.5", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            select_threshold(
                &corpus,
                Task::Dox,
                Platform::Pastes,
                &scores,
                &expert,
                ThresholdConfig {
                    candidates: [0.5; 6],
                    ..Default::default()
                },
                1_000,
                &mut rng,
            )
            .true_positives
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_analyses,
    bench_training_scope_ablation,
    bench_threshold_policy_ablation
);
criterion_main!(benches);
