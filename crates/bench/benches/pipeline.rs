//! Pipeline-stage benchmarks: bootstrap query, corpus scoring (serial vs
//! parallel), decile sampling, threshold selection, and the end-to-end run.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use incite_annotate::Annotator;
use incite_core::active_learning::decile_sample;
use incite_core::pipeline::score_corpus;
use incite_core::query::figure4_query;
use incite_core::threshold::{select_threshold, ThresholdConfig};
use incite_core::{run_pipeline, PipelineConfig, Task};
use incite_corpus::{generate, CorpusConfig, DocId, Document};
use incite_ml::{FeatureMode, FeaturizerConfig, TextClassifier, TrainConfig};
use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeSet;

fn bench_bootstrap_query(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig::tiny(3));
    let query = figure4_query();
    let boards: Vec<&Document> = corpus.by_platform(Platform::Boards).collect();
    let mut group = c.benchmark_group("bootstrap");
    group.throughput(Throughput::Elements(boards.len() as u64));
    group.bench_function("figure4_query", |b| {
        b.iter(|| boards.iter().filter(|d| query.matches(&d.text)).count())
    });
    group.finish();
}

fn bench_scoring(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig::tiny(3));
    let docs: Vec<&Document> = corpus.documents.iter().collect();
    let labeled: Vec<(&str, bool)> = docs
        .iter()
        .take(800)
        .map(|d| (d.text.as_str(), d.truth.is_dox))
        .collect();
    let clf = TextClassifier::train(
        labeled,
        FeaturizerConfig {
            mode: FeatureMode::Word,
            hash_bits: 15,
            ..Default::default()
        },
        TrainConfig {
            epochs: 4,
            ..Default::default()
        },
    );
    let mut group = c.benchmark_group("scoring");
    group.throughput(Throughput::Elements(docs.len() as u64));
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.bench_with_input(
            BenchmarkId::from_parameter(threads),
            &threads,
            |b, &threads| b.iter(|| score_corpus(&clf, &docs, threads).expect("scoring").len()),
        );
    }
    group.finish();
}

fn bench_sampling_and_threshold(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig::tiny(3));
    let scores: Vec<(DocId, f32)> = corpus
        .documents
        .iter()
        .enumerate()
        .map(|(i, d)| (d.id, (i % 1000) as f32 / 1000.0))
        .collect();

    let mut group = c.benchmark_group("pipeline_stages");
    group.bench_function("decile_sample", |b| {
        let labeled = BTreeSet::new();
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            decile_sample(&scores, 40, &labeled, &mut rng).len()
        })
    });
    group.sample_size(10);
    group.bench_function("select_threshold", |b| {
        let expert = Annotator::expert("e");
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(9);
            select_threshold(
                &corpus,
                Task::Dox,
                Platform::Pastes,
                &scores,
                &expert,
                ThresholdConfig::default(),
                500,
                &mut rng,
            )
            .true_positives
        })
    });
    group.finish();
}

fn bench_end_to_end(c: &mut Criterion) {
    let corpus = generate(&CorpusConfig::tiny(3));
    let mut group = c.benchmark_group("pipeline_end_to_end");
    group.sample_size(10);
    group.bench_function("dox_quick", |b| {
        b.iter(|| {
            run_pipeline(&corpus, Task::Dox, &PipelineConfig::quick(1))
                .expect("pipeline")
                .counts
                .true_positives
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_bootstrap_query,
    bench_scoring,
    bench_sampling_and_threshold,
    bench_end_to_end
);
criterion_main!(benches);
