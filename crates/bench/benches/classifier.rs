//! Classifier benchmarks and the DESIGN.md §5 model/feature ablations:
//! logistic regression vs naive Bayes, feature modes, and the Table 3 text
//! length hyperparameter.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use incite_corpus::{generate, CorpusConfig};
use incite_ml::{
    Dataset, FeatureMode, Featurizer, FeaturizerConfig, LogisticRegression, NaiveBayes,
    TextClassifier, TrainConfig,
};

fn labeled(n: usize) -> Vec<(String, bool)> {
    let corpus = generate(&CorpusConfig::tiny(5));
    corpus
        .documents
        .iter()
        .take(n)
        .map(|d| (d.text.clone(), d.truth.is_cth || d.truth.is_dox))
        .collect()
}

fn bench_featurize_modes(c: &mut Criterion) {
    let data = labeled(1_500);
    let texts: Vec<&str> = data.iter().map(|(t, _)| t.as_str()).collect();
    let mut group = c.benchmark_group("featurize_mode");
    group.throughput(Throughput::Elements(texts.len() as u64));
    group.sample_size(10);
    for mode in [FeatureMode::Word, FeatureMode::Subword, FeatureMode::Char] {
        let config = FeaturizerConfig {
            mode,
            vocab_size: 1024,
            ..Default::default()
        };
        let featurizer = Featurizer::fit(config, texts.iter().copied());
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{mode:?}")),
            &featurizer,
            |b, f| b.iter(|| texts.iter().map(|t| f.features(t).len()).sum::<usize>()),
        );
    }
    group.finish();
}

fn bench_text_length(c: &mut Criterion) {
    // Table 3 ablation: max text length 128 vs 512.
    let data = labeled(1_200);
    let mut group = c.benchmark_group("text_length");
    group.sample_size(10);
    for max_len in [128usize, 256, 512] {
        group.bench_with_input(
            BenchmarkId::from_parameter(max_len),
            &max_len,
            |b, &max_len| {
                b.iter(|| {
                    let clf = TextClassifier::train(
                        data.iter().map(|(t, l)| (t.as_str(), *l)),
                        FeaturizerConfig {
                            max_len,
                            mode: FeatureMode::Word,
                            hash_bits: 15,
                            ..Default::default()
                        },
                        TrainConfig {
                            epochs: 3,
                            ..Default::default()
                        },
                    );
                    clf.score("we need to report him to the platform") as f64
                })
            },
        );
    }
    group.finish();
}

fn bench_model_ablation(c: &mut Criterion) {
    // Logistic regression vs naive Bayes on identical features.
    let data = labeled(1_500);
    let config = FeaturizerConfig {
        mode: FeatureMode::Word,
        hash_bits: 15,
        ..Default::default()
    };
    let featurizer = Featurizer::fit(config, data.iter().map(|(t, _)| t.as_str()));
    let mut dataset = Dataset::new();
    for (t, l) in &data {
        dataset.push(featurizer.features(t), *l);
    }
    let dims = featurizer.dimensions();

    let mut group = c.benchmark_group("classifier_ablation");
    group.sample_size(10);
    group.bench_function("logreg_train", |b| {
        b.iter(|| {
            LogisticRegression::train(
                &dataset,
                dims,
                TrainConfig {
                    epochs: 5,
                    ..Default::default()
                },
            )
            .dimensions()
        })
    });
    group.bench_function("naive_bayes_train", |b| {
        b.iter(|| {
            let nb = NaiveBayes::train(&dataset, dims, 1.0);
            nb.predict(&dataset.examples[0].features)
        })
    });

    let lr = LogisticRegression::train(&dataset, dims, TrainConfig::default());
    let nb = NaiveBayes::train(&dataset, dims, 1.0);
    group.throughput(Throughput::Elements(dataset.len() as u64));
    group.bench_function("logreg_predict", |b| {
        b.iter(|| {
            dataset
                .examples
                .iter()
                .map(|e| lr.predict_proba(&e.features))
                .sum::<f32>()
        })
    });
    group.bench_function("naive_bayes_predict", |b| {
        b.iter(|| {
            dataset
                .examples
                .iter()
                .map(|e| nb.predict_proba(&e.features))
                .sum::<f32>()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_featurize_modes,
    bench_text_length,
    bench_model_ablation
);
criterion_main!(benches);
