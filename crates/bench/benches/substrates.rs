//! Substrate micro-benchmarks: the text stack, regex/PII extraction, and
//! corpus generation throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use incite_corpus::{generate, CorpusConfig};
use incite_pii::PiiExtractor;
use incite_regex::Regex;
use incite_textkit::{
    normalize, sample_spans, tokenize, FeatureHasher, SpanStrategy, SplitMix64, WordPieceEncoder,
    WordPieceTrainer,
};

fn sample_texts() -> Vec<String> {
    let corpus = generate(&CorpusConfig::tiny(1));
    corpus
        .documents
        .iter()
        .map(|d| d.text.clone())
        .take(2_000)
        .collect()
}

fn bench_text_stack(c: &mut Criterion) {
    let texts = sample_texts();
    let bytes: usize = texts.iter().map(|t| t.len()).sum();

    let mut group = c.benchmark_group("textkit");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("normalize", |b| {
        b.iter(|| texts.iter().map(|t| normalize(t).len()).sum::<usize>())
    });
    group.bench_function("tokenize", |b| {
        b.iter(|| texts.iter().map(|t| tokenize(t).len()).sum::<usize>())
    });
    group.finish();

    // WordPiece: train once, bench encoding.
    let words: Vec<String> = texts
        .iter()
        .flat_map(|t| t.split_whitespace().map(|w| w.to_lowercase()))
        .collect();
    let trainer = WordPieceTrainer::new(2048);
    let encoder = WordPieceEncoder::new(trainer.train(words.iter().map(|s| s.as_str())));
    let mut group = c.benchmark_group("wordpiece");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("encode_words", |b| {
        b.iter(|| {
            words
                .iter()
                .map(|w| encoder.encode_word(w).len())
                .sum::<usize>()
        })
    });
    group.finish();

    let hasher = FeatureHasher::new(18);
    let mut group = c.benchmark_group("feature_hash");
    group.throughput(Throughput::Elements(words.len() as u64));
    group.bench_function("hash_features", |b| {
        b.iter(|| {
            hasher
                .hash_features(words.iter().map(|s| s.as_str()), true)
                .len()
        })
    });
    group.finish();
}

fn bench_span_strategies(c: &mut Criterion) {
    let long_doc = "we need to report this whole situation to everyone involved ".repeat(200);
    let mut group = c.benchmark_group("span_sampling");
    for strategy in SpanStrategy::ablation_set() {
        group.bench_with_input(
            BenchmarkId::from_parameter(strategy.slug()),
            &strategy,
            |b, &strategy| {
                let mut rng = SplitMix64::new(7);
                b.iter(|| sample_spans(&long_doc, 512, 4, strategy, &mut rng).len())
            },
        );
    }
    group.finish();
}

fn bench_regex_and_pii(c: &mut Criterion) {
    let texts = sample_texts();
    let bytes: usize = texts.iter().map(|t| t.len()).sum();

    let email = Regex::new(r"\b[a-z0-9._%+-]+@[a-z0-9.-]+\.[a-z][a-z]+\b").unwrap();
    let mut group = c.benchmark_group("regex");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.bench_function("email_find_iter", |b| {
        b.iter(|| {
            texts
                .iter()
                .map(|t| email.find_iter(t).count())
                .sum::<usize>()
        })
    });
    group.finish();

    let extractor = PiiExtractor::new();
    let mut group = c.benchmark_group("pii");
    group.throughput(Throughput::Bytes(bytes as u64));
    group.sample_size(10);
    group.bench_function("extract_all_12", |b| {
        b.iter(|| {
            texts
                .iter()
                .map(|t| extractor.extract(t).len())
                .sum::<usize>()
        })
    });
    group.finish();
}

fn bench_corpus_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("corpus");
    group.sample_size(10);
    group.bench_function("generate_tiny", |b| {
        b.iter(|| generate(&CorpusConfig::tiny(9)).len())
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_text_stack,
    bench_span_strategies,
    bench_regex_and_pii,
    bench_corpus_generation
);
criterion_main!(benches);
