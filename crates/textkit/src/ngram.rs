//! Word and character n-gram extraction.
//!
//! The linear classifier substitutes distilBERT's learned representations
//! with hashed n-gram features (see DESIGN.md §2). Word n-grams capture
//! mobilizing phrases ("we need to", "mass report"); character n-grams give
//! subword robustness against the creative spellings common in harassment
//! communities.

/// Yields contiguous word n-grams joined with `' '`.
///
/// `n == 0` or a window longer than the token list yields nothing.
pub fn word_ngrams(tokens: &[String], n: usize) -> Vec<String> {
    if n == 0 || tokens.len() < n {
        return Vec::new();
    }
    tokens.windows(n).map(|w| w.join(" ")).collect()
}

/// Yields contiguous character n-grams of a string (over `char`s, not
/// bytes). Whitespace participates, which lets grams span word boundaries.
pub fn char_ngrams(text: &str, n: usize) -> Vec<String> {
    if n == 0 {
        return Vec::new();
    }
    let chars: Vec<char> = text.chars().collect();
    if chars.len() < n {
        return Vec::new();
    }
    chars.windows(n).map(|w| w.iter().collect()).collect()
}

/// Convenience: all word n-grams for n in `1..=max_n`, each prefixed with
/// its order (`"2|we need"`), so unigram and bigram features never collide
/// in the hashed space.
pub fn word_ngrams_upto(tokens: &[String], max_n: usize) -> Vec<String> {
    let mut out = Vec::new();
    for n in 1..=max_n {
        for gram in word_ngrams(tokens, n) {
            out.push(format!("{n}|{gram}"));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(words: &[&str]) -> Vec<String> {
        words.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn unigrams_are_tokens() {
        let t = toks(&["we", "need", "to"]);
        assert_eq!(word_ngrams(&t, 1), vec!["we", "need", "to"]);
    }

    #[test]
    fn bigrams_join_with_space() {
        let t = toks(&["mass", "report", "him"]);
        assert_eq!(word_ngrams(&t, 2), vec!["mass report", "report him"]);
    }

    #[test]
    fn window_longer_than_input_is_empty() {
        let t = toks(&["one"]);
        assert!(word_ngrams(&t, 2).is_empty());
        assert!(word_ngrams(&t, 0).is_empty());
    }

    #[test]
    fn char_ngrams_over_chars_not_bytes() {
        let grams = char_ngrams("héy", 2);
        assert_eq!(grams, vec!["hé", "éy"]);
    }

    #[test]
    fn char_ngrams_cross_word_boundaries() {
        let grams = char_ngrams("a b", 3);
        assert_eq!(grams, vec!["a b"]);
    }

    #[test]
    fn char_ngrams_empty_cases() {
        assert!(char_ngrams("", 3).is_empty());
        assert!(char_ngrams("ab", 3).is_empty());
        assert!(char_ngrams("ab", 0).is_empty());
    }

    #[test]
    fn upto_prefixes_orders() {
        let t = toks(&["we", "raid"]);
        let grams = word_ngrams_upto(&t, 2);
        assert_eq!(grams, vec!["1|we", "1|raid", "2|we raid"]);
    }
}
