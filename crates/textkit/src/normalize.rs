//! Text normalization.
//!
//! Platform documents arrive with mixed case, stray control characters and
//! irregular whitespace. Normalization happens before tokenization so that
//! the classifier, the bootstrap keyword queries (paper Figure 4 lowercases
//! with `LOWER(body)`), and the PII extractors see canonical text.

/// Lowercases, strips control characters (except `\n` which becomes a
/// space), and collapses runs of whitespace into single spaces. Leading and
/// trailing whitespace is removed.
pub fn normalize(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    let mut pending_space = false;
    for ch in text.chars() {
        // ASCII fast path: in that range White_Space ∪ Cc is exactly
        // 0x00..=0x20 plus DEL, and lowercasing is the single-byte fold —
        // the Unicode tables are only consulted for non-ASCII input.
        if ch.is_ascii() {
            let b = ch as u8;
            if b <= b' ' || b == 0x7f {
                if !out.is_empty() {
                    pending_space = true;
                }
                continue;
            }
            if pending_space {
                out.push(' ');
                pending_space = false;
            }
            out.push(b.to_ascii_lowercase() as char);
            continue;
        }
        if ch.is_whitespace() || ch.is_control() {
            if !out.is_empty() {
                pending_space = true;
            }
            continue;
        }
        if pending_space {
            out.push(' ');
            pending_space = false;
        }
        for lc in ch.to_lowercase() {
            out.push(lc);
        }
    }
    out
}

/// Lowercases without altering whitespace — used where byte offsets must be
/// preserved (PII extraction reports match spans against the original text).
pub fn lowercase_preserving_layout(text: &str) -> String {
    // `char::to_lowercase` can expand some characters (e.g. 'İ'); for
    // offset-preserving use we only fold characters whose lowercase form has
    // the same UTF-8 length, leaving the rest untouched.
    let mut out = String::with_capacity(text.len());
    for ch in text.chars() {
        let mut lower = ch.to_lowercase();
        let lc = lower.next().unwrap_or(ch);
        if lower.next().is_none() && lc.len_utf8() == ch.len_utf8() {
            out.push(lc);
        } else {
            out.push(ch);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lowercases_and_collapses() {
        assert_eq!(
            normalize("We  Need\tTo\n\nREPORT him"),
            "we need to report him"
        );
    }

    #[test]
    fn strips_control_characters() {
        assert_eq!(normalize("a\u{0}b\u{7}c"), "a b c");
    }

    #[test]
    fn trims_edges() {
        assert_eq!(normalize("  hello  "), "hello");
        assert_eq!(normalize(""), "");
        assert_eq!(normalize(" \t\n "), "");
    }

    #[test]
    fn unicode_lowercase() {
        assert_eq!(normalize("ÜBER Österreich"), "über österreich");
    }

    #[test]
    fn layout_preserving_keeps_length() {
        let input = "Call 555-0001 NOW\nplease";
        let out = lowercase_preserving_layout(input);
        assert_eq!(out.len(), input.len());
        assert_eq!(out, "call 555-0001 now\nplease");
    }

    #[test]
    fn layout_preserving_skips_expanding_chars() {
        // 'İ' lowercases to "i̇" (two chars); it must be left as-is.
        let input = "İstanbul";
        let out = lowercase_preserving_layout(input);
        assert_eq!(out.len(), input.len());
        assert!(out.starts_with('İ'));
    }
}
