//! A tiny deterministic PRNG (SplitMix64).
//!
//! Span sampling (§5.2 "random spanning without overlap") must be
//! reproducible from an explicit seed so that every experiment in
//! EXPERIMENTS.md regenerates byte-identically. SplitMix64 is small, fast,
//! passes BigCrush for this use, and avoids pulling `rand` into a leaf
//! substrate crate.

/// SplitMix64 pseudo-random number generator.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Equal seeds yield equal streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform integer in `[0, bound)`. Returns 0 when `bound == 0`.
    ///
    /// Uses Lemire's multiply-shift rejection method to avoid modulo bias.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        if bound == 0 {
            return 0;
        }
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform usize in `[lo, hi)`; `lo` when the range is empty.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        if hi <= lo {
            return lo;
        }
        lo + self.next_below((hi - lo) as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        for i in (1..slice.len()).rev() {
            let j = self.next_below(i as u64 + 1) as usize;
            slice.swap(i, j);
        }
    }

    /// Forks an independent generator (for parallel subtasks) by hashing the
    /// current state with a stream id.
    pub fn fork(&mut self, stream: u64) -> SplitMix64 {
        SplitMix64::new(self.next_u64() ^ stream.wrapping_mul(0x9e37_79b9_7f4a_7c15))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_equal_seeds() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn known_vector() {
        // Reference value from the SplitMix64 reference implementation
        // (seed 1234567).
        let mut rng = SplitMix64::new(1234567);
        assert_eq!(rng.next_u64(), 6_457_827_717_110_365_317);
        assert_eq!(rng.next_u64(), 3_203_168_211_198_807_973);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut rng = SplitMix64::new(7);
        for bound in [1u64, 2, 3, 10, 1000] {
            for _ in 0..200 {
                assert!(rng.next_below(bound) < bound);
            }
        }
        assert_eq!(rng.next_below(0), 0);
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut rng = SplitMix64::new(99);
        let mut counts = [0u32; 10];
        for _ in 0..10_000 {
            counts[rng.next_below(10) as usize] += 1;
        }
        for c in counts {
            assert!((800..1200).contains(&c), "bucket count {c} out of range");
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut rng = SplitMix64::new(5);
        for _ in 0..1000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SplitMix64::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move elements for this seed");
    }

    #[test]
    fn range_handles_empty() {
        let mut rng = SplitMix64::new(3);
        assert_eq!(rng.range(5, 5), 5);
        assert_eq!(rng.range(7, 3), 7);
        for _ in 0..100 {
            let x = rng.range(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn forks_are_independent() {
        let mut root = SplitMix64::new(42);
        let mut f1 = root.fork(1);
        let mut f2 = root.fork(2);
        let same = (0..64).filter(|_| f1.next_u64() == f2.next_u64()).count();
        assert_eq!(same, 0);
    }
}
