//! Long-document span sampling (§5.2).
//!
//! DistilBERT caps input at a fixed max sequence length, so the paper
//! reduces longer documents by sampling spans: "we employed a method of
//! random spanning without overlap … This method of dealing with text longer
//! than the max-length ensured that we had spans of text from all areas of
//! the input document." They also experimented with head+tail spans,
//! overlapping spans, and random-length spans, and found **random
//! non-overlapping spans** best. All four strategies are implemented here so
//! the ablation bench can reproduce that comparison.
//!
//! Spans are character-budgeted (the paper speaks of a "max-sequence length
//! of 512 characters") and snapped outward to UTF-8 boundaries.

use crate::rng::SplitMix64;
use serde::{Deserialize, Serialize};

/// A strategy for reducing a long document to spans within a length budget.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum SpanStrategy {
    /// Random spans with no overlap, covering diverse document areas — the
    /// paper's best performer and the pipeline default.
    RandomNonOverlapping,
    /// One span from the head and one from the tail of the document.
    HeadTail,
    /// Fixed-stride overlapping spans; `stride` is the fraction of the span
    /// length to advance (e.g. 0.5 = 50 % overlap).
    Overlapping { stride_permille: u16 },
    /// Random spans of random length in `[min_len, max_len]`.
    RandomLength { min_len: usize },
}

impl SpanStrategy {
    /// All strategies at representative parameters, for the ablation bench.
    pub fn ablation_set() -> Vec<SpanStrategy> {
        vec![
            SpanStrategy::RandomNonOverlapping,
            SpanStrategy::HeadTail,
            SpanStrategy::Overlapping {
                stride_permille: 500,
            },
            SpanStrategy::RandomLength { min_len: 32 },
        ]
    }

    /// Short identifier for reports.
    pub fn slug(self) -> &'static str {
        match self {
            SpanStrategy::RandomNonOverlapping => "random_no_overlap",
            SpanStrategy::HeadTail => "head_tail",
            SpanStrategy::Overlapping { .. } => "overlapping",
            SpanStrategy::RandomLength { .. } => "random_length",
        }
    }
}

/// Snaps a byte index down to the nearest char boundary.
fn floor_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i > 0 && !s.is_char_boundary(i) {
        i -= 1;
    }
    i
}

/// Snaps a byte index up to the nearest char boundary.
fn ceil_char_boundary(s: &str, mut i: usize) -> usize {
    i = i.min(s.len());
    while i < s.len() && !s.is_char_boundary(i) {
        i += 1;
    }
    i
}

fn slice_span(text: &str, start: usize, end: usize) -> &str {
    let s = ceil_char_boundary(text, start.min(end));
    let e = floor_char_boundary(text, end.max(s));
    &text[s..e.max(s)]
}

/// Samples spans of at most `max_len` bytes from `text`.
///
/// * Documents within budget are returned whole, regardless of strategy.
/// * `max_spans` caps the number of sampled spans (the memory/throughput
///   trade-off the paper discusses).
/// * Sampling is deterministic given the RNG state.
pub fn sample_spans<'a>(
    text: &'a str,
    max_len: usize,
    max_spans: usize,
    strategy: SpanStrategy,
    rng: &mut SplitMix64,
) -> Vec<&'a str> {
    if max_len == 0 || max_spans == 0 {
        return Vec::new();
    }
    if text.len() <= max_len {
        return vec![text];
    }
    match strategy {
        SpanStrategy::RandomNonOverlapping => {
            // Partition the document into consecutive max_len windows, then
            // sample up to max_spans of them without replacement.
            let n_windows = text.len().div_ceil(max_len);
            let mut indices: Vec<usize> = (0..n_windows).collect();
            rng.shuffle(&mut indices);
            let mut chosen: Vec<usize> = indices.into_iter().take(max_spans).collect();
            chosen.sort_unstable();
            chosen
                .into_iter()
                .map(|w| slice_span(text, w * max_len, (w + 1) * max_len))
                .filter(|s| !s.is_empty())
                .collect()
        }
        SpanStrategy::HeadTail => {
            let head = slice_span(text, 0, max_len);
            let tail = slice_span(text, text.len().saturating_sub(max_len), text.len());
            if max_spans == 1 {
                vec![head]
            } else {
                vec![head, tail]
            }
        }
        SpanStrategy::Overlapping { stride_permille } => {
            let stride = ((max_len as u64 * stride_permille as u64) / 1000).max(1) as usize;
            let mut spans = Vec::new();
            let mut start = 0;
            while start < text.len() && spans.len() < max_spans {
                let span = slice_span(text, start, start + max_len);
                if span.is_empty() {
                    break;
                }
                spans.push(span);
                start += stride;
            }
            spans
        }
        SpanStrategy::RandomLength { min_len } => {
            let min_len = min_len.clamp(1, max_len);
            let mut spans = Vec::new();
            for _ in 0..max_spans {
                let len = rng.range(min_len, max_len + 1);
                let start = rng.range(0, text.len().saturating_sub(len).max(1));
                let span = slice_span(text, start, start + len);
                if !span.is_empty() {
                    spans.push(span);
                }
            }
            spans
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SplitMix64 {
        SplitMix64::new(42)
    }

    #[test]
    fn short_documents_pass_through() {
        let mut r = rng();
        for strat in SpanStrategy::ablation_set() {
            let spans = sample_spans("short text", 512, 4, strat, &mut r);
            assert_eq!(spans, vec!["short text"], "{strat:?}");
        }
    }

    #[test]
    fn random_non_overlapping_spans_do_not_overlap() {
        let text: String = (0..2000)
            .map(|i| char::from(b'a' + (i % 26) as u8))
            .collect();
        let mut r = rng();
        let spans = sample_spans(&text, 100, 5, SpanStrategy::RandomNonOverlapping, &mut r);
        assert!(spans.len() <= 5);
        // Spans are slices of the input: recover offsets and check disjoint.
        let mut ranges: Vec<(usize, usize)> = spans
            .iter()
            .map(|s| {
                let off = s.as_ptr() as usize - text.as_ptr() as usize;
                (off, off + s.len())
            })
            .collect();
        ranges.sort_unstable();
        for pair in ranges.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "spans overlap: {ranges:?}");
        }
    }

    #[test]
    fn random_spans_cover_diverse_areas() {
        // With enough spans requested, both halves of the document should be
        // represented (the paper's motivation for the strategy).
        let text = "a".repeat(10_000);
        let mut r = rng();
        let spans = sample_spans(&text, 500, 8, SpanStrategy::RandomNonOverlapping, &mut r);
        let offsets: Vec<usize> = spans
            .iter()
            .map(|s| s.as_ptr() as usize - text.as_ptr() as usize)
            .collect();
        assert!(offsets.iter().any(|&o| o < 5_000));
        assert!(offsets.iter().any(|&o| o >= 5_000));
    }

    #[test]
    fn head_tail_takes_both_ends() {
        let text: String = (0..1000)
            .map(|i| char::from(b'a' + (i % 26) as u8))
            .collect();
        let mut r = rng();
        let spans = sample_spans(&text, 100, 2, SpanStrategy::HeadTail, &mut r);
        assert_eq!(spans.len(), 2);
        assert!(text.starts_with(spans[0]));
        assert!(text.ends_with(spans[1]));
    }

    #[test]
    fn overlapping_spans_respect_stride() {
        let text = "x".repeat(1000);
        let mut r = rng();
        let spans = sample_spans(
            &text,
            100,
            100,
            SpanStrategy::Overlapping {
                stride_permille: 500,
            },
            &mut r,
        );
        // stride 50 bytes over 1000 bytes → 19 full-ish spans + remainder.
        assert!(spans.len() >= 18, "{}", spans.len());
        assert!(spans.iter().all(|s| s.len() <= 100));
    }

    #[test]
    fn random_length_spans_within_bounds() {
        let text = "y".repeat(5000);
        let mut r = rng();
        let spans = sample_spans(
            &text,
            200,
            10,
            SpanStrategy::RandomLength { min_len: 50 },
            &mut r,
        );
        assert_eq!(spans.len(), 10);
        for s in spans {
            assert!(s.len() >= 40 && s.len() <= 200, "span len {}", s.len());
        }
    }

    #[test]
    fn utf8_boundaries_are_respected() {
        let text = "héllo wörld ".repeat(200); // multibyte chars throughout
        let mut r = rng();
        for strat in SpanStrategy::ablation_set() {
            // Would panic on a bad boundary; also validate spans are valid UTF-8 slices.
            let spans = sample_spans(&text, 37, 6, strat, &mut r);
            for s in spans {
                assert!(s.len() <= 40); // 37 rounded down may shrink, never grow past budget+char
            }
        }
    }

    #[test]
    fn zero_budgets_yield_nothing() {
        let mut r = rng();
        assert!(sample_spans("abc", 0, 4, SpanStrategy::RandomNonOverlapping, &mut r).is_empty());
        assert!(sample_spans("abc", 4, 0, SpanStrategy::RandomNonOverlapping, &mut r).is_empty());
    }

    #[test]
    fn deterministic_given_seed() {
        let text = "z".repeat(3000);
        let mut r1 = SplitMix64::new(7);
        let mut r2 = SplitMix64::new(7);
        let s1 = sample_spans(&text, 100, 5, SpanStrategy::RandomNonOverlapping, &mut r1);
        let s2 = sample_spans(&text, 100, 5, SpanStrategy::RandomNonOverlapping, &mut r2);
        let o1: Vec<usize> = s1
            .iter()
            .map(|s| s.as_ptr() as usize - text.as_ptr() as usize)
            .collect();
        let o2: Vec<usize> = s2
            .iter()
            .map(|s| s.as_ptr() as usize - text.as_ptr() as usize)
            .collect();
        assert_eq!(o1, o2);
    }
}
