//! Feature hashing ("the hashing trick").
//!
//! Maps arbitrary string features into a fixed-dimensional sparse vector
//! space without a dictionary, which keeps the classifier's memory footprint
//! constant over a half-billion-document corpus — the same engineering
//! pressure (§5.2: "models with a small memory footprint that can process
//! large amounts of data") that pushed the paper to distilBERT.
//!
//! Uses FNV-1a for the index hash and a second independent hash bit for the
//! sign, which debiases collisions (Weinberger et al., 2009).

/// A hasher mapping string features into indices `[0, 2^bits)` with ±1 signs.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct FeatureHasher {
    bits: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Seed for the independent sign hash (Weinberger et al., 2009).
const SIGN_SEED: u64 = 0x5bd1_e995;

/// Seeded FNV-1a over raw bytes. Public because a 64-bit digest is the
/// workspace's standard content-free stand-in for text in diagnostics
/// (a registered sanitizer in the incite-lint taint model).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = FNV_OFFSET ^ seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

/// The paired index/sign FNV-1a states of one feature, fed byte chunks
/// incrementally. FNV-1a folds one byte at a time, so hashing a feature
/// from chunks (`"2|"`, `"mass"`, `" "`, `"flag"`) is bit-identical to
/// hashing the concatenated string — that equivalence is what lets the
/// rolling n-gram path skip materializing gram `String`s entirely.
#[derive(Debug, Clone, Copy)]
pub struct RollingSlot {
    index_state: u64,
    sign_state: u64,
}

impl RollingSlot {
    /// Starts both states and absorbs a feature prefix (e.g. `b"1|"`).
    #[inline]
    pub fn with_prefix(prefix: &[u8]) -> Self {
        let mut slot = RollingSlot {
            index_state: FNV_OFFSET,
            sign_state: FNV_OFFSET ^ SIGN_SEED,
        };
        slot.update(prefix);
        slot
    }

    /// Absorbs more feature bytes into both states in one fused pass.
    #[inline]
    pub fn update(&mut self, bytes: &[u8]) {
        let mut hi = self.index_state;
        let mut hs = self.sign_state;
        for &b in bytes {
            hi = (hi ^ b as u64).wrapping_mul(FNV_PRIME);
            hs = (hs ^ b as u64).wrapping_mul(FNV_PRIME);
        }
        self.index_state = hi;
        self.sign_state = hs;
    }
}

impl FeatureHasher {
    /// Creates a hasher with `2^bits` output dimensions. `bits` is clamped
    /// to `[1, 30]`.
    pub fn new(bits: u32) -> Self {
        FeatureHasher {
            bits: bits.clamp(1, 30),
        }
    }

    /// Output dimensionality.
    pub fn dimensions(&self) -> usize {
        1usize << self.bits
    }

    /// Hashes one feature to `(index, sign)` with `sign ∈ {+1.0, -1.0}`.
    pub fn slot(&self, feature: &str) -> (u32, f32) {
        let h = fnv1a(feature.as_bytes(), 0);
        let index = (h & ((1u64 << self.bits) - 1)) as u32;
        let sign_bit = fnv1a(feature.as_bytes(), 0x5bd1_e995) & 1;
        let sign = if sign_bit == 0 { 1.0 } else { -1.0 };
        (index, sign)
    }

    /// Finishes a rolling feature: `(index, sign)` with `sign ∈ {+1.0, -1.0}`,
    /// identical to `slot` over the concatenated feature string.
    #[inline]
    pub fn finish(&self, slot: RollingSlot) -> (u32, f32) {
        let index = (slot.index_state & ((1u64 << self.bits) - 1)) as u32;
        let sign = if slot.sign_state & 1 == 0 { 1.0 } else { -1.0 };
        (index, sign)
    }

    /// Hashes a bag of features into a sparse vector: sorted unique indices
    /// with summed signed counts, L2-normalized if requested.
    pub fn hash_features<'a, I>(&self, features: I, l2_normalize: bool) -> Vec<(u32, f32)>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let pairs: Vec<(u32, f32)> = features.into_iter().map(|f| self.slot(f)).collect();
        self.finalize_hashed(pairs, l2_normalize)
    }

    /// Hashes order-prefixed word-style unigrams (`"1|{u}"`) and bigrams
    /// (`"2|{a} {b}"`) straight from unit byte slices into `pairs` — zero
    /// intermediate `String`s. Byte-identical to formatting each gram and
    /// calling [`FeatureHasher::slot`], because FNV-1a is byte-sequential.
    pub fn hash_ngrams_rolling(&self, units: &[&[u8]], pairs: &mut Vec<(u32, f32)>) {
        let unigram_prefix = RollingSlot::with_prefix(b"1|");
        let bigram_prefix = RollingSlot::with_prefix(b"2|");
        pairs.reserve(units.len().saturating_mul(2));
        for unit in units {
            let mut slot = unigram_prefix;
            slot.update(unit);
            pairs.push(self.finish(slot));
        }
        for window in units.windows(2) {
            let mut slot = bigram_prefix;
            slot.update(window[0]);
            slot.update(b" ");
            slot.update(window[1]);
            pairs.push(self.finish(slot));
        }
    }

    /// Hashes order-prefixed character n-grams (`"c{n}|{gram}"`) for every
    /// `n` in `min_n..=max_n` straight from the span's UTF-8 bytes: each
    /// window of `n` consecutive chars is a contiguous byte slice, so no
    /// gram is ever materialized. Byte-identical to formatting each gram
    /// and calling [`FeatureHasher::slot`].
    pub fn hash_char_ngrams_rolling(
        &self,
        span: &str,
        min_n: usize,
        max_n: usize,
        pairs: &mut Vec<(u32, f32)>,
    ) {
        debug_assert!((1..=9).contains(&min_n) && min_n <= max_n && max_n <= 9);
        // Char-start byte offsets plus the end sentinel: window i of order n
        // is span[starts[i]..starts[i + n]].
        let mut starts: Vec<usize> = span.char_indices().map(|(i, _)| i).collect();
        starts.push(span.len());
        for n in min_n..=max_n {
            if starts.len() <= n {
                break;
            }
            let prefix = RollingSlot::with_prefix(&[b'c', b'0' + n as u8, b'|']);
            for window in starts.windows(n + 1) {
                let mut slot = prefix;
                slot.update(&span.as_bytes()[window[0]..window[n]]);
                pairs.push(self.finish(slot));
            }
        }
    }

    /// Shared tail of every hashing path: sort by index, merge duplicates by
    /// summing signed counts, drop exact zeros, optionally L2-normalize.
    pub fn finalize_hashed(
        &self,
        mut pairs: Vec<(u32, f32)>,
        l2_normalize: bool,
    ) -> Vec<(u32, f32)> {
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut out: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match out.last_mut() {
                Some((li, lv)) if *li == i => *lv += v,
                _ => out.push((i, v)),
            }
        }
        out.retain(|(_, v)| *v != 0.0);
        if l2_normalize {
            let norm: f32 = out.iter().map(|(_, v)| v * v).sum::<f32>().sqrt();
            if norm > 0.0 {
                for (_, v) in &mut out {
                    *v /= norm;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_within_dimensions() {
        let h = FeatureHasher::new(10);
        assert_eq!(h.dimensions(), 1024);
        for f in ["we need to", "raid", "dox", "報告"] {
            let (idx, sign) = h.slot(f);
            assert!((idx as usize) < h.dimensions());
            assert!(sign == 1.0 || sign == -1.0);
        }
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = FeatureHasher::new(16);
        assert_eq!(h.slot("mass flag"), h.slot("mass flag"));
    }

    #[test]
    fn duplicate_features_accumulate() {
        let h = FeatureHasher::new(16);
        let v = h.hash_features(["raid", "raid", "raid"], false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1.abs(), 3.0);
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let h = FeatureHasher::new(8);
        let feats: Vec<String> = (0..500).map(|i| format!("f{i}")).collect();
        let v = h.hash_features(feats.iter().map(|s| s.as_str()), false);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn l2_normalization() {
        let h = FeatureHasher::new(16);
        let v = h.hash_features(["a", "b", "c", "d"], true);
        let norm: f32 = v.iter().map(|(_, x)| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_input_is_empty_vector() {
        let h = FeatureHasher::new(16);
        assert!(h.hash_features(std::iter::empty(), true).is_empty());
    }

    #[test]
    fn signs_split_roughly_evenly() {
        let h = FeatureHasher::new(20);
        let pos = (0..2000)
            .map(|i| format!("feature-{i}"))
            .filter(|f| h.slot(f).1 > 0.0)
            .count();
        assert!((800..1200).contains(&pos), "positive signs: {pos}");
    }

    #[test]
    fn bits_clamped() {
        assert_eq!(FeatureHasher::new(0).dimensions(), 2);
        assert_eq!(FeatureHasher::new(99).dimensions(), 1 << 30);
    }

    #[test]
    fn rolling_slot_matches_whole_string_slot() {
        let h = FeatureHasher::new(18);
        for feature in ["1|raid", "2|mass flag", "c3|öyz", "1|", "2| "] {
            let mut slot = RollingSlot::with_prefix(&feature.as_bytes()[..2]);
            slot.update(&feature.as_bytes()[2..]);
            assert_eq!(h.finish(slot), h.slot(feature), "feature: {feature}");
        }
    }

    #[test]
    fn rolling_slot_chunking_is_irrelevant() {
        let h = FeatureHasher::new(16);
        let mut chunked = RollingSlot::with_prefix(b"2|");
        chunked.update(b"mass");
        chunked.update(b" ");
        chunked.update(b"flag");
        let mut whole = RollingSlot::with_prefix(b"2|mass flag");
        whole.update(b"");
        assert_eq!(h.finish(chunked), h.finish(whole));
        assert_eq!(h.finish(chunked), h.slot("2|mass flag"));
    }

    #[test]
    fn hash_ngrams_rolling_matches_legacy_strings() {
        let h = FeatureHasher::new(14);
        let units = ["we", "need", "to", "report", "him", "报告"];
        let mut grams: Vec<String> = units.iter().map(|u| format!("1|{u}")).collect();
        for w in units.windows(2) {
            grams.push(format!("2|{} {}", w[0], w[1]));
        }
        let legacy = h.hash_features(grams.iter().map(|s| s.as_str()), false);

        let unit_bytes: Vec<&[u8]> = units.iter().map(|u| u.as_bytes()).collect();
        let mut pairs = Vec::new();
        h.hash_ngrams_rolling(&unit_bytes, &mut pairs);
        assert_eq!(h.finalize_hashed(pairs, false), legacy);
    }

    #[test]
    fn hash_char_ngrams_rolling_matches_legacy_strings() {
        let h = FeatureHasher::new(14);
        let span = "mass fläg hér ac"; // multibyte chars exercise offsets
        let mut grams: Vec<String> = Vec::new();
        for n in 3..=5 {
            for g in crate::ngram::char_ngrams(span, n) {
                grams.push(format!("c{n}|{g}"));
            }
        }
        let legacy = h.hash_features(grams.iter().map(|s| s.as_str()), false);

        let mut pairs = Vec::new();
        h.hash_char_ngrams_rolling(span, 3, 5, &mut pairs);
        assert_eq!(h.finalize_hashed(pairs, false), legacy);
    }

    #[test]
    fn rolling_paths_handle_empty_and_short_inputs() {
        let h = FeatureHasher::new(12);
        let mut pairs = Vec::new();
        h.hash_ngrams_rolling(&[], &mut pairs);
        assert!(pairs.is_empty());
        h.hash_char_ngrams_rolling("ab", 3, 5, &mut pairs);
        assert!(pairs.is_empty());
        h.hash_ngrams_rolling(&[b"solo".as_slice()], &mut pairs);
        assert_eq!(pairs, vec![h.slot("1|solo")]);
    }
}
