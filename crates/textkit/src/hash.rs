//! Feature hashing ("the hashing trick").
//!
//! Maps arbitrary string features into a fixed-dimensional sparse vector
//! space without a dictionary, which keeps the classifier's memory footprint
//! constant over a half-billion-document corpus — the same engineering
//! pressure (§5.2: "models with a small memory footprint that can process
//! large amounts of data") that pushed the paper to distilBERT.
//!
//! Uses FNV-1a for the index hash and a second independent hash bit for the
//! sign, which debiases collisions (Weinberger et al., 2009).

/// A hasher mapping string features into indices `[0, 2^bits)` with ±1 signs.
#[derive(Debug, Clone, Copy, serde::Serialize, serde::Deserialize)]
pub struct FeatureHasher {
    bits: u32,
}

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x100_0000_01b3;

/// Seeded FNV-1a over raw bytes. Public because a 64-bit digest is the
/// workspace's standard content-free stand-in for text in diagnostics
/// (a registered sanitizer in the incite-lint taint model).
pub fn fnv1a(bytes: &[u8], seed: u64) -> u64 {
    let mut hash = FNV_OFFSET ^ seed;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

impl FeatureHasher {
    /// Creates a hasher with `2^bits` output dimensions. `bits` is clamped
    /// to `[1, 30]`.
    pub fn new(bits: u32) -> Self {
        FeatureHasher {
            bits: bits.clamp(1, 30),
        }
    }

    /// Output dimensionality.
    pub fn dimensions(&self) -> usize {
        1usize << self.bits
    }

    /// Hashes one feature to `(index, sign)` with `sign ∈ {+1.0, -1.0}`.
    pub fn slot(&self, feature: &str) -> (u32, f32) {
        let h = fnv1a(feature.as_bytes(), 0);
        let index = (h & ((1u64 << self.bits) - 1)) as u32;
        let sign_bit = fnv1a(feature.as_bytes(), 0x5bd1_e995) & 1;
        let sign = if sign_bit == 0 { 1.0 } else { -1.0 };
        (index, sign)
    }

    /// Hashes a bag of features into a sparse vector: sorted unique indices
    /// with summed signed counts, L2-normalized if requested.
    pub fn hash_features<'a, I>(&self, features: I, l2_normalize: bool) -> Vec<(u32, f32)>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut pairs: Vec<(u32, f32)> = features.into_iter().map(|f| self.slot(f)).collect();
        pairs.sort_unstable_by_key(|(i, _)| *i);
        let mut out: Vec<(u32, f32)> = Vec::with_capacity(pairs.len());
        for (i, v) in pairs {
            match out.last_mut() {
                Some((li, lv)) if *li == i => *lv += v,
                _ => out.push((i, v)),
            }
        }
        out.retain(|(_, v)| *v != 0.0);
        if l2_normalize {
            let norm: f32 = out.iter().map(|(_, v)| v * v).sum::<f32>().sqrt();
            if norm > 0.0 {
                for (_, v) in &mut out {
                    *v /= norm;
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn indices_within_dimensions() {
        let h = FeatureHasher::new(10);
        assert_eq!(h.dimensions(), 1024);
        for f in ["we need to", "raid", "dox", "報告"] {
            let (idx, sign) = h.slot(f);
            assert!((idx as usize) < h.dimensions());
            assert!(sign == 1.0 || sign == -1.0);
        }
    }

    #[test]
    fn hashing_is_deterministic() {
        let h = FeatureHasher::new(16);
        assert_eq!(h.slot("mass flag"), h.slot("mass flag"));
    }

    #[test]
    fn duplicate_features_accumulate() {
        let h = FeatureHasher::new(16);
        let v = h.hash_features(["raid", "raid", "raid"], false);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].1.abs(), 3.0);
    }

    #[test]
    fn output_is_sorted_and_unique() {
        let h = FeatureHasher::new(8);
        let feats: Vec<String> = (0..500).map(|i| format!("f{i}")).collect();
        let v = h.hash_features(feats.iter().map(|s| s.as_str()), false);
        for w in v.windows(2) {
            assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn l2_normalization() {
        let h = FeatureHasher::new(16);
        let v = h.hash_features(["a", "b", "c", "d"], true);
        let norm: f32 = v.iter().map(|(_, x)| x * x).sum::<f32>().sqrt();
        assert!((norm - 1.0).abs() < 1e-5);
    }

    #[test]
    fn empty_input_is_empty_vector() {
        let h = FeatureHasher::new(16);
        assert!(h.hash_features(std::iter::empty(), true).is_empty());
    }

    #[test]
    fn signs_split_roughly_evenly() {
        let h = FeatureHasher::new(20);
        let pos = (0..2000)
            .map(|i| format!("feature-{i}"))
            .filter(|f| h.slot(f).1 > 0.0)
            .count();
        assert!((800..1200).contains(&pos), "positive signs: {pos}");
    }

    #[test]
    fn bits_clamped() {
        assert_eq!(FeatureHasher::new(0).dimensions(), 2);
        assert_eq!(FeatureHasher::new(99).dimensions(), 1 << 30);
    }
}
