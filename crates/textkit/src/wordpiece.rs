//! Trainable WordPiece-style subword segmentation.
//!
//! DistilBERT's tokenizer segments each word into subword units from a fixed
//! vocabulary, using greedy longest-match-first with `##`-prefixed
//! continuation pieces and an `[UNK]` fallback. This module provides:
//!
//! * [`WordPieceTrainer`] — learns a vocabulary from a corpus by iterative
//!   pair merging (BPE-style frequency merges, which is the practical
//!   procedure behind WordPiece vocabularies);
//! * [`WordPieceVocab`] — the learned vocabulary;
//! * [`WordPieceEncoder`] — greedy longest-match encoding of words into
//!   subword ids.

use std::collections::HashMap;

/// Id of the unknown token, always present at index 0.
pub const UNK_ID: u32 = 0;
/// Text of the unknown token.
pub const UNK_TOKEN: &str = "[UNK]";

/// A learned subword vocabulary.
///
/// Pieces that begin a word are stored verbatim; continuation pieces carry
/// the `##` prefix, exactly as in BERT vocabularies.
///
/// Serializes as its piece list; the id index is rebuilt on load.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
#[serde(from = "Vec<String>", into = "Vec<String>")]
pub struct WordPieceVocab {
    pieces: Vec<String>,
    index: HashMap<String, u32>,
    /// Continuation pieces indexed by their text *without* the `##`
    /// prefix, so the encoder can look up a candidate as a plain slice of
    /// the word instead of assembling a `##`-prefixed string per probe.
    /// Derived from `index`; rebuilt on deserialize like it.
    continuations: HashMap<String, u32>,
}

impl WordPieceVocab {
    /// Builds a vocabulary from a piece list. `[UNK]` is inserted at id 0 if
    /// absent. Duplicate pieces keep their first id.
    pub fn from_pieces<I: IntoIterator<Item = String>>(iter: I) -> Self {
        let mut pieces = Vec::new();
        let mut index = HashMap::new();
        let mut continuations = HashMap::new();
        index.insert(UNK_TOKEN.to_string(), UNK_ID);
        pieces.push(UNK_TOKEN.to_string());
        for piece in iter {
            if piece == UNK_TOKEN {
                continue;
            }
            if !index.contains_key(&piece) {
                let id = pieces.len() as u32;
                if let Some(core) = piece.strip_prefix("##") {
                    continuations.insert(core.to_string(), id);
                }
                index.insert(piece.clone(), id);
                pieces.push(piece);
            }
        }
        WordPieceVocab {
            pieces,
            index,
            continuations,
        }
    }

    /// Number of pieces, including `[UNK]`.
    pub fn len(&self) -> usize {
        self.pieces.len()
    }

    /// Whether only `[UNK]` is present.
    pub fn is_empty(&self) -> bool {
        self.pieces.len() <= 1
    }

    /// Looks up a piece id.
    pub fn id(&self, piece: &str) -> Option<u32> {
        self.index.get(piece).copied()
    }

    /// Looks up a continuation piece by its text without the `##` prefix:
    /// `id_continuation("port") == id("##port")`, with no string assembly
    /// on the caller's side.
    pub fn id_continuation(&self, core: &str) -> Option<u32> {
        self.continuations.get(core).copied()
    }

    /// Looks up the piece text for an id.
    pub fn piece(&self, id: u32) -> Option<&str> {
        self.pieces.get(id as usize).map(|s| s.as_str())
    }

    /// Iterates all pieces.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.pieces.iter().map(|s| s.as_str())
    }
}

/// Learns a WordPiece vocabulary by frequency-based pair merging.
#[derive(Debug, Clone)]
pub struct WordPieceTrainer {
    /// Target vocabulary size (including `[UNK]` and single characters).
    pub vocab_size: usize,
    /// Minimum frequency for a merge to be performed.
    pub min_pair_frequency: usize,
}

impl Default for WordPieceTrainer {
    fn default() -> Self {
        WordPieceTrainer {
            vocab_size: 8_192,
            min_pair_frequency: 2,
        }
    }
}

impl WordPieceTrainer {
    /// Creates a trainer with a target vocabulary size.
    pub fn new(vocab_size: usize) -> Self {
        WordPieceTrainer {
            vocab_size,
            ..Default::default()
        }
    }

    /// Trains a vocabulary from an iterator of words (typically the output
    /// of [`crate::tokenize::word_tokens`] over the corpus).
    pub fn train<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> WordPieceVocab {
        // Count word frequencies.
        let mut word_freq: HashMap<&str, usize> = HashMap::new();
        for w in words {
            if !w.is_empty() {
                *word_freq.entry(w).or_default() += 1;
            }
        }

        // Represent each word as a sequence of pieces, starting from single
        // characters; continuations carry the ## prefix.
        let mut sequences: Vec<(Vec<String>, usize)> = word_freq
            .iter()
            .map(|(w, f)| {
                let pieces: Vec<String> = w
                    .chars()
                    .enumerate()
                    .map(|(i, c)| {
                        if i == 0 {
                            c.to_string()
                        } else {
                            format!("##{c}")
                        }
                    })
                    .collect();
                (pieces, *f)
            })
            .collect();
        // Deterministic iteration order regardless of HashMap hashing.
        sequences.sort_by(|a, b| a.0.cmp(&b.0));

        // Seed vocabulary: all single-character pieces.
        let mut vocab: Vec<String> = Vec::new();
        let mut seen: HashMap<String, ()> = HashMap::new();
        for (pieces, _) in &sequences {
            for p in pieces {
                if seen.insert(p.clone(), ()).is_none() {
                    vocab.push(p.clone());
                }
            }
        }
        vocab.sort();

        // Iteratively merge the most frequent adjacent pair.
        while vocab.len() + 1 < self.vocab_size {
            let mut pair_freq: HashMap<(String, String), usize> = HashMap::new();
            for (pieces, f) in &sequences {
                for pair in pieces.windows(2) {
                    *pair_freq
                        .entry((pair[0].clone(), pair[1].clone()))
                        .or_default() += f;
                }
            }
            // Deterministic best pair: max frequency, ties by lexicographic order.
            let best = pair_freq
                .into_iter()
                .filter(|(_, f)| *f >= self.min_pair_frequency)
                .max_by(|a, b| a.1.cmp(&b.1).then_with(|| b.0.cmp(&a.0)));
            let Some(((left, right), _)) = best else {
                break;
            };

            let merged = merge_pieces(&left, &right);
            for (pieces, _) in &mut sequences {
                let mut i = 0;
                while i + 1 < pieces.len() {
                    if pieces[i] == left && pieces[i + 1] == right {
                        pieces[i] = merged.clone();
                        pieces.remove(i + 1);
                    } else {
                        i += 1;
                    }
                }
            }
            vocab.push(merged);
        }

        WordPieceVocab::from_pieces(vocab)
    }
}

/// Concatenates two pieces, keeping the `##` continuation marker semantics:
/// `("re", "##port") -> "report"`, `("##re", "##port") -> "##report"`.
fn merge_pieces(left: &str, right: &str) -> String {
    let right_core = right.strip_prefix("##").unwrap_or(right);
    format!("{left}{right_core}")
}

impl From<Vec<String>> for WordPieceVocab {
    fn from(pieces: Vec<String>) -> Self {
        WordPieceVocab::from_pieces(pieces)
    }
}

impl From<WordPieceVocab> for Vec<String> {
    fn from(vocab: WordPieceVocab) -> Self {
        vocab.pieces
    }
}

/// Reusable working storage for [`WordPieceEncoder::encode_word_into`].
#[derive(Debug, Default)]
pub struct EncodeScratch {
    /// Byte offsets of the word's char starts, plus an end sentinel —
    /// every match candidate is `&word[offsets[i]..offsets[j]]`.
    offsets: Vec<usize>,
}

/// Greedy longest-match-first WordPiece encoder.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WordPieceEncoder {
    vocab: WordPieceVocab,
    /// Words longer than this many characters encode to `[UNK]` directly
    /// (matches BERT's `max_input_chars_per_word`, default 100).
    pub max_word_chars: usize,
}

impl WordPieceEncoder {
    /// Wraps a vocabulary in an encoder.
    pub fn new(vocab: WordPieceVocab) -> Self {
        WordPieceEncoder {
            vocab,
            max_word_chars: 100,
        }
    }

    /// Access to the underlying vocabulary.
    pub fn vocab(&self) -> &WordPieceVocab {
        &self.vocab
    }

    /// Encodes one word into piece ids. If any position fails to match, the
    /// whole word becomes a single `[UNK]` (BERT semantics).
    pub fn encode_word(&self, word: &str) -> Vec<u32> {
        let mut ids = Vec::new();
        let mut scratch = EncodeScratch::default();
        self.encode_word_into(word, &mut ids, &mut scratch);
        ids
    }

    /// `encode_word` appending into `ids`, with all working storage drawn
    /// from a caller-held [`EncodeScratch`] — the hot-loop variant used by
    /// the featurizer so a corpus sweep does zero per-word allocation.
    /// Candidates are probed as plain slices of `word` (continuations via
    /// [`WordPieceVocab::id_continuation`]), never assembled into strings.
    pub fn encode_word_into(&self, word: &str, ids: &mut Vec<u32>, scratch: &mut EncodeScratch) {
        let offsets = &mut scratch.offsets;
        offsets.clear();
        offsets.extend(word.char_indices().map(|(i, _)| i));
        if offsets.is_empty() {
            return;
        }
        offsets.push(word.len());
        let n = offsets.len() - 1;
        if n > self.max_word_chars {
            ids.push(UNK_ID);
            return;
        }
        let first_piece = ids.len();
        let mut start = 0;
        while start < n {
            let mut end = n;
            let mut matched = None;
            while end > start {
                let candidate = &word[offsets[start]..offsets[end]];
                let id = if start == 0 {
                    self.vocab.id(candidate)
                } else {
                    self.vocab.id_continuation(candidate)
                };
                if let Some(id) = id {
                    matched = Some((id, end));
                    break;
                }
                end -= 1;
            }
            match matched {
                Some((id, e)) => {
                    ids.push(id);
                    start = e;
                }
                None => {
                    ids.truncate(first_piece);
                    ids.push(UNK_ID);
                    return;
                }
            }
        }
    }

    /// Encodes a sequence of words into a flat piece-id stream.
    pub fn encode_words<'a, I: IntoIterator<Item = &'a str>>(&self, words: I) -> Vec<u32> {
        let mut out = Vec::new();
        for w in words {
            out.extend(self.encode_word(w));
        }
        out
    }

    /// Decodes piece ids back into a readable string (for diagnostics).
    pub fn decode(&self, ids: &[u32]) -> String {
        let mut out = String::new();
        for &id in ids {
            let piece = self.vocab.piece(id).unwrap_or(UNK_TOKEN);
            if let Some(cont) = piece.strip_prefix("##") {
                out.push_str(cont);
            } else {
                if !out.is_empty() {
                    out.push(' ');
                }
                out.push_str(piece);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn train_on(words: &[&str], vocab_size: usize) -> WordPieceEncoder {
        let trainer = WordPieceTrainer {
            vocab_size,
            min_pair_frequency: 2,
        };
        let repeated: Vec<&str> = words
            .iter()
            .cycle()
            .take(words.len() * 5)
            .copied()
            .collect();
        WordPieceEncoder::new(trainer.train(repeated))
    }

    #[test]
    fn merge_pieces_handles_continuations() {
        assert_eq!(merge_pieces("re", "##port"), "report");
        assert_eq!(merge_pieces("##re", "##port"), "##report");
        assert_eq!(merge_pieces("a", "b"), "ab");
    }

    #[test]
    fn vocab_always_contains_unk_at_zero() {
        let vocab = WordPieceVocab::from_pieces(vec!["a".into(), "b".into()]);
        assert_eq!(vocab.id(UNK_TOKEN), Some(UNK_ID));
        assert_eq!(vocab.piece(UNK_ID), Some(UNK_TOKEN));
        assert_eq!(vocab.len(), 3);
    }

    #[test]
    fn duplicate_pieces_are_ignored() {
        let vocab = WordPieceVocab::from_pieces(vec!["a".into(), "a".into(), "[UNK]".into()]);
        assert_eq!(vocab.len(), 2);
    }

    #[test]
    fn trained_vocab_encodes_training_words_without_unk() {
        let enc = train_on(&["report", "reporting", "reported"], 64);
        for w in ["report", "reporting", "reported"] {
            let ids = enc.encode_word(w);
            assert!(!ids.contains(&UNK_ID), "{w} should encode cleanly: {ids:?}");
            assert_eq!(enc.decode(&ids), w);
        }
    }

    #[test]
    fn shared_stems_get_merged() {
        let enc = train_on(&["report", "reporting", "reporter", "reported"], 128);
        // After enough merges, "report" should be a single piece.
        let ids = enc.encode_word("report");
        assert_eq!(ids.len(), 1, "expected single piece, got {:?}", ids);
    }

    #[test]
    fn unknown_characters_become_unk() {
        let enc = train_on(&["abc"], 16);
        assert_eq!(enc.encode_word("xyz"), vec![UNK_ID]);
    }

    #[test]
    fn novel_words_decompose_into_subwords() {
        let enc = train_on(&["report", "harass", "harassment"], 256);
        // "reportment" is unseen but decomposable from learned pieces.
        let ids = enc.encode_word("reportment");
        assert!(ids.len() >= 2);
        assert!(!ids.contains(&UNK_ID));
        assert_eq!(enc.decode(&ids), "reportment");
    }

    #[test]
    fn empty_word_encodes_to_nothing() {
        let enc = train_on(&["abc"], 16);
        assert!(enc.encode_word("").is_empty());
    }

    #[test]
    fn overlong_word_is_unk() {
        let enc = train_on(&["abc"], 16);
        let long: String = std::iter::repeat_n('a', 200).collect();
        assert_eq!(enc.encode_word(&long), vec![UNK_ID]);
    }

    #[test]
    fn encode_words_flattens() {
        let enc = train_on(&["mass", "flag"], 64);
        let ids = enc.encode_words(["mass", "flag"]);
        let a = enc.encode_word("mass");
        let b = enc.encode_word("flag");
        assert_eq!(ids.len(), a.len() + b.len());
    }

    #[test]
    fn training_is_deterministic() {
        let words = ["raid", "raiding", "report", "reporting", "dox", "doxing"];
        let t = WordPieceTrainer {
            vocab_size: 64,
            min_pair_frequency: 2,
        };
        let v1 = t.train(words.iter().copied());
        let v2 = t.train(words.iter().copied());
        let p1: Vec<_> = v1.iter().collect();
        let p2: Vec<_> = v2.iter().collect();
        assert_eq!(p1, p2);
    }

    #[test]
    fn vocab_size_is_respected() {
        let words = ["abcdefgh", "ijklmnop", "qrstuvwx"];
        let t = WordPieceTrainer {
            vocab_size: 30,
            min_pair_frequency: 1,
        };
        let v = t.train(words.iter().copied().cycle().take(30));
        assert!(v.len() <= 30, "vocab has {} pieces", v.len());
    }
}
