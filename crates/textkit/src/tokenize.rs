//! Punctuation-splitting tokenizer.
//!
//! The paper tokenizes documents "using both punctuation splitting and the
//! WordPiece sub-word segmentation algorithm" (§5.2). This module implements
//! the first stage: splitting on whitespace and breaking punctuation into
//! standalone tokens, in the style of BERT's `BasicTokenizer`. The output
//! feeds [`crate::wordpiece`].

use std::fmt;

/// The coarse class of a token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TokenKind {
    /// Alphabetic word (may include combining marks).
    Word,
    /// Digit run.
    Number,
    /// Single punctuation or symbol character.
    Punct,
}

/// A token with its byte span in the source text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token<'a> {
    /// The token text (a slice of the input).
    pub text: &'a str,
    /// Byte offset of the token start in the input.
    pub start: usize,
    /// Byte offset one past the token end.
    pub end: usize,
    /// Coarse token class.
    pub kind: TokenKind,
}

impl fmt::Display for Token<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.text)
    }
}

fn is_punct(ch: char) -> bool {
    ch.is_ascii_punctuation() || (!ch.is_alphanumeric() && !ch.is_whitespace())
}

/// Extends a `Word` run starting at byte `i`: ASCII letters advance in a
/// tight byte loop, non-ASCII alphanumerics (which can never be ASCII
/// digits) continue the run after a single char decode. Returns the byte
/// offset one past the run.
fn word_run_end(text: &str, mut i: usize) -> usize {
    let bytes = text.as_bytes();
    loop {
        while i < bytes.len() && bytes[i].is_ascii_alphabetic() {
            i += 1;
        }
        if i < bytes.len() && bytes[i] >= 0x80 {
            if let Some(ch) = text[i..].chars().next() {
                if ch.is_alphanumeric() {
                    i += ch.len_utf8();
                    continue;
                }
            }
        }
        break;
    }
    i
}

/// Tokenizes text into words, numbers and punctuation.
///
/// Rules:
/// * whitespace separates tokens and is discarded;
/// * every punctuation/symbol character becomes its own token;
/// * maximal runs of alphabetic characters become `Word` tokens;
/// * maximal runs of digits become `Number` tokens;
/// * a case change does not split (callers normalize first if desired).
pub fn tokenize(text: &str) -> Vec<Token<'_>> {
    let bytes = text.as_bytes();
    let mut tokens = Vec::new();
    let mut i = 0;
    while i < bytes.len() {
        let b = bytes[i];
        // ASCII fast path: classification in that range needs no Unicode
        // tables (whitespace is 0x09..=0x0D and space; everything that is
        // neither alphanumeric nor whitespace — punctuation, symbols,
        // control characters — is a one-byte Punct token).
        if b < 0x80 {
            if b == b' ' || (0x09..=0x0d).contains(&b) {
                i += 1;
                continue;
            }
            if b.is_ascii_alphabetic() {
                let start = i;
                let end = word_run_end(text, i + 1);
                tokens.push(Token {
                    text: &text[start..end],
                    start,
                    end,
                    kind: TokenKind::Word,
                });
                i = end;
                continue;
            }
            if b.is_ascii_digit() {
                let start = i;
                let mut end = i + 1;
                while end < bytes.len() && bytes[end].is_ascii_digit() {
                    end += 1;
                }
                tokens.push(Token {
                    text: &text[start..end],
                    start,
                    end,
                    kind: TokenKind::Number,
                });
                i = end;
                continue;
            }
            tokens.push(Token {
                text: &text[i..i + 1],
                start: i,
                end: i + 1,
                kind: TokenKind::Punct,
            });
            i += 1;
            continue;
        }
        let Some(ch) = text[i..].chars().next() else {
            break;
        };
        let start = i;
        if ch.is_whitespace() {
            i += ch.len_utf8();
            continue;
        }
        if is_punct(ch) {
            let end = start + ch.len_utf8();
            tokens.push(Token {
                text: &text[start..end],
                start,
                end,
                kind: TokenKind::Punct,
            });
            i = end;
            continue;
        }
        // Non-ASCII alphanumeric (never an ASCII digit): a Word run.
        let end = word_run_end(text, start + ch.len_utf8());
        tokens.push(Token {
            text: &text[start..end],
            start,
            end,
            kind: TokenKind::Word,
        });
        i = end;
    }
    tokens
}

/// Convenience: tokenized text as owned lowercase strings (words and numbers
/// only), the form consumed by n-gram featurizers.
pub fn word_tokens(text: &str) -> Vec<String> {
    tokenize(text)
        .into_iter()
        .filter(|t| t.kind != TokenKind::Punct)
        .map(|t| t.text.to_lowercase())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts<'a>(tokens: &[Token<'a>]) -> Vec<&'a str> {
        tokens.iter().map(|t| t.text).collect()
    }

    #[test]
    fn splits_punctuation() {
        let toks = tokenize("let's mass-report his twitter!");
        assert_eq!(
            texts(&toks),
            vec!["let", "'", "s", "mass", "-", "report", "his", "twitter", "!"]
        );
    }

    #[test]
    fn numbers_are_separate_tokens() {
        let toks = tokenize("call 555 0001 now");
        assert_eq!(texts(&toks), vec!["call", "555", "0001", "now"]);
        assert_eq!(toks[1].kind, TokenKind::Number);
        assert_eq!(toks[0].kind, TokenKind::Word);
    }

    #[test]
    fn mixed_alnum_splits_digits_from_letters() {
        let toks = tokenize("user123name");
        assert_eq!(texts(&toks), vec!["user", "123", "name"]);
    }

    #[test]
    fn spans_index_into_source() {
        let text = "dox: me@example.com";
        for tok in tokenize(text) {
            assert_eq!(&text[tok.start..tok.end], tok.text);
        }
    }

    #[test]
    fn empty_and_whitespace_only() {
        assert!(tokenize("").is_empty());
        assert!(tokenize("   \t\n").is_empty());
    }

    #[test]
    fn unicode_words_kept_whole() {
        let toks = tokenize("gehört über");
        assert_eq!(texts(&toks), vec!["gehört", "über"]);
    }

    #[test]
    fn symbols_are_punct() {
        let toks = tokenize("a@b #tag");
        assert_eq!(texts(&toks), vec!["a", "@", "b", "#", "tag"]);
        assert_eq!(toks[1].kind, TokenKind::Punct);
        assert_eq!(toks[3].kind, TokenKind::Punct);
    }

    #[test]
    fn word_tokens_drops_punct_and_lowercases() {
        assert_eq!(
            word_tokens("Report HIM, now!"),
            vec!["report", "him", "now"]
        );
    }
}
