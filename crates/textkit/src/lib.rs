//! # incite-textkit
//!
//! Text-processing substrate for the `incite` reproduction: everything the
//! classification pipeline needs to turn raw platform documents into sparse
//! feature vectors, mirroring §5.2 of the paper.
//!
//! * [`mod@normalize`] — lowercasing and whitespace canonicalization.
//! * [`mod@tokenize`] — punctuation-splitting tokenizer (the paper tokenizes
//!   "using both punctuation splitting and the WordPiece sub-word
//!   segmentation algorithm").
//! * [`wordpiece`] — a trainable WordPiece-style subword vocabulary
//!   (greedy longest-match encoding with `##` continuations and `[UNK]`).
//! * [`span`] — the long-document handling strategies of §5.2: random
//!   non-overlapping spans (the paper's winner), head+tail spans,
//!   overlapping spans, and random-length spans, all against a fixed
//!   max-sequence budget.
//! * [`ngram`] — word and character n-gram extraction.
//! * [`hash`] — feature hashing into a fixed-dimensional sparse space.
//! * [`rng`] — a tiny deterministic SplitMix64 PRNG so span sampling is
//!   reproducible without external dependencies.

pub mod hash;
pub mod ngram;
pub mod normalize;
pub mod rng;
pub mod span;
pub mod tokenize;
pub mod wordpiece;

pub use hash::{fnv1a, FeatureHasher, RollingSlot};
pub use ngram::{char_ngrams, word_ngrams};
pub use normalize::normalize;
pub use rng::SplitMix64;
pub use span::{sample_spans, SpanStrategy};
pub use tokenize::{tokenize, Token, TokenKind};
pub use wordpiece::{EncodeScratch, WordPieceEncoder, WordPieceTrainer, WordPieceVocab};
