//! Property tests on the text substrate.

use incite_textkit::{
    char_ngrams, normalize, sample_spans, tokenize, word_ngrams, FeatureHasher, SpanStrategy,
    SplitMix64, TokenKind, WordPieceEncoder, WordPieceTrainer,
};
use proptest::prelude::*;

proptest! {
    #[test]
    fn normalize_is_idempotent(text in ".{0,200}") {
        let once = normalize(&text);
        let twice = normalize(&once);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn normalize_output_has_no_doubled_spaces(text in ".{0,200}") {
        let out = normalize(&text);
        prop_assert!(!out.contains("  "));
        prop_assert!(!out.starts_with(' ') && !out.ends_with(' '));
        prop_assert!(out.chars().all(|c| !c.is_control()));
    }

    #[test]
    fn tokens_tile_their_spans(text in ".{0,200}") {
        let toks = tokenize(&text);
        for t in &toks {
            prop_assert_eq!(&text[t.start..t.end], t.text);
            prop_assert!(t.start < t.end);
        }
        // Tokens are ordered and non-overlapping.
        for w in toks.windows(2) {
            prop_assert!(w[0].end <= w[1].start);
        }
    }

    #[test]
    fn punct_tokens_are_single_chars(text in ".{0,200}") {
        for t in tokenize(&text) {
            if t.kind == TokenKind::Punct {
                prop_assert_eq!(t.text.chars().count(), 1);
            }
        }
    }

    #[test]
    fn span_sampling_respects_budgets(
        text in ".{0,2000}",
        max_len in 1usize..600,
        max_spans in 1usize..8,
        seed in any::<u64>(),
    ) {
        let mut rng = SplitMix64::new(seed);
        for strategy in SpanStrategy::ablation_set() {
            let spans = sample_spans(&text, max_len, max_spans, strategy, &mut rng);
            if text.len() <= max_len {
                prop_assert_eq!(spans.len(), 1);
                continue;
            }
            prop_assert!(spans.len() <= max_spans.max(2), "{strategy:?}");
            for s in &spans {
                // Snapping to char boundaries can only shrink spans.
                prop_assert!(s.len() <= max_len + 4, "{strategy:?}: span {}", s.len());
            }
        }
    }

    #[test]
    fn wordpiece_roundtrips_trained_words(words in prop::collection::vec("[a-z]{1,10}", 1..20)) {
        let trainer = WordPieceTrainer { vocab_size: 512, min_pair_frequency: 1 };
        let refs: Vec<&str> = words.iter().map(|s| s.as_str()).collect();
        let enc = WordPieceEncoder::new(trainer.train(refs.iter().copied()));
        for w in &refs {
            let ids = enc.encode_word(w);
            prop_assert_eq!(enc.decode(&ids), *w, "word {:?}", w);
        }
    }

    #[test]
    fn hashing_is_bounded_and_deterministic(
        features in prop::collection::vec(".{0,20}", 0..50),
        bits in 4u32..20,
    ) {
        let h = FeatureHasher::new(bits);
        let refs: Vec<&str> = features.iter().map(|s| s.as_str()).collect();
        let v1 = h.hash_features(refs.iter().copied(), true);
        let v2 = h.hash_features(refs.iter().copied(), true);
        prop_assert_eq!(&v1, &v2);
        for (i, _) in &v1 {
            prop_assert!((*i as usize) < h.dimensions());
        }
        // Sorted unique indices.
        for w in v1.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn ngram_counts_are_exact(tokens in prop::collection::vec("[a-z]{1,6}", 0..20), n in 1usize..4) {
        let grams = word_ngrams(&tokens, n);
        let expected = if tokens.len() >= n { tokens.len() - n + 1 } else { 0 };
        prop_assert_eq!(grams.len(), expected);
    }

    #[test]
    fn char_ngrams_preserve_length(text in ".{0,50}", n in 1usize..5) {
        for g in char_ngrams(&text, n) {
            prop_assert_eq!(g.chars().count(), n);
        }
    }

    #[test]
    fn splitmix_range_is_in_bounds(seed in any::<u64>(), lo in 0usize..100, span in 0usize..100) {
        let mut rng = SplitMix64::new(seed);
        let hi = lo + span;
        let x = rng.range(lo, hi);
        if span == 0 {
            prop_assert_eq!(x, lo);
        } else {
            prop_assert!((lo..hi).contains(&x));
        }
    }
}
