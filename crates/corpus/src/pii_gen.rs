//! Synthetic-PII factory.
//!
//! Every identifier this module emits is structurally valid enough to
//! exercise the §5.6 extractors but **cannot belong to a real person**:
//!
//! * phone numbers use the reserved 555-01XX fictional exchange;
//! * SSNs use the invalid 000 area number;
//! * card numbers use documented test IINs (and do pass Luhn, as real
//!   extractors check it);
//! * addresses combine fictional street names with out-of-range house
//!   numbers; emails live under `example.com`/`example.net` (RFC 2606).

use incite_taxonomy::PiiKind;
use rand::rngs::StdRng;
use rand::Rng;

const FIRST_NAMES: &[&str] = &[
    "alex", "jordan", "casey", "riley", "morgan", "avery", "quinn", "dakota", "reese", "emerson",
    "rowan", "sage", "tatum", "finley", "skyler", "harper", "ellis", "marlow",
];

const LAST_NAMES: &[&str] = &[
    "harrington",
    "vexley",
    "morrowind",
    "ashcombe",
    "delacroix",
    "fennimore",
    "graywell",
    "holloway",
    "ironwood",
    "juniper",
    "kestrel",
    "lockridge",
    "mervane",
    "northgate",
    "osmond",
    "pellworth",
    "quillfeather",
    "ravenscroft",
];

const STREETS: &[&str] = &[
    "Maplewood Ave",
    "Hollow Creek Rd",
    "Birchfield Ln",
    "Ember Hollow Dr",
    "Quarry Gate St",
    "Fox Run Blvd",
    "Willow Bend Ct",
    "Stonebridge Way",
    "Cinder Path Rd",
    "Larkspur Ave",
];

const CITIES: &[&str] = &[
    "Springfield",
    "Rivertown",
    "Lakeside",
    "Fairview",
    "Cedar Falls",
    "Milltown",
    "Brookhaven",
    "Ashford",
    "Graniteville",
    "Northfield",
];

const STATES: &[&str] = &["NY", "CA", "TX", "OH", "WA", "IL", "FL", "PA", "MI", "GA"];

/// Test-only card IIN prefixes (issuer, prefix, length).
const CARD_PREFIXES: &[(&str, &str, usize)] = &[
    ("visa", "4111", 16),
    ("mastercard", "5555", 16),
    ("amex", "3782", 15),
    ("discover", "6011", 16),
];

/// A generated synthetic identity with all PII fields.
#[derive(Debug, Clone)]
pub struct Identity {
    pub first_name: String,
    pub last_name: String,
    pub address: String,
    pub phone: String,
    pub ssn: String,
    pub email: String,
    pub card: String,
    pub facebook: String,
    pub instagram: String,
    pub twitter: String,
    pub youtube: String,
}

impl Identity {
    /// The identity's handle base (used to link repeated doxes).
    pub fn handle(&self) -> String {
        format!("{}_{}", self.first_name, self.last_name)
    }

    /// The PII string for a kind, in the format the extractors expect.
    pub fn pii_text(&self, kind: PiiKind, variant: usize) -> String {
        match kind {
            PiiKind::Address => self.address.clone(),
            PiiKind::CreditCard => self.card.clone(),
            PiiKind::Email => self.email.clone(),
            PiiKind::Phone => self.phone.clone(),
            PiiKind::Ssn => self.ssn.clone(),
            PiiKind::Facebook => {
                if variant.is_multiple_of(2) {
                    format!("https://facebook.com/{}", self.facebook)
                } else {
                    format!("fb: {}", self.facebook)
                }
            }
            PiiKind::Instagram => {
                if variant.is_multiple_of(2) {
                    format!("https://instagram.com/{}", self.instagram)
                } else {
                    format!("instagram: {}", self.instagram)
                }
            }
            PiiKind::Twitter => {
                if variant.is_multiple_of(2) {
                    format!("https://twitter.com/{}", self.twitter)
                } else {
                    format!("twitter: @{}", self.twitter)
                }
            }
            PiiKind::YouTube => {
                if variant.is_multiple_of(2) {
                    format!("https://youtube.com/channel/UC{}", self.youtube)
                } else {
                    format!("youtube: {}", self.youtube)
                }
            }
        }
    }
}

/// Computes the Luhn check digit for a digit string.
pub fn luhn_check_digit(digits: &str) -> u8 {
    let mut sum = 0u32;
    // Rightmost payload digit gets doubled (check digit will sit after it).
    for (i, ch) in digits.chars().rev().enumerate() {
        let mut d = ch.to_digit(10).unwrap_or(0);
        if i % 2 == 0 {
            d *= 2;
            if d > 9 {
                d -= 9;
            }
        }
        sum += d;
    }
    ((10 - (sum % 10)) % 10) as u8
}

/// Validates a full number against Luhn.
pub fn luhn_valid(number: &str) -> bool {
    let digits: String = number.chars().filter(|c| c.is_ascii_digit()).collect();
    if digits.len() < 2 {
        return false;
    }
    let (payload, check) = digits.split_at(digits.len() - 1);
    luhn_check_digit(payload) == check.chars().next().unwrap().to_digit(10).unwrap() as u8
}

/// Generates a fresh synthetic identity.
pub fn identity(rng: &mut StdRng) -> Identity {
    let first = FIRST_NAMES[rng.gen_range(0..FIRST_NAMES.len())].to_string();
    let last = LAST_NAMES[rng.gen_range(0..LAST_NAMES.len())].to_string();
    let tag: u32 = rng.gen_range(10..9999);

    let street_no = rng.gen_range(10000..99999); // implausibly large house numbers
    let street = STREETS[rng.gen_range(0..STREETS.len())];
    let city = CITIES[rng.gen_range(0..CITIES.len())];
    let state = STATES[rng.gen_range(0..STATES.len())];
    let zip = rng.gen_range(10000..99999);
    let address = format!("{street_no} {street}, {city}, {state} {zip:05}");

    let phone = format!(
        "({:03}) 555-01{:02}",
        rng.gen_range(200..990),
        rng.gen_range(0..100)
    );
    let ssn = format!(
        "000-{:02}-{:04}",
        rng.gen_range(10..99),
        rng.gen_range(1..9999)
    );
    let email = format!(
        "{first}.{last}{tag}@example.{}",
        if rng.gen_bool(0.5) { "com" } else { "net" }
    );

    let (_, prefix, len) = CARD_PREFIXES[rng.gen_range(0..CARD_PREFIXES.len())];
    let mut card_payload = prefix.to_string();
    while card_payload.len() < len - 1 {
        card_payload.push(char::from(b'0' + rng.gen_range(0..10u8)));
    }
    let card = format!("{card_payload}{}", luhn_check_digit(&card_payload));

    Identity {
        address,
        phone,
        ssn,
        email,
        card,
        facebook: format!("{first}.{last}.{tag}"),
        instagram: format!("{first}_{last}_{tag}"),
        twitter: format!("{first}{last}{tag}"),
        youtube: format!("{first}{last}ch{tag}"),
        first_name: first,
        last_name: last,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(99)
    }

    #[test]
    fn phones_use_fictional_exchange() {
        let mut r = rng();
        for _ in 0..50 {
            let id = identity(&mut r);
            assert!(id.phone.contains("555-01"), "{}", id.phone);
        }
    }

    #[test]
    fn ssns_use_invalid_area() {
        let mut r = rng();
        for _ in 0..50 {
            let id = identity(&mut r);
            assert!(id.ssn.starts_with("000-"), "{}", id.ssn);
        }
    }

    #[test]
    fn emails_use_reserved_domains() {
        let mut r = rng();
        for _ in 0..50 {
            let id = identity(&mut r);
            assert!(
                id.email.ends_with("@example.com") || id.email.ends_with("@example.net"),
                "{}",
                id.email
            );
        }
    }

    #[test]
    fn cards_pass_luhn_with_test_iins() {
        let mut r = rng();
        for _ in 0..50 {
            let id = identity(&mut r);
            assert!(luhn_valid(&id.card), "{}", id.card);
            assert!(
                ["4111", "5555", "3782", "6011"]
                    .iter()
                    .any(|p| id.card.starts_with(p)),
                "{}",
                id.card
            );
        }
    }

    #[test]
    fn luhn_reference_values() {
        assert!(luhn_valid("4111111111111111")); // classic Visa test number
        assert!(!luhn_valid("4111111111111112"));
        assert!(luhn_valid("378282246310005")); // Amex test number
        assert_eq!(luhn_check_digit("411111111111111"), 1);
        assert!(!luhn_valid("4"));
    }

    #[test]
    fn pii_text_variants_differ() {
        let mut r = rng();
        let id = identity(&mut r);
        let url = id.pii_text(PiiKind::Twitter, 0);
        let inline = id.pii_text(PiiKind::Twitter, 1);
        assert!(url.starts_with("https://twitter.com/"));
        assert!(inline.starts_with("twitter: @"));
    }

    #[test]
    fn identity_is_deterministic_per_seed() {
        let a = identity(&mut StdRng::seed_from_u64(5));
        let b = identity(&mut StdRng::seed_from_u64(5));
        assert_eq!(a.email, b.email);
        assert_eq!(a.card, b.card);
    }

    #[test]
    fn handles_link_identities() {
        let mut r = rng();
        let id = identity(&mut r);
        assert_eq!(id.handle(), format!("{}_{}", id.first_name, id.last_name));
    }
}
