//! JSONL corpus import/export.
//!
//! The third-party crawlers in the paper deliver line-oriented records; this
//! module provides the same interchange shape so generated corpora can be
//! persisted, diffed and re-loaded without regeneration.

use crate::document::Document;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// Writes documents as one JSON object per line.
pub fn write_jsonl<W: Write>(writer: W, docs: &[Document]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for doc in docs {
        serde_json::to_writer(&mut w, doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Reads documents from a JSONL stream. Blank lines are skipped; a malformed
/// line aborts with an error naming its line number.
pub fn read_jsonl<R: Read>(reader: R) -> io::Result<Vec<Document>> {
    let mut docs = Vec::new();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let doc: Document = serde_json::from_str(&line).map_err(|e| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                format!("line {}: {e}", lineno + 1),
            )
        })?;
        docs.push(doc);
    }
    Ok(docs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::generator::generate;

    #[test]
    fn roundtrip_preserves_documents() {
        let corpus = generate(&CorpusConfig::tiny(123));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.documents.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.text, b.text);
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..3]).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = b"{\"not\": \"a document\"}\n";
        let err = read_jsonl(&data[..]).unwrap_err();
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn empty_input_is_empty_corpus() {
        let docs = read_jsonl(&b""[..]).unwrap();
        assert!(docs.is_empty());
    }
}
