//! JSONL corpus import/export.
//!
//! The third-party crawlers in the paper deliver line-oriented records; this
//! module provides the same interchange shape so generated corpora can be
//! persisted, diffed and re-loaded without regeneration.
//!
//! Real crawler output is dirty: truncated final lines from interrupted
//! transfers, mojibake from mis-declared encodings, half-written records.
//! [`read_jsonl_quarantine`] is the production loader — one bad record
//! never aborts the load; each is counted by failure kind in a
//! [`QuarantineStats`] and the first offender is kept for diagnostics.
//! [`read_jsonl`] is the strict variant (any bad line is a typed
//! [`JsonlError`]) for tests and pipelines that demand a pristine corpus.

use crate::document::Document;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// A typed failure from the strict JSONL reader.
#[derive(Debug)]
pub enum JsonlError {
    /// The underlying stream failed; nothing line-level can recover this.
    Io(io::Error),
    /// A line is not valid UTF-8.
    NonUtf8 { line: usize },
    /// A line is not a valid document record. Carries the line's byte
    /// offset in the stream and a structurally redacted excerpt — never
    /// the raw bytes, which may hold victim text (DESIGN.md §8, §15).
    Malformed {
        line: usize,
        offset: u64,
        excerpt: String,
    },
    /// The final line ended without a newline mid-record (interrupted
    /// transfer) and does not parse.
    Truncated { line: usize },
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonlError::Io(e) => write!(f, "jsonl read failed: {e}"),
            JsonlError::NonUtf8 { line } => write!(f, "line {line}: not valid UTF-8"),
            JsonlError::Malformed {
                line,
                offset,
                excerpt,
            } => {
                write!(
                    f,
                    "line {line} (byte offset {offset}): unparseable record; shape: {excerpt}"
                )
            }
            JsonlError::Truncated { line } => {
                write!(f, "line {line}: truncated record (missing final newline)")
            }
        }
    }
}

impl std::error::Error for JsonlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonlError> for io::Error {
    fn from(e: JsonlError) -> Self {
        match e {
            JsonlError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Per-kind counts of records the lossy loader refused.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineStats {
    /// Lines that are valid UTF-8 but not a document record.
    pub malformed: usize,
    /// Lines that are not valid UTF-8.
    pub non_utf8: usize,
    /// An unparseable final line with no trailing newline.
    pub truncated: usize,
    /// The first refused line, for diagnostics: (line number, reason).
    pub first_error: Option<(usize, String)>,
}

impl QuarantineStats {
    /// Total quarantined lines.
    pub fn quarantined(&self) -> usize {
        self.malformed + self.non_utf8 + self.truncated
    }

    fn record(&mut self, line: usize, error: &JsonlError) {
        match error {
            JsonlError::NonUtf8 { .. } => self.non_utf8 += 1,
            JsonlError::Truncated { .. } => self.truncated += 1,
            _ => self.malformed += 1,
        }
        if self.first_error.is_none() {
            self.first_error = Some((line, error.to_string()));
        }
    }
}

/// How many leading bytes of a bad line survive (redacted) in diagnostics.
const EXCERPT_BYTES: usize = 40;

/// Structural redaction for diagnostics: JSON punctuation and spacing
/// survive, every other byte becomes `*`, and the output is capped at
/// `max` bytes (`..` marks truncation). The result shows the *shape* of a
/// bad record — `{"***": "* ********"}` — without disclosing any content,
/// so it is safe for logs, error types, and quarantine reports.
pub fn redact_excerpt(raw: &[u8], max: usize) -> String {
    let mut out = String::with_capacity(max.min(raw.len()) + 2);
    for &b in raw.iter().take(max) {
        out.push(match b {
            b'{' | b'}' | b'[' | b']' | b':' | b',' | b'"' => b as char,
            b' ' | b'\t' => ' ',
            _ => '*',
        });
    }
    if raw.len() > max {
        out.push_str("..");
    }
    out
}

/// Writes documents as one JSON object per line.
pub fn write_jsonl<W: Write>(writer: W, docs: &[Document]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for doc in docs {
        serde_json::to_writer(&mut w, doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Classifies and parses one raw line. `has_newline` distinguishes a bad
/// final record of an interrupted transfer from an ordinary malformed line.
fn parse_line(
    raw: &[u8],
    lineno: usize,
    offset: u64,
    has_newline: bool,
) -> Result<Option<Document>, JsonlError> {
    let Ok(text) = std::str::from_utf8(raw) else {
        return Err(JsonlError::NonUtf8 { line: lineno });
    };
    if text.trim().is_empty() {
        return Ok(None);
    }
    match serde_json::from_str::<Document>(text) {
        Ok(doc) => Ok(Some(doc)),
        Err(_) if !has_newline => Err(JsonlError::Truncated { line: lineno }),
        // Deliberately drops the parser's own message: it interpolates
        // fragments of the raw line, which may be victim text. The byte
        // offset plus a shape-only excerpt is enough to find the record.
        Err(_) => Err(JsonlError::Malformed {
            line: lineno,
            offset,
            excerpt: redact_excerpt(raw, EXCERPT_BYTES),
        }),
    }
}

/// Byte-level line iteration shared by both readers. Calls `sink` per line
/// with the line's 1-based number and starting byte offset; a `sink` error
/// aborts (strict mode), `Ok(())` continues.
fn for_each_line<R: Read>(
    reader: R,
    mut sink: impl FnMut(&[u8], usize, u64, bool) -> Result<(), JsonlError>,
) -> Result<(), JsonlError> {
    let mut reader = BufReader::new(reader);
    let mut raw = Vec::new();
    let mut lineno = 0;
    let mut offset: u64 = 0;
    loop {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw).map_err(JsonlError::Io)?;
        if n == 0 {
            return Ok(());
        }
        lineno += 1;
        let line_offset = offset;
        offset += n as u64;
        let has_newline = raw.last() == Some(&b'\n');
        let line = if has_newline {
            &raw[..raw.len() - 1]
        } else {
            &raw[..]
        };
        // Tolerate CRLF crawler output.
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        sink(line, lineno, line_offset, has_newline)?;
    }
}

/// Reads documents from a JSONL stream, strictly: blank lines are skipped
/// and the first malformed, non-UTF-8, or truncated line aborts with a
/// typed [`JsonlError`] naming its line number.
pub fn read_jsonl<R: Read>(reader: R) -> Result<Vec<Document>, JsonlError> {
    let mut docs = Vec::new();
    for_each_line(reader, |raw, lineno, offset, has_newline| {
        if let Some(doc) = parse_line(raw, lineno, offset, has_newline)? {
            docs.push(doc);
        }
        Ok(())
    })?;
    Ok(docs)
}

/// Reads documents from a JSONL stream, quarantining bad records instead of
/// aborting: every malformed, non-UTF-8, or truncated line is counted in
/// the returned [`QuarantineStats`] and skipped. Only a failure of the
/// underlying stream itself is an error.
pub fn read_jsonl_quarantine<R: Read>(
    reader: R,
) -> Result<(Vec<Document>, QuarantineStats), JsonlError> {
    let mut docs = Vec::new();
    let mut stats = QuarantineStats::default();
    for_each_line(reader, |raw, lineno, offset, has_newline| {
        match parse_line(raw, lineno, offset, has_newline) {
            Ok(Some(doc)) => docs.push(doc),
            Ok(None) => {}
            Err(JsonlError::Io(e)) => return Err(JsonlError::Io(e)),
            Err(e) => stats.record(lineno, &e),
        }
        Ok(())
    })?;
    Ok((docs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::generator::generate;

    #[test]
    fn roundtrip_preserves_documents() {
        let corpus = generate(&CorpusConfig::tiny(123));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.documents.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.text, b.text);
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..3]).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = b"{\"not\": \"a document\"}\n";
        let err = read_jsonl(&data[..]).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(matches!(
            err,
            JsonlError::Malformed {
                line: 1,
                offset: 0,
                ..
            }
        ));
    }

    /// The malformed-line diagnostic carries the byte offset of the bad
    /// record and a shape-only excerpt: no byte of the raw line — which in
    /// production is victim text — may survive into the error message.
    #[test]
    fn malformed_diagnostics_are_offset_plus_redacted_shape() {
        let mut data = Vec::new();
        data.extend_from_slice(b"\n\n"); // two blank lines before the offender
        data.extend_from_slice(b"{\"not\": \"J. Doe, 12 Main St\"}\n");
        let err = read_jsonl(&data[..]).unwrap_err();
        let JsonlError::Malformed {
            line,
            offset,
            excerpt,
        } = &err
        else {
            panic!("expected Malformed, got {err:?}");
        };
        assert_eq!(*line, 3);
        assert_eq!(*offset, 2);
        assert_eq!(excerpt, "{\"***\": \"** ***, ** **** **\"}");
        let msg = err.to_string();
        for leaked in ["not", "Doe", "Main", "12"] {
            assert!(!msg.contains(leaked), "content leaked into {msg:?}");
        }
        assert!(msg.contains("byte offset 2"), "{msg}");
    }

    #[test]
    fn excerpt_redacts_and_caps() {
        assert_eq!(redact_excerpt(b"{\"a\": 1}", 40), "{\"*\": *}");
        assert_eq!(redact_excerpt(b"abcdef", 4), "****..");
        assert_eq!(redact_excerpt("héllo".as_bytes(), 40), "******");
        assert_eq!(redact_excerpt(b"", 40), "");
    }

    #[test]
    fn empty_input_is_empty_corpus() {
        let docs = read_jsonl(&b""[..]).unwrap();
        assert!(docs.is_empty());
    }

    /// Crawler-shaped dirt: a good record, a malformed record, a non-UTF-8
    /// record, another good record, and a truncated final record. The
    /// quarantine loader keeps both good documents and counts each failure
    /// under its own kind.
    #[test]
    fn quarantine_loader_survives_dirty_input() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..1]).unwrap();
        buf.extend_from_slice(b"{\"not\": \"a document\"}\n");
        buf.extend_from_slice(b"\xff\xfe broken encoding \xff\n");
        write_jsonl(&mut buf, &corpus.documents[1..2]).unwrap();
        let mut tail = Vec::new();
        write_jsonl(&mut tail, &corpus.documents[2..3]).unwrap();
        buf.extend_from_slice(&tail[..tail.len() / 2]); // cut mid-record, no newline

        let (docs, stats) = read_jsonl_quarantine(buf.as_slice()).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].id, corpus.documents[0].id);
        assert_eq!(docs[1].id, corpus.documents[1].id);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.non_utf8, 1);
        assert_eq!(stats.truncated, 1);
        assert_eq!(stats.quarantined(), 3);
        let (line, reason) = stats.first_error.clone().unwrap();
        assert_eq!(line, 2);
        assert!(reason.contains("line 2"), "{reason}");
        // The quarantine report must not echo the offending record.
        assert!(!reason.contains("document"), "content leaked: {reason}");
        assert!(reason.contains("shape: {\"***\":"), "{reason}");
    }

    #[test]
    fn strict_loader_types_non_utf8_and_truncation() {
        let err = read_jsonl(&b"\xff\xfe\n"[..]).unwrap_err();
        assert!(matches!(err, JsonlError::NonUtf8 { line: 1 }));

        let err = read_jsonl(&b"{\"id\": 3, \"te"[..]).unwrap_err();
        assert!(matches!(err, JsonlError::Truncated { line: 1 }));
    }

    #[test]
    fn clean_input_quarantines_nothing() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents).unwrap();
        let (docs, stats) = read_jsonl_quarantine(buf.as_slice()).unwrap();
        assert_eq!(docs.len(), corpus.len());
        assert_eq!(stats, QuarantineStats::default());
    }

    #[test]
    fn crlf_lines_parse() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..2]).unwrap();
        let crlf: Vec<u8> = String::from_utf8(buf)
            .unwrap()
            .replace('\n', "\r\n")
            .into_bytes();
        let back = read_jsonl(crlf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
    }
}
