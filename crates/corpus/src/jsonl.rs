//! JSONL corpus import/export.
//!
//! The third-party crawlers in the paper deliver line-oriented records; this
//! module provides the same interchange shape so generated corpora can be
//! persisted, diffed and re-loaded without regeneration.
//!
//! Real crawler output is dirty: truncated final lines from interrupted
//! transfers, mojibake from mis-declared encodings, half-written records.
//! [`read_jsonl_quarantine`] is the production loader — one bad record
//! never aborts the load; each is counted by failure kind in a
//! [`QuarantineStats`] and the first offender is kept for diagnostics.
//! [`read_jsonl`] is the strict variant (any bad line is a typed
//! [`JsonlError`]) for tests and pipelines that demand a pristine corpus.

use crate::document::{DocId, Document, GroundTruth, ThreadRef};
use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::{Gender, LabelSet, Platform};
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// A typed failure from the strict JSONL reader.
#[derive(Debug)]
pub enum JsonlError {
    /// The underlying stream failed; nothing line-level can recover this.
    Io(io::Error),
    /// A line is not valid UTF-8.
    NonUtf8 { line: usize },
    /// A line is not a valid document record. Carries the line's byte
    /// offset in the stream and a structurally redacted excerpt — never
    /// the raw bytes, which may hold victim text (DESIGN.md §8, §15).
    Malformed {
        line: usize,
        offset: u64,
        excerpt: String,
    },
    /// The final line ended without a newline mid-record (interrupted
    /// transfer) and does not parse.
    Truncated { line: usize },
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonlError::Io(e) => write!(f, "jsonl read failed: {e}"),
            JsonlError::NonUtf8 { line } => write!(f, "line {line}: not valid UTF-8"),
            JsonlError::Malformed {
                line,
                offset,
                excerpt,
            } => {
                write!(
                    f,
                    "line {line} (byte offset {offset}): unparseable record; shape: {excerpt}"
                )
            }
            JsonlError::Truncated { line } => {
                write!(f, "line {line}: truncated record (missing final newline)")
            }
        }
    }
}

impl std::error::Error for JsonlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonlError> for io::Error {
    fn from(e: JsonlError) -> Self {
        match e {
            JsonlError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Per-kind counts of records the lossy loader refused.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineStats {
    /// Lines that are valid UTF-8 but not a document record.
    pub malformed: usize,
    /// Lines that are not valid UTF-8.
    pub non_utf8: usize,
    /// An unparseable final line with no trailing newline.
    pub truncated: usize,
    /// The first refused line, for diagnostics: (line number, reason).
    pub first_error: Option<(usize, String)>,
}

impl QuarantineStats {
    /// Total quarantined lines.
    pub fn quarantined(&self) -> usize {
        self.malformed + self.non_utf8 + self.truncated
    }

    fn record(&mut self, line: usize, error: &JsonlError) {
        match error {
            JsonlError::NonUtf8 { .. } => self.non_utf8 += 1,
            JsonlError::Truncated { .. } => self.truncated += 1,
            _ => self.malformed += 1,
        }
        if self.first_error.is_none() {
            self.first_error = Some((line, error.to_string()));
        }
    }
}

/// How many leading bytes of a bad line survive (redacted) in diagnostics.
const EXCERPT_BYTES: usize = 40;

/// Structural redaction for diagnostics: JSON punctuation and spacing
/// survive, every other byte becomes `*`, and the output is capped at
/// `max` bytes (`..` marks truncation). The result shows the *shape* of a
/// bad record — `{"***": "* ********"}` — without disclosing any content,
/// so it is safe for logs, error types, and quarantine reports.
pub fn redact_excerpt(raw: &[u8], max: usize) -> String {
    let mut out = String::with_capacity(max.min(raw.len()) + 2);
    for &b in raw.iter().take(max) {
        out.push(match b {
            b'{' | b'}' | b'[' | b']' | b':' | b',' | b'"' => b as char,
            b' ' | b'\t' => ' ',
            _ => '*',
        });
    }
    if raw.len() > max {
        out.push_str("..");
    }
    out
}

/// Writes documents as one JSON object per line.
pub fn write_jsonl<W: Write>(writer: W, docs: &[Document]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for doc in docs {
        serde_json::to_writer(&mut w, doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Zero-copy cursor over one line for the specialized document parser.
///
/// Every scalar is read as a borrowed slice of the input line; the only
/// allocations in a fast-path parse are the four owned `String` fields of
/// the resulting [`Document`]. The cursor accepts a strict *subset* of the
/// JSON that serde accepts — exactly the compact, declaration-ordered,
/// escape-free shape [`write_jsonl`] emits (plus insignificant whitespace).
/// Anything else makes a method return `None`, which sends the caller to
/// the serde path, so behavior on irregular input is bit-identical to the
/// pre-fast-path loader.
struct Cursor<'a> {
    text: &'a str,
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn new(text: &'a str) -> Cursor<'a> {
        Cursor {
            text,
            bytes: text.as_bytes(),
            pos: 0,
        }
    }

    fn skip_ws(&mut self) {
        while let Some(b' ' | b'\t' | b'\n' | b'\r') = self.bytes.get(self.pos) {
            self.pos += 1;
        }
    }

    fn eat(&mut self, want: u8) -> Option<()> {
        self.skip_ws();
        if self.bytes.get(self.pos) == Some(&want) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    /// One object key: `"name"` followed by `:`. Keys never need escapes.
    fn key(&mut self, name: &[u8]) -> Option<()> {
        self.eat(b'"')?;
        let end = self.pos.checked_add(name.len())?;
        if self.bytes.get(self.pos..end)? != name {
            return None;
        }
        self.pos = end;
        if self.bytes.get(self.pos) != Some(&b'"') {
            return None;
        }
        self.pos += 1;
        self.eat(b':')
    }

    /// A string scalar without escapes, borrowed straight from the line.
    /// A backslash (valid JSON, slow path) or a raw control byte (invalid
    /// JSON) both defer to serde.
    fn string(&mut self) -> Option<&'a str> {
        self.eat(b'"')?;
        let start = self.pos;
        loop {
            match *self.bytes.get(self.pos)? {
                b'"' => {
                    // Both delimiters are ASCII, so this slice sits on
                    // char boundaries of the already-validated line.
                    let s = &self.text[start..self.pos];
                    self.pos += 1;
                    return Some(s);
                }
                b'\\' | 0..=0x1f => return None,
                _ => self.pos += 1,
            }
        }
    }

    /// A non-negative integer token. Accepts only what serde would accept
    /// for an unsigned field: no sign, no leading zeros, no fraction or
    /// exponent, no overflow.
    fn number_token(&mut self) -> Option<&'a str> {
        self.skip_ws();
        let start = self.pos;
        while self.bytes.get(self.pos).is_some_and(|b| b.is_ascii_digit()) {
            self.pos += 1;
        }
        let token = &self.text[start..self.pos];
        if token.is_empty() || (token.len() > 1 && token.starts_with('0')) {
            return None;
        }
        if let Some(b'.' | b'e' | b'E') = self.bytes.get(self.pos) {
            return None;
        }
        Some(token)
    }

    fn u64(&mut self) -> Option<u64> {
        self.number_token()?.parse().ok()
    }

    fn u32(&mut self) -> Option<u32> {
        self.number_token()?.parse().ok()
    }

    fn boolean(&mut self) -> Option<bool> {
        self.skip_ws();
        for (lit, value) in [(&b"true"[..], true), (&b"false"[..], false)] {
            if self.bytes[self.pos..].starts_with(lit) {
                self.pos += lit.len();
                return Some(value);
            }
        }
        None
    }

    /// Consumes `null` if present; `false` leaves the cursor untouched.
    fn null(&mut self) -> bool {
        self.skip_ws();
        if self.bytes[self.pos..].starts_with(b"null") {
            self.pos += 4;
            true
        } else {
            false
        }
    }

    fn at_end(&mut self) -> bool {
        self.skip_ws();
        self.pos == self.bytes.len()
    }
}

fn platform_variant(name: &str) -> Option<Platform> {
    Some(match name {
        "Boards" => Platform::Boards,
        "Discord" => Platform::Discord,
        "Telegram" => Platform::Telegram,
        "Gab" => Platform::Gab,
        "Pastes" => Platform::Pastes,
        "Blogs" => Platform::Blogs,
        _ => return None,
    })
}

fn gender_variant(name: &str) -> Option<Gender> {
    Some(match name {
        "Unknown" => Gender::Unknown,
        "Female" => Gender::Female,
        "Male" => Gender::Male,
        _ => return None,
    })
}

/// The zero-copy fast path: a single-pass parse of the exact record shape
/// [`write_jsonl`] emits, with every scalar borrowed from the line until
/// the final owned-`String` copies into the [`Document`].
///
/// `None` means "not the fast shape" — not "invalid". The caller then runs
/// serde, whose accept/reject decision and error classification are the
/// behavioral contract; the fast path only ever short-circuits lines serde
/// would have accepted with the identical `Document` (it parses a strict
/// subset of serde's grammar and builds every field the same way —
/// `LabelSet`/`PiiSet` keep their private-bit representation by
/// deserializing just the borrowed number token).
fn parse_document_fast(text: &str) -> Option<Document> {
    // Keys appear in the canonical (alphabetical) order the vendored
    // serializer emits, at every nesting level.
    let mut c = Cursor::new(text);
    c.eat(b'{')?;
    c.key(b"author")?;
    let author = c.string()?.to_string();
    c.eat(b',')?;
    c.key(b"channel")?;
    let channel = c.string()?.to_string();
    c.eat(b',')?;
    c.key(b"id")?;
    let id = DocId(c.u64()?);
    c.eat(b',')?;
    c.key(b"platform")?;
    let platform = platform_variant(c.string()?)?;
    c.eat(b',')?;
    c.key(b"text")?;
    let body = c.string()?.to_string();
    c.eat(b',')?;
    c.key(b"thread")?;
    let thread = if c.null() {
        None
    } else {
        c.eat(b'{')?;
        c.key(b"position")?;
        let position = c.u32()?;
        c.eat(b',')?;
        c.key(b"thread_id")?;
        let thread_id = c.u64()?;
        c.eat(b',')?;
        c.key(b"thread_len")?;
        let thread_len = c.u32()?;
        c.eat(b'}')?;
        Some(ThreadRef {
            thread_id,
            position,
            thread_len,
        })
    };
    c.eat(b',')?;
    c.key(b"timestamp")?;
    let timestamp = c.u64()?;
    c.eat(b',')?;
    c.key(b"truth")?;
    c.eat(b'{')?;
    c.key(b"gender")?;
    let gender = gender_variant(c.string()?)?;
    c.eat(b',')?;
    c.key(b"hard_negative")?;
    let hard_negative = c.boolean()?;
    c.eat(b',')?;
    c.key(b"is_cth")?;
    let is_cth = c.boolean()?;
    c.eat(b',')?;
    c.key(b"is_dox")?;
    let is_dox = c.boolean()?;
    c.eat(b',')?;
    c.key(b"labels")?;
    let labels: LabelSet = serde_json::from_str(c.number_token()?).ok()?;
    c.eat(b',')?;
    c.key(b"pii")?;
    let pii: PiiSet = serde_json::from_str(c.number_token()?).ok()?;
    c.eat(b',')?;
    c.key(b"reputation_flag")?;
    let reputation_flag = c.boolean()?;
    c.eat(b',')?;
    c.key(b"target_handle")?;
    let target_handle = if c.null() {
        None
    } else {
        Some(c.string()?.to_string())
    };
    c.eat(b'}')?;
    c.eat(b'}')?;
    if !c.at_end() {
        return None;
    }
    Some(Document {
        id,
        platform,
        text: body,
        author,
        timestamp,
        thread,
        channel,
        truth: GroundTruth {
            is_cth,
            is_dox,
            labels,
            gender,
            pii,
            reputation_flag,
            target_handle,
            hard_negative,
        },
    })
}

/// Classifies and parses one raw line. `has_newline` distinguishes a bad
/// final record of an interrupted transfer from an ordinary malformed line.
fn parse_line(
    raw: &[u8],
    lineno: usize,
    offset: u64,
    has_newline: bool,
) -> Result<Option<Document>, JsonlError> {
    let Ok(text) = std::str::from_utf8(raw) else {
        return Err(JsonlError::NonUtf8 { line: lineno });
    };
    if text.trim().is_empty() {
        return Ok(None);
    }
    if let Some(doc) = parse_document_fast(text) {
        return Ok(Some(doc));
    }
    match serde_json::from_str::<Document>(text) {
        Ok(doc) => Ok(Some(doc)),
        Err(_) if !has_newline => Err(JsonlError::Truncated { line: lineno }),
        // Deliberately drops the parser's own message: it interpolates
        // fragments of the raw line, which may be victim text. The byte
        // offset plus a shape-only excerpt is enough to find the record.
        Err(_) => Err(JsonlError::Malformed {
            line: lineno,
            offset,
            excerpt: redact_excerpt(raw, EXCERPT_BYTES),
        }),
    }
}

/// Byte-level line iteration shared by both readers. Calls `sink` per line
/// with the line's 1-based number and starting byte offset; a `sink` error
/// aborts (strict mode), `Ok(())` continues.
fn for_each_line<R: Read>(
    reader: R,
    mut sink: impl FnMut(&[u8], usize, u64, bool) -> Result<(), JsonlError>,
) -> Result<(), JsonlError> {
    let mut reader = BufReader::new(reader);
    let mut raw = Vec::new();
    let mut lineno = 0;
    let mut offset: u64 = 0;
    loop {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw).map_err(JsonlError::Io)?;
        if n == 0 {
            return Ok(());
        }
        lineno += 1;
        let line_offset = offset;
        offset += n as u64;
        let has_newline = raw.last() == Some(&b'\n');
        let line = if has_newline {
            &raw[..raw.len() - 1]
        } else {
            &raw[..]
        };
        // Tolerate CRLF crawler output.
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        sink(line, lineno, line_offset, has_newline)?;
    }
}

/// Reads documents from a JSONL stream, strictly: blank lines are skipped
/// and the first malformed, non-UTF-8, or truncated line aborts with a
/// typed [`JsonlError`] naming its line number.
pub fn read_jsonl<R: Read>(reader: R) -> Result<Vec<Document>, JsonlError> {
    let mut docs = Vec::new();
    for_each_line(reader, |raw, lineno, offset, has_newline| {
        if let Some(doc) = parse_line(raw, lineno, offset, has_newline)? {
            docs.push(doc);
        }
        Ok(())
    })?;
    Ok(docs)
}

/// Reads documents from a JSONL stream, quarantining bad records instead of
/// aborting: every malformed, non-UTF-8, or truncated line is counted in
/// the returned [`QuarantineStats`] and skipped. Only a failure of the
/// underlying stream itself is an error.
pub fn read_jsonl_quarantine<R: Read>(
    reader: R,
) -> Result<(Vec<Document>, QuarantineStats), JsonlError> {
    let mut docs = Vec::new();
    let mut stats = QuarantineStats::default();
    for_each_line(reader, |raw, lineno, offset, has_newline| {
        match parse_line(raw, lineno, offset, has_newline) {
            Ok(Some(doc)) => docs.push(doc),
            Ok(None) => {}
            Err(JsonlError::Io(e)) => return Err(JsonlError::Io(e)),
            Err(e) => stats.record(lineno, &e),
        }
        Ok(())
    })?;
    Ok((docs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::generator::generate;

    #[test]
    fn roundtrip_preserves_documents() {
        let corpus = generate(&CorpusConfig::tiny(123));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.documents.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.text, b.text);
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..3]).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = b"{\"not\": \"a document\"}\n";
        let err = read_jsonl(&data[..]).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(matches!(
            err,
            JsonlError::Malformed {
                line: 1,
                offset: 0,
                ..
            }
        ));
    }

    /// The malformed-line diagnostic carries the byte offset of the bad
    /// record and a shape-only excerpt: no byte of the raw line — which in
    /// production is victim text — may survive into the error message.
    #[test]
    fn malformed_diagnostics_are_offset_plus_redacted_shape() {
        let mut data = Vec::new();
        data.extend_from_slice(b"\n\n"); // two blank lines before the offender
        data.extend_from_slice(b"{\"not\": \"J. Doe, 12 Main St\"}\n");
        let err = read_jsonl(&data[..]).unwrap_err();
        let JsonlError::Malformed {
            line,
            offset,
            excerpt,
        } = &err
        else {
            panic!("expected Malformed, got {err:?}");
        };
        assert_eq!(*line, 3);
        assert_eq!(*offset, 2);
        assert_eq!(excerpt, "{\"***\": \"** ***, ** **** **\"}");
        let msg = err.to_string();
        for leaked in ["not", "Doe", "Main", "12"] {
            assert!(!msg.contains(leaked), "content leaked into {msg:?}");
        }
        assert!(msg.contains("byte offset 2"), "{msg}");
    }

    #[test]
    fn excerpt_redacts_and_caps() {
        assert_eq!(redact_excerpt(b"{\"a\": 1}", 40), "{\"*\": *}");
        assert_eq!(redact_excerpt(b"abcdef", 4), "****..");
        assert_eq!(redact_excerpt("héllo".as_bytes(), 40), "******");
        assert_eq!(redact_excerpt(b"", 40), "");
    }

    #[test]
    fn empty_input_is_empty_corpus() {
        let docs = read_jsonl(&b""[..]).unwrap();
        assert!(docs.is_empty());
    }

    /// Crawler-shaped dirt: a good record, a malformed record, a non-UTF-8
    /// record, another good record, and a truncated final record. The
    /// quarantine loader keeps both good documents and counts each failure
    /// under its own kind.
    #[test]
    fn quarantine_loader_survives_dirty_input() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..1]).unwrap();
        buf.extend_from_slice(b"{\"not\": \"a document\"}\n");
        buf.extend_from_slice(b"\xff\xfe broken encoding \xff\n");
        write_jsonl(&mut buf, &corpus.documents[1..2]).unwrap();
        let mut tail = Vec::new();
        write_jsonl(&mut tail, &corpus.documents[2..3]).unwrap();
        buf.extend_from_slice(&tail[..tail.len() / 2]); // cut mid-record, no newline

        let (docs, stats) = read_jsonl_quarantine(buf.as_slice()).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].id, corpus.documents[0].id);
        assert_eq!(docs[1].id, corpus.documents[1].id);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.non_utf8, 1);
        assert_eq!(stats.truncated, 1);
        assert_eq!(stats.quarantined(), 3);
        let (line, reason) = stats.first_error.clone().unwrap();
        assert_eq!(line, 2);
        assert!(reason.contains("line 2"), "{reason}");
        // The quarantine report must not echo the offending record.
        assert!(!reason.contains("document"), "content leaked: {reason}");
        assert!(reason.contains("shape: {\"***\":"), "{reason}");
    }

    #[test]
    fn strict_loader_types_non_utf8_and_truncation() {
        let err = read_jsonl(&b"\xff\xfe\n"[..]).unwrap_err();
        assert!(matches!(err, JsonlError::NonUtf8 { line: 1 }));

        let err = read_jsonl(&b"{\"id\": 3, \"te"[..]).unwrap_err();
        assert!(matches!(err, JsonlError::Truncated { line: 1 }));
    }

    #[test]
    fn clean_input_quarantines_nothing() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents).unwrap();
        let (docs, stats) = read_jsonl_quarantine(buf.as_slice()).unwrap();
        assert_eq!(docs.len(), corpus.len());
        assert_eq!(stats, QuarantineStats::default());
    }

    /// Every line the writer emits must take the zero-copy fast path and
    /// produce a document byte-identical (via re-serialization) to what
    /// serde parses from the same line.
    #[test]
    fn fast_path_matches_serde_on_every_written_line() {
        let corpus = generate(&CorpusConfig::tiny(42));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents).unwrap();
        let text = String::from_utf8(buf).unwrap();
        let mut fast_lines = 0;
        for line in text.lines() {
            let fast = parse_document_fast(line);
            if !line.contains('\\') {
                // Escape-free lines (the bulk of a corpus) must all take
                // the zero-copy path; escaped ones legitimately defer.
                assert!(
                    fast.is_some(),
                    "escape-free line left the fast path: {line}"
                );
            }
            let slow: Document = serde_json::from_str(line).unwrap();
            if let Some(fast) = fast {
                assert_eq!(
                    serde_json::to_string(&fast).unwrap(),
                    serde_json::to_string(&slow).unwrap()
                );
                fast_lines += 1;
            }
        }
        assert!(fast_lines * 2 > corpus.len(), "fast path barely used");
    }

    /// Escaped strings are valid JSON but not the fast shape: they must
    /// defer to serde and still round-trip exactly.
    #[test]
    fn escaped_strings_defer_to_serde_and_round_trip() {
        let mut doc = generate(&CorpusConfig::tiny(9)).documents.remove(0);
        doc.text = "a \"quoted\" line\nwith\tescapes \\ inside".to_string();
        let mut buf = Vec::new();
        write_jsonl(&mut buf, std::slice::from_ref(&doc)).unwrap();
        let line = std::str::from_utf8(&buf).unwrap().trim_end();
        assert!(parse_document_fast(line).is_none(), "escapes must bail");
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back[0].text, doc.text);
        assert_eq!(back[0].id, doc.id);
    }

    /// Valid JSON in a non-canonical field order bails out of the fast
    /// path and parses through serde — same documents either way.
    #[test]
    fn reordered_fields_fall_back_to_serde() {
        // Declaration order rather than the canonical alphabetical order.
        let reordered = concat!(
            "{\"id\":7,\"platform\":\"Boards\",\"text\":\"hi\",\"author\":\"anon\",",
            "\"timestamp\":5,\"thread\":null,\"channel\":\"b\",\"truth\":{",
            "\"is_cth\":false,\"is_dox\":false,\"labels\":0,\"gender\":\"Unknown\",",
            "\"pii\":0,\"reputation_flag\":false,\"target_handle\":null,",
            "\"hard_negative\":false}}"
        );
        assert!(parse_document_fast(reordered).is_none());
        let back = read_jsonl(format!("{reordered}\n").as_bytes()).unwrap();
        assert_eq!(back[0].id, DocId(7));
        assert_eq!(back[0].text, "hi");
    }

    /// Number tokens serde rejects (leading zeros, floats) must not be
    /// accepted by the fast path: both paths classify the line Malformed.
    #[test]
    fn non_canonical_numbers_stay_malformed() {
        for bad in [
            "{\"id\":01,\"platform\":\"Gab\"}",
            "{\"id\":1.5,\"platform\":\"Gab\"}",
        ] {
            assert!(parse_document_fast(bad).is_none());
            let err = read_jsonl(format!("{bad}\n").as_bytes()).unwrap_err();
            assert!(matches!(err, JsonlError::Malformed { line: 1, .. }));
        }
    }

    #[test]
    fn crlf_lines_parse() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..2]).unwrap();
        let crlf: Vec<u8> = String::from_utf8(buf)
            .unwrap()
            .replace('\n', "\r\n")
            .into_bytes();
        let back = read_jsonl(crlf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
    }
}
