//! JSONL corpus import/export.
//!
//! The third-party crawlers in the paper deliver line-oriented records; this
//! module provides the same interchange shape so generated corpora can be
//! persisted, diffed and re-loaded without regeneration.
//!
//! Real crawler output is dirty: truncated final lines from interrupted
//! transfers, mojibake from mis-declared encodings, half-written records.
//! [`read_jsonl_quarantine`] is the production loader — one bad record
//! never aborts the load; each is counted by failure kind in a
//! [`QuarantineStats`] and the first offender is kept for diagnostics.
//! [`read_jsonl`] is the strict variant (any bad line is a typed
//! [`JsonlError`]) for tests and pipelines that demand a pristine corpus.

use crate::document::Document;
use std::fmt;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};

/// A typed failure from the strict JSONL reader.
#[derive(Debug)]
pub enum JsonlError {
    /// The underlying stream failed; nothing line-level can recover this.
    Io(io::Error),
    /// A line is not valid UTF-8.
    NonUtf8 { line: usize },
    /// A line is not a valid document record.
    Malformed { line: usize, detail: String },
    /// The final line ended without a newline mid-record (interrupted
    /// transfer) and does not parse.
    Truncated { line: usize },
}

impl fmt::Display for JsonlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            JsonlError::Io(e) => write!(f, "jsonl read failed: {e}"),
            JsonlError::NonUtf8 { line } => write!(f, "line {line}: not valid UTF-8"),
            JsonlError::Malformed { line, detail } => write!(f, "line {line}: {detail}"),
            JsonlError::Truncated { line } => {
                write!(f, "line {line}: truncated record (missing final newline)")
            }
        }
    }
}

impl std::error::Error for JsonlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            JsonlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<JsonlError> for io::Error {
    fn from(e: JsonlError) -> Self {
        match e {
            JsonlError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Per-kind counts of records the lossy loader refused.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineStats {
    /// Lines that are valid UTF-8 but not a document record.
    pub malformed: usize,
    /// Lines that are not valid UTF-8.
    pub non_utf8: usize,
    /// An unparseable final line with no trailing newline.
    pub truncated: usize,
    /// The first refused line, for diagnostics: (line number, reason).
    pub first_error: Option<(usize, String)>,
}

impl QuarantineStats {
    /// Total quarantined lines.
    pub fn quarantined(&self) -> usize {
        self.malformed + self.non_utf8 + self.truncated
    }

    fn record(&mut self, line: usize, error: &JsonlError) {
        match error {
            JsonlError::NonUtf8 { .. } => self.non_utf8 += 1,
            JsonlError::Truncated { .. } => self.truncated += 1,
            _ => self.malformed += 1,
        }
        if self.first_error.is_none() {
            self.first_error = Some((line, error.to_string()));
        }
    }
}

/// Writes documents as one JSON object per line.
pub fn write_jsonl<W: Write>(writer: W, docs: &[Document]) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    for doc in docs {
        serde_json::to_writer(&mut w, doc)
            .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))?;
        w.write_all(b"\n")?;
    }
    w.flush()
}

/// Classifies and parses one raw line. `has_newline` distinguishes a bad
/// final record of an interrupted transfer from an ordinary malformed line.
fn parse_line(
    raw: &[u8],
    lineno: usize,
    has_newline: bool,
) -> Result<Option<Document>, JsonlError> {
    let Ok(text) = std::str::from_utf8(raw) else {
        return Err(JsonlError::NonUtf8 { line: lineno });
    };
    if text.trim().is_empty() {
        return Ok(None);
    }
    match serde_json::from_str::<Document>(text) {
        Ok(doc) => Ok(Some(doc)),
        Err(_) if !has_newline => Err(JsonlError::Truncated { line: lineno }),
        Err(e) => Err(JsonlError::Malformed {
            line: lineno,
            detail: e.to_string(),
        }),
    }
}

/// Byte-level line iteration shared by both readers. Calls `sink` per line;
/// a `sink` error aborts (strict mode), `Ok(())` continues.
fn for_each_line<R: Read>(
    reader: R,
    mut sink: impl FnMut(&[u8], usize, bool) -> Result<(), JsonlError>,
) -> Result<(), JsonlError> {
    let mut reader = BufReader::new(reader);
    let mut raw = Vec::new();
    let mut lineno = 0;
    loop {
        raw.clear();
        let n = reader.read_until(b'\n', &mut raw).map_err(JsonlError::Io)?;
        if n == 0 {
            return Ok(());
        }
        lineno += 1;
        let has_newline = raw.last() == Some(&b'\n');
        let line = if has_newline {
            &raw[..raw.len() - 1]
        } else {
            &raw[..]
        };
        // Tolerate CRLF crawler output.
        let line = line.strip_suffix(b"\r").unwrap_or(line);
        sink(line, lineno, has_newline)?;
    }
}

/// Reads documents from a JSONL stream, strictly: blank lines are skipped
/// and the first malformed, non-UTF-8, or truncated line aborts with a
/// typed [`JsonlError`] naming its line number.
pub fn read_jsonl<R: Read>(reader: R) -> Result<Vec<Document>, JsonlError> {
    let mut docs = Vec::new();
    for_each_line(reader, |raw, lineno, has_newline| {
        if let Some(doc) = parse_line(raw, lineno, has_newline)? {
            docs.push(doc);
        }
        Ok(())
    })?;
    Ok(docs)
}

/// Reads documents from a JSONL stream, quarantining bad records instead of
/// aborting: every malformed, non-UTF-8, or truncated line is counted in
/// the returned [`QuarantineStats`] and skipped. Only a failure of the
/// underlying stream itself is an error.
pub fn read_jsonl_quarantine<R: Read>(
    reader: R,
) -> Result<(Vec<Document>, QuarantineStats), JsonlError> {
    let mut docs = Vec::new();
    let mut stats = QuarantineStats::default();
    for_each_line(reader, |raw, lineno, has_newline| {
        match parse_line(raw, lineno, has_newline) {
            Ok(Some(doc)) => docs.push(doc),
            Ok(None) => {}
            Err(JsonlError::Io(e)) => return Err(JsonlError::Io(e)),
            Err(e) => stats.record(lineno, &e),
        }
        Ok(())
    })?;
    Ok((docs, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::generator::generate;

    #[test]
    fn roundtrip_preserves_documents() {
        let corpus = generate(&CorpusConfig::tiny(123));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents).unwrap();
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), corpus.len());
        for (a, b) in corpus.documents.iter().zip(&back) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.text, b.text);
            assert_eq!(a.truth, b.truth);
        }
    }

    #[test]
    fn blank_lines_are_skipped() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..3]).unwrap();
        buf.extend_from_slice(b"\n\n");
        let back = read_jsonl(buf.as_slice()).unwrap();
        assert_eq!(back.len(), 3);
    }

    #[test]
    fn malformed_line_reports_position() {
        let data = b"{\"not\": \"a document\"}\n";
        let err = read_jsonl(&data[..]).unwrap_err();
        assert!(err.to_string().contains("line 1"));
        assert!(matches!(err, JsonlError::Malformed { line: 1, .. }));
    }

    #[test]
    fn empty_input_is_empty_corpus() {
        let docs = read_jsonl(&b""[..]).unwrap();
        assert!(docs.is_empty());
    }

    /// Crawler-shaped dirt: a good record, a malformed record, a non-UTF-8
    /// record, another good record, and a truncated final record. The
    /// quarantine loader keeps both good documents and counts each failure
    /// under its own kind.
    #[test]
    fn quarantine_loader_survives_dirty_input() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..1]).unwrap();
        buf.extend_from_slice(b"{\"not\": \"a document\"}\n");
        buf.extend_from_slice(b"\xff\xfe broken encoding \xff\n");
        write_jsonl(&mut buf, &corpus.documents[1..2]).unwrap();
        let mut tail = Vec::new();
        write_jsonl(&mut tail, &corpus.documents[2..3]).unwrap();
        buf.extend_from_slice(&tail[..tail.len() / 2]); // cut mid-record, no newline

        let (docs, stats) = read_jsonl_quarantine(buf.as_slice()).unwrap();
        assert_eq!(docs.len(), 2);
        assert_eq!(docs[0].id, corpus.documents[0].id);
        assert_eq!(docs[1].id, corpus.documents[1].id);
        assert_eq!(stats.malformed, 1);
        assert_eq!(stats.non_utf8, 1);
        assert_eq!(stats.truncated, 1);
        assert_eq!(stats.quarantined(), 3);
        let (line, reason) = stats.first_error.clone().unwrap();
        assert_eq!(line, 2);
        assert!(reason.contains("line 2"), "{reason}");
    }

    #[test]
    fn strict_loader_types_non_utf8_and_truncation() {
        let err = read_jsonl(&b"\xff\xfe\n"[..]).unwrap_err();
        assert!(matches!(err, JsonlError::NonUtf8 { line: 1 }));

        let err = read_jsonl(&b"{\"id\": 3, \"te"[..]).unwrap_err();
        assert!(matches!(err, JsonlError::Truncated { line: 1 }));
    }

    #[test]
    fn clean_input_quarantines_nothing() {
        let corpus = generate(&CorpusConfig::tiny(7));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents).unwrap();
        let (docs, stats) = read_jsonl_quarantine(buf.as_slice()).unwrap();
        assert_eq!(docs.len(), corpus.len());
        assert_eq!(stats, QuarantineStats::default());
    }

    #[test]
    fn crlf_lines_parse() {
        let corpus = generate(&CorpusConfig::tiny(5));
        let mut buf = Vec::new();
        write_jsonl(&mut buf, &corpus.documents[..2]).unwrap();
        let crlf: Vec<u8> = String::from_utf8(buf)
            .unwrap()
            .replace('\n', "\r\n")
            .into_bytes();
        let back = read_jsonl(crlf.as_slice()).unwrap();
        assert_eq!(back.len(), 2);
    }
}
