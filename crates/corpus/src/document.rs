//! The document model shared by every pipeline stage.

use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::{Gender, LabelSet, Platform};
use serde::{Deserialize, Serialize};

/// A stable document identifier, unique within a corpus.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct DocId(pub u64);

/// Thread placement for platforms with ordered threads (boards).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ThreadRef {
    /// Thread identifier, unique within the platform.
    pub thread_id: u64,
    /// Zero-based position of this post within the thread.
    pub position: u32,
    /// Total posts in the thread.
    pub thread_len: u32,
}

impl ThreadRef {
    /// Whether this is the thread's original post.
    pub fn is_first(&self) -> bool {
        self.position == 0
    }

    /// Whether this is the thread's final post.
    pub fn is_last(&self) -> bool {
        self.position + 1 == self.thread_len
    }

    /// Number of posts after this one — the paper's definition of the
    /// "responses" to a call to harassment (§6.3).
    pub fn responses(&self) -> u32 {
        self.thread_len - 1 - self.position
    }
}

/// Planted ground truth carried by every synthetic document.
///
/// The filtering pipeline never reads this — it exists so that annotation
/// can be simulated as a noise process over truth and so experiments can
/// measure recovery quality.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    /// The document is a call to harassment.
    pub is_cth: bool,
    /// The document is a dox.
    pub is_dox: bool,
    /// Attack-type labels (CTH only).
    pub labels: LabelSet,
    /// Pronoun-inferable target gender.
    pub gender: Gender,
    /// PII families planted in the text.
    pub pii: PiiSet,
    /// Family/employer information present (the manually annotated
    /// "reputation risk" indicator of §7.2).
    pub reputation_flag: bool,
    /// The target's OSN handle, when one is planted — repeated doxes about
    /// the same target share this (§7.3).
    pub target_handle: Option<String>,
    /// A deliberately tricky benign document (e.g. civic mobilization
    /// language, the paper's false-positive example in §5.4).
    pub hard_negative: bool,
}

/// One synthetic platform document.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Document {
    pub id: DocId,
    pub platform: Platform,
    /// The post body (text only, mirroring the paper's data handling).
    pub text: String,
    /// Pseudonymous author handle ("anonymous" on boards).
    pub author: String,
    /// Unix timestamp (seconds).
    pub timestamp: u64,
    /// Thread placement; `None` off-boards.
    pub thread: Option<ThreadRef>,
    /// Channel / board / blog / paste-site name.
    pub channel: String,
    /// Planted truth.
    pub truth: GroundTruth,
}

impl Document {
    /// Shorthand: true positive for the CTH task.
    pub fn is_cth(&self) -> bool {
        self.truth.is_cth
    }

    /// Shorthand: true positive for the dox task.
    pub fn is_dox(&self) -> bool {
        self.truth.is_dox
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn thread_ref_positions() {
        let first = ThreadRef {
            thread_id: 1,
            position: 0,
            thread_len: 10,
        };
        assert!(first.is_first());
        assert!(!first.is_last());
        assert_eq!(first.responses(), 9);

        let last = ThreadRef {
            thread_id: 1,
            position: 9,
            thread_len: 10,
        };
        assert!(last.is_last());
        assert_eq!(last.responses(), 0);

        let single = ThreadRef {
            thread_id: 2,
            position: 0,
            thread_len: 1,
        };
        assert!(single.is_first() && single.is_last());
    }

    #[test]
    fn ground_truth_default_is_benign() {
        let t = GroundTruth::default();
        assert!(!t.is_cth && !t.is_dox);
        assert!(t.labels.is_empty());
        assert_eq!(t.gender, Gender::Unknown);
        assert!(t.pii.is_empty());
        assert!(t.target_handle.is_none());
    }

    #[test]
    fn document_serde_roundtrip() {
        let doc = Document {
            id: DocId(7),
            platform: Platform::Boards,
            text: "hello thread".to_string(),
            author: "anonymous".to_string(),
            timestamp: 1_500_000_000,
            thread: Some(ThreadRef {
                thread_id: 3,
                position: 2,
                thread_len: 5,
            }),
            channel: "b".to_string(),
            truth: GroundTruth::default(),
        };
        let json = serde_json::to_string(&doc).unwrap();
        let back: Document = serde_json::from_str(&json).unwrap();
        assert_eq!(back.id, doc.id);
        assert_eq!(back.thread, doc.thread);
        assert_eq!(back.text, doc.text);
    }
}
