//! "Soft" doxes: documents that expose a target without any of the twelve
//! extractable PII families.
//!
//! §7.2: "more than 50 % of the Discord samples did not contain any harm
//! risk indicators. Manual analysis showed that doxes in this data set
//! included other types of PII not included in our extraction pipeline,
//! such as birthday, age or nicknames." This module generates exactly that
//! shape — chat-register doxes built from nicknames, ages, birthdays,
//! school/guild affiliations — so the Figure 2 Discord observation
//! reproduces.

use crate::pii_gen::Identity;
use rand::rngs::StdRng;
use rand::Rng;

const MONTHS: &[&str] = &[
    "january",
    "february",
    "march",
    "april",
    "may",
    "june",
    "july",
    "august",
    "september",
    "october",
    "november",
    "december",
];

const AFFILIATIONS: &[&str] = &[
    "plays on the midnight server",
    "mods the frog discord",
    "raids with the iron guild",
    "used to admin the meme channel",
    "runs the vc every friday",
    "is in the eu timezone crew",
];

/// A chat-register dox exposing only non-extractable personal details.
pub fn soft_dox_text(id: &Identity, rng: &mut StdRng) -> String {
    let nickname = format!(
        "{}{}",
        &id.first_name[..1].to_uppercase(),
        &id.first_name[1..]
    );
    let age = rng.gen_range(16..40);
    let month = MONTHS[rng.gen_range(0..MONTHS.len())];
    let day = rng.gen_range(1..29);
    let affiliation = AFFILIATIONS[rng.gen_range(0..AFFILIATIONS.len())];
    let lines = [
        format!(
            "so about {nickname} aka {} {}: real age is {age}, birthday {month} {day}",
            id.first_name, id.last_name
        ),
        format!(
            "{} {affiliation}, everyone should know who they are dealing with",
            nickname
        ),
        format!(
            "goes by {nickname}, {}_{} on the old server, {age} years old",
            id.first_name, id.last_name
        ),
    ];
    lines[rng.gen_range(0..lines.len())].clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pii_gen::identity;
    use rand::SeedableRng;

    #[test]
    fn soft_dox_names_the_target() {
        let mut rng = StdRng::seed_from_u64(8);
        let id = identity(&mut rng);
        let text = soft_dox_text(&id, &mut rng);
        assert!(
            text.contains(&id.first_name) || text.contains(&id.last_name),
            "{text}"
        );
    }

    #[test]
    fn soft_dox_has_no_extractable_pii_markers() {
        let mut rng = StdRng::seed_from_u64(8);
        let id = identity(&mut rng);
        for _ in 0..50 {
            let text = soft_dox_text(&id, &mut rng);
            assert!(!text.contains("555-01"), "{text}");
            assert!(!text.contains("@example"), "{text}");
            assert!(!text.contains("facebook"), "{text}");
        }
    }

    #[test]
    fn soft_dox_varies() {
        let mut rng = StdRng::seed_from_u64(8);
        let id = identity(&mut rng);
        let texts: std::collections::HashSet<String> =
            (0..30).map(|_| soft_dox_text(&id, &mut rng)).collect();
        assert!(texts.len() > 5);
    }
}
