//! Corpus-generation configuration.

use incite_taxonomy::calibration;
use incite_taxonomy::Platform;
use serde::{Deserialize, Serialize};

/// Parameters controlling synthetic-corpus generation.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct CorpusConfig {
    /// Master seed; everything downstream forks from it.
    pub seed: u64,
    /// Fraction of the paper's raw volume to generate (Table 1 × scale).
    /// The default 1/1000 yields ≈ 560 K documents.
    pub scale: f64,
    /// Separate volume scale for the blogs platform. Blogs are small in
    /// absolute terms (115 K posts) but their Table 8 ratios (posts :
    /// relevant : doxes) only survive if blog volume does not shrink with
    /// the main corpus scale; The Torch (93 posts) is always generated in
    /// full.
    pub blog_scale: f64,
    /// Multiplier on the planted positive counts (1.0 = the paper's
    /// annotated counts exactly; smaller for fast tests).
    pub positive_scale: f64,
    /// Fraction of benign documents that are *hard negatives* (civic
    /// mobilization, bug-report chatter, SQL dumps on pastes) designed to
    /// stress the classifiers as §5.4 describes.
    pub hard_negative_rate: f64,
    /// Mean board-thread length (thread sizes are log-normal; the paper's
    /// Figure 5 runs 1 to >10³).
    pub mean_thread_len: f64,
    /// Fraction of planted doxes that repeat an earlier target's OSN handle
    /// (§7.3 finds 11.12 % duplicates inside the annotated set).
    pub repeated_dox_rate: f64,
    /// Fraction of board CTH planted in a thread that also carries a dox
    /// (§6.3 measures 8.53 %).
    pub cth_dox_thread_overlap: f64,
}

impl Default for CorpusConfig {
    fn default() -> Self {
        CorpusConfig {
            seed: 0x001c_17e5,
            scale: 1.0 / 1000.0,
            blog_scale: 0.1,
            positive_scale: 1.0,
            hard_negative_rate: 0.01,
            mean_thread_len: 60.0,
            // §7.3: 20.1 % of above-threshold doxes repeat a target; only
            // those whose doxes share an extracted OSN handle are
            // *linkable* (≈ 11 %, the paper's annotated-set duplicate rate).
            repeated_dox_rate: 0.201,
            cth_dox_thread_overlap: 0.0853,
        }
    }
}

impl CorpusConfig {
    /// A small configuration for unit tests and examples: ~1/100 000 of the
    /// paper's volume with positives scaled to ~2 %.
    pub fn tiny(seed: u64) -> Self {
        CorpusConfig {
            seed,
            scale: 1.0 / 100_000.0,
            blog_scale: 0.005,
            positive_scale: 0.02,
            ..Default::default()
        }
    }

    /// A medium configuration for integration tests: ~1/10 000 volume,
    /// positives at 10 %.
    pub fn small(seed: u64) -> Self {
        CorpusConfig {
            seed,
            scale: 1.0 / 10_000.0,
            blog_scale: 0.02,
            positive_scale: 0.10,
            ..Default::default()
        }
    }

    /// Number of benign documents to generate for a platform
    /// (Table 1 volume × scale, with chat split 30/70 Discord/Telegram to
    /// reflect the paper's channel counts).
    pub fn benign_count(&self, platform: Platform) -> usize {
        let (raw, scale) = match platform {
            Platform::Boards => (calibration::TABLE1[0].posts as f64, self.scale),
            Platform::Blogs => (calibration::TABLE1[1].posts as f64, self.blog_scale),
            Platform::Discord => (calibration::TABLE1[2].posts as f64 * 0.3, self.scale),
            Platform::Telegram => (calibration::TABLE1[2].posts as f64 * 0.7, self.scale),
            Platform::Gab => (calibration::TABLE1[3].posts as f64, self.scale),
            Platform::Pastes => (calibration::TABLE1[4].posts as f64, self.scale),
        };
        ((raw * scale).round() as usize).max(10)
    }

    /// Number of CTH positives to plant for a platform (Table 4 true
    /// positives × positive_scale).
    pub fn cth_count(&self, platform: Platform) -> usize {
        let base = match platform {
            Platform::Boards => 2_045.0,
            Platform::Discord => 510.0,
            Platform::Telegram => 2_364.0,
            Platform::Gab => 1_335.0,
            Platform::Pastes | Platform::Blogs => 0.0,
        };
        (base * self.positive_scale).round() as usize
    }

    /// Number of dox positives to plant for a platform (Table 4 true
    /// positives × positive_scale). Blogs get the Table 8 "actual doxes".
    pub fn dox_count(&self, platform: Platform) -> usize {
        let base = match platform {
            Platform::Boards => 2_549.0,
            Platform::Discord => 153.0,
            Platform::Telegram => 948.0,
            Platform::Gab => 1_657.0,
            Platform::Pastes => 3_118.0,
            Platform::Blogs => 179.0, // 90 + 66 + 23 (Table 8)
        };
        (base * self.positive_scale).round() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_scale_produces_paper_shape() {
        let c = CorpusConfig::default();
        // Boards dominate raw volume, pastes are smallest of the big four.
        let boards = c.benign_count(Platform::Boards);
        let pastes = c.benign_count(Platform::Pastes);
        let blogs = c.benign_count(Platform::Blogs);
        assert!(boards > pastes && pastes > blogs);
        assert_eq!(boards, 405_943);
        assert_eq!(blogs, 11_505); // 115,052 × blog_scale 0.1
    }

    #[test]
    fn positives_match_table4_at_unit_scale() {
        let c = CorpusConfig::default();
        let total_cth: usize = Platform::ALL.iter().map(|p| c.cth_count(*p)).sum();
        assert_eq!(total_cth, 6_254);
        let total_dox: usize = Platform::ALL.iter().map(|p| c.dox_count(*p)).sum::<usize>()
            - c.dox_count(Platform::Blogs);
        assert_eq!(total_dox, 8_425);
    }

    #[test]
    fn pastes_and_blogs_have_no_cth_task() {
        let c = CorpusConfig::default();
        assert_eq!(c.cth_count(Platform::Pastes), 0);
        assert_eq!(c.cth_count(Platform::Blogs), 0);
    }

    #[test]
    fn tiny_config_is_small() {
        let c = CorpusConfig::tiny(1);
        let total: usize = Platform::ALL.iter().map(|p| c.benign_count(*p)).sum();
        assert!(total < 10_000, "tiny corpus too big: {total}");
    }

    #[test]
    fn benign_count_has_floor() {
        let c = CorpusConfig {
            scale: 1e-12,
            ..Default::default()
        };
        for p in Platform::ALL {
            assert!(c.benign_count(p) >= 10);
        }
    }
}
