//! Crawler-coverage simulation (§4).
//!
//! The paper's data collection is explicit about its blind spots: paste
//! sites expose "rate-limited APIs that enable collection of all new posts,
//! but old posts are only accessible with the random post ID number …
//! crawlers for these data sources have been running for several years to
//! actively collect data, and are assumed to be incomplete", and boards
//! "archive old threads in a way that makes it difficult to browse
//! historical data". This module models that observation process: given a
//! full corpus, it returns the subset a crawler starting at `crawl_start`
//! would actually have collected, so downstream experiments can quantify
//! coverage bias.

use crate::document::Document;
use crate::error::CorpusError;
use crate::generator::Corpus;
use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Crawl-process parameters.
#[derive(Debug, Clone, Copy)]
pub struct CrawlConfig {
    /// Unix time the crawler came online. Everything posted after this is
    /// collected (new-post feeds); older material is back-filled lossily.
    pub crawl_start: u64,
    /// Probability of recovering an *old* paste (random-ID probing).
    pub paste_backfill: f64,
    /// Probability of recovering an *old* board post (archive scraping).
    pub board_backfill: f64,
    /// Sampling seed.
    pub seed: u64,
}

impl Default for CrawlConfig {
    fn default() -> Self {
        CrawlConfig {
            crawl_start: 1_480_000_000, // late 2016, mid-observation
            paste_backfill: 0.35,
            board_backfill: 0.60,
            seed: 0xc4a31,
        }
    }
}

/// Per-platform coverage accounting.
#[derive(Debug, Clone, Default)]
pub struct CrawlStats {
    pub total: usize,
    pub collected: usize,
    /// Documents lost because they predate the crawl and were not
    /// back-filled.
    pub missed_old: usize,
}

impl CrawlStats {
    /// Fraction of documents observed.
    pub fn coverage(&self) -> f64 {
        if self.total == 0 {
            1.0
        } else {
            self.collected as f64 / self.total as f64
        }
    }
}

/// Simulates the crawl over a corpus: returns the observed documents (in
/// original order) and per-platform coverage statistics. A document whose
/// platform is missing from the stats table (a malformed platform list)
/// is a typed refusal, not a panic.
#[allow(clippy::type_complexity)]
pub fn simulate_crawl<'c>(
    corpus: &'c Corpus,
    config: &CrawlConfig,
) -> Result<(Vec<&'c Document>, Vec<(Platform, CrawlStats)>), CorpusError> {
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut stats: Vec<(Platform, CrawlStats)> = Platform::ALL
        .iter()
        .map(|p| (*p, CrawlStats::default()))
        .collect();
    let mut observed = Vec::new();

    for doc in &corpus.documents {
        let entry = &mut stats
            .iter_mut()
            .find(|(p, _)| *p == doc.platform)
            .ok_or(CorpusError::PlatformMissing {
                platform: doc.platform,
            })?
            .1;
        entry.total += 1;
        let collected = if doc.timestamp >= config.crawl_start {
            true // live feed
        } else {
            let backfill = match doc.platform {
                Platform::Pastes => config.paste_backfill,
                Platform::Boards => config.board_backfill,
                // Chat/Gab history is API-pageable; blogs stay online.
                _ => 1.0,
            };
            rng.gen_bool(backfill)
        };
        if collected {
            entry.collected += 1;
            observed.push(doc);
        } else {
            entry.missed_old += 1;
        }
    }
    Ok((observed, stats))
}

/// Coverage for one platform out of a stats table; a platform absent from
/// the table is the same typed refusal as in [`simulate_crawl`].
pub fn coverage_for(
    stats: &[(Platform, CrawlStats)],
    platform: Platform,
) -> Result<f64, CorpusError> {
    stats
        .iter()
        .find(|(p, _)| *p == platform)
        .map(|(_, s)| s.coverage())
        .ok_or(CorpusError::PlatformMissing { platform })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::CorpusConfig;
    use crate::generator::generate;

    type TestResult = Result<(), CorpusError>;

    fn corpus() -> Corpus {
        generate(&CorpusConfig::small(0xc4a31))
    }

    #[test]
    fn live_feed_documents_are_always_collected() -> TestResult {
        let corpus = corpus();
        let config = CrawlConfig {
            paste_backfill: 0.0,
            board_backfill: 0.0,
            ..Default::default()
        };
        let (observed, _) = simulate_crawl(&corpus, &config)?;
        for d in &observed {
            if d.platform == Platform::Pastes || d.platform == Platform::Boards {
                assert!(d.timestamp >= config.crawl_start);
            }
        }
        // And every post-start document IS collected.
        let expected = corpus
            .documents
            .iter()
            .filter(|d| match d.platform {
                Platform::Pastes | Platform::Boards => d.timestamp >= config.crawl_start,
                _ => true,
            })
            .count();
        assert_eq!(observed.len(), expected);
        Ok(())
    }

    #[test]
    fn paste_coverage_is_worst() -> TestResult {
        // §4: paste history is the hardest to recover.
        let corpus = corpus();
        let (_, stats) = simulate_crawl(&corpus, &CrawlConfig::default())?;
        let get = |p: Platform| coverage_for(&stats, p);
        assert!(
            get(Platform::Pastes)? < get(Platform::Boards)?,
            "pastes should trail boards"
        );
        assert!(get(Platform::Boards)? < 1.0);
        assert!((get(Platform::Gab)? - 1.0).abs() < 1e-12);
        assert!(
            get(Platform::Pastes)? > 0.3,
            "backfill still recovers something"
        );
        Ok(())
    }

    #[test]
    fn coverage_for_missing_platform_is_typed() {
        // A truncated stats table refuses with the platform's identity.
        let stats = vec![(Platform::Gab, CrawlStats::default())];
        let err = coverage_for(&stats, Platform::Pastes);
        assert_eq!(
            err,
            Err(CorpusError::PlatformMissing {
                platform: Platform::Pastes
            })
        );
    }

    #[test]
    fn stats_are_consistent() -> TestResult {
        let corpus = corpus();
        let (observed, stats) = simulate_crawl(&corpus, &CrawlConfig::default())?;
        let total: usize = stats.iter().map(|(_, s)| s.total).sum();
        let collected: usize = stats.iter().map(|(_, s)| s.collected).sum();
        assert_eq!(total, corpus.len());
        assert_eq!(collected, observed.len());
        for (_, s) in &stats {
            assert_eq!(s.total, s.collected + s.missed_old);
        }
        Ok(())
    }

    #[test]
    fn crawl_is_seed_deterministic() -> TestResult {
        let corpus = corpus();
        let (a, _) = simulate_crawl(&corpus, &CrawlConfig::default())?;
        let (b, _) = simulate_crawl(&corpus, &CrawlConfig::default())?;
        assert_eq!(a.len(), b.len());
        assert!(a.iter().zip(&b).all(|(x, y)| x.id == y.id));
        Ok(())
    }
}
