//! Call-to-harassment text generation.
//!
//! Produces mobilizing posts whose phrasing follows the paper's taxonomy
//! examples (§6.1.1): a mobilizing clause ("we need to", "lets", …), a
//! gendered target reference, and one attack-specific clause per label in
//! the planted [`LabelSet`]. The mobilizing and target vocabulary overlaps
//! with the Figure 4 bootstrap query so the keyword stage can find a seed
//! set, exactly as in the paper.

use crate::pii_gen::Identity;
use incite_taxonomy::{Gender, LabelSet, PiiKind, Subcategory};
use rand::rngs::StdRng;
use rand::Rng;

/// Mobilizing openers (mirrors the Figure 4 first clause).
const MOBILIZERS: &[&str] = &[
    "we need to",
    "we should",
    "lets",
    "we have to",
    "we will",
    "everyone needs to",
    "we",
];

fn pick<'a>(rng: &mut StdRng, options: &[&'a str]) -> &'a str {
    options[rng.gen_range(0..options.len())]
}

fn pronouns(gender: Gender) -> (&'static str, &'static str, &'static str) {
    // (subject, object, possessive)
    match gender {
        Gender::Male => ("he", "him", "his"),
        Gender::Female => ("she", "her", "her"),
        Gender::Unknown => ("they", "them", "their"),
    }
}

/// One attack-specific clause for a subcategory.
fn clause(sub: Subcategory, gender: Gender, rng: &mut StdRng) -> String {
    let (subj, obj, poss) = pronouns(gender);
    use Subcategory::*;
    let options: Vec<String> = match sub {
        Doxing => vec![
            format!("dig up {poss} phone number and address and post it here"),
            format!("dox {obj}, full name and workplace, drop everything"),
            format!("find where {subj} lives and share {poss} info"),
        ],
        LeakedChatsProfile => vec![
            format!("match {obj} against the leaked chat logs and post the profile"),
            format!("{poss} username is all over the leaked server logs, connect the dots"),
        ],
        NonConsensualMediaExposure => vec![
            format!("leak {poss} private pictures to everyone {subj} knows"),
            format!("send {poss} private videos to {poss} family"),
        ],
        OutingDeadnaming => vec![format!(
            "post {poss} old name everywhere so people know who {subj} really is"
        )],
        DoxPropagation => vec![
            format!("the dox is already out there, spread {poss} info to every channel"),
            format!("repost the dox of {obj} before it gets taken down"),
        ],
        ContentLeakageMisc => vec![format!("leak everything you can find about {obj}")],
        ImpersonatedProfiles => vec![
            format!("make fake accounts in {poss} name and post garbage"),
            format!("set up a parody profile pretending to be {obj}"),
        ],
        SyntheticPornography => vec![format!(
            "make deep fakes of {obj} and send them to {poss} friends and family"
        )],
        ImpersonationMisc => vec![format!("pretend to be {obj} online and ruin {poss} name")],
        AccountLockout => vec![
            format!("phish {poss} email and lock {obj} out of everything"),
            format!("get into {poss} account and change the password"),
        ],
        LockoutMisc => vec![format!("take over {poss} accounts however you can")],
        NegativeRatingsReviews => vec![
            format!("one star {poss} business page until the rating tanks"),
            format!("flood {poss} shop with bad reviews"),
        ],
        Raiding => vec![
            format!("raid {poss} stream tonight, bring everyone"),
            format!("brigade the comments on {poss} channel until {subj} quits"),
            format!("zoombomb {poss} call, the link is public"),
        ],
        Spamming => vec![
            format!("spam {poss} inbox with hate until {subj} logs off"),
            format!("post {poss} accounts so we can spam {obj} nonstop"),
        ],
        OverloadingMisc => vec![format!("flood {obj} with notifications on every app")],
        HashtagHijacking => vec![
            format!("hijack {poss} hashtag and derail it, use our tags on every post"),
            "push our tag onto their hashtag until the message drowns".to_string(),
        ],
        PublicOpinionManipulationMisc => vec![
            format!("keep pushing the story about {obj} until people believe it"),
            "spread the narrative everywhere, repetition makes it real".to_string(),
        ],
        FalseReportingToAuthorities => vec![
            format!("report {obj} to immigration, {subj} will have a bad week"),
            format!("call {poss} employer and report {obj} for things hr cannot ignore"),
            format!("swat {obj}, you know the address"),
            format!("report {obj} to the police for stuff {subj} never did"),
        ],
        MassFlagging => vec![
            format!("mass report {poss} twitter and youtube until the accounts are gone"),
            format!("everyone flag {poss} videos for policy violations"),
            format!("mass flag {poss} channel, the platform will fold"),
        ],
        ReportingMisc => vec![format!("report {obj} everywhere {subj} holds an account")],
        ReputationalHarmPrivate => vec![
            format!("message {poss} family and employer about what {subj} posted"),
            format!("email {poss} boss the screenshots"),
        ],
        ReputationalHarmPublic => vec![
            format!("tell {poss} neighbours what {subj} believes, flyers work"),
            format!("post about {obj} publicly so the whole town knows"),
        ],
        ReputationalHarmMisc => vec![format!("make sure {poss} reputation never recovers")],
        StalkingOrTracking => vec![
            format!("follow {obj} and post where {subj} goes, stick trackers if you can"),
            format!("watch {poss} house and report back"),
        ],
        SurveillanceMisc => vec![format!("keep tabs on {obj} around the clock")],
        HateSpeech => vec![
            format!("message {obj} slurs off platform until {subj} breaks"),
            format!("fill {poss} mentions with the worst you have"),
        ],
        UnwantedExplicitContent => {
            vec![format!("send {obj} explicit images {subj} never asked for")]
        }
        ToxicContentMisc => vec![format!("make every reply {subj} gets a nightmare")],
        GenericCall => vec![
            format!("bully {obj} until {subj} leaves the internet"),
            format!("blackmail {obj}, use whatever leverage you find"),
            format!("make {poss} life miserable, all of us together"),
        ],
    };
    options[rng.gen_range(0..options.len())].clone()
}

/// Fraction of calls to harassment that are obfuscated: harassment
/// communities evade keyword filters with creative spellings and
/// camouflage, which is exactly why the paper needed a trained classifier
/// over a keyword query.
pub const OBFUSCATION_RATE: f64 = 0.25;

/// Leetspeak / evasive-spelling substitutions applied to attack verbs.
const LEET: &[(&str, &str)] = &[
    ("report", "rep0rt"),
    ("raid", "r4id"),
    ("dox", "d0x"),
    ("flag", "fl4g"),
    ("spam", "sp4m"),
    ("mass", "m4ss"),
    ("stream", "str3am"),
];

/// Camouflage sentences wrapped around obfuscated calls.
const CAMOUFLAGE: &[&str] = &[
    "anyway back to the game thread after this",
    "mods asleep, perfect timing",
    "you all know the drill from last time",
    "keep it off the main channel",
];

/// Applies one evasion transform to a call-to-harassment body.
fn obfuscate(text: String, rng: &mut StdRng) -> String {
    match rng.gen_range(0..3u8) {
        // Leetspeak on one attack verb.
        0 => {
            let mut out = text;
            let (from, to) = LEET[rng.gen_range(0..LEET.len())];
            if out.contains(from) {
                out = out.replacen(from, to, 1);
            }
            out
        }
        // Drop the mobilizing preamble: the call is implicit.
        1 => match text.split_once(' ') {
            Some((first, rest)) if MOBILIZERS.iter().any(|m| m.starts_with(first)) => {
                rest.to_string()
            }
            _ => text,
        },
        // Bury the call in benign camouflage.
        _ => {
            let camo = CAMOUFLAGE[rng.gen_range(0..CAMOUFLAGE.len())];
            if rng.gen_bool(0.5) {
                format!("{camo}. {text}")
            } else {
                format!("{text}. {camo}")
            }
        }
    }
}

/// Generates a call-to-harassment body for a label set and target gender.
/// When `identity` is provided, the target's PII (one kind per listed
/// [`PiiKind`]) is embedded — producing the CTH ∩ dox overlap documents.
/// A quarter of calls are obfuscated (leetspeak, implicit phrasing, or
/// camouflage) per [`OBFUSCATION_RATE`].
pub fn cth_text(
    labels: LabelSet,
    gender: Gender,
    identity: Option<(&Identity, &[PiiKind])>,
    rng: &mut StdRng,
) -> String {
    let mobilizer = pick(rng, MOBILIZERS);
    let mut parts: Vec<String> = Vec::new();
    for (i, sub) in labels.iter().enumerate() {
        let c = clause(sub, gender, rng);
        if i == 0 {
            parts.push(format!("{mobilizer} {c}"));
        } else {
            let joiner = pick(rng, &["and then", "also", "after that", "plus"]);
            parts.push(format!("{joiner} {c}"));
        }
    }
    let mut text = parts.join(", ");
    if rng.gen_bool(OBFUSCATION_RATE) {
        text = obfuscate(text, rng);
    }
    if let Some((id, kinds)) = identity {
        let mut lines = vec![text];
        lines.push(format!("target: {} {}", id.first_name, id.last_name));
        for (i, kind) in kinds.iter().enumerate() {
            lines.push(id.pii_text(*kind, i));
        }
        text = lines.join("\n");
    }
    text
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pii_gen::identity;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(13)
    }

    #[test]
    fn every_subcategory_produces_text() {
        let mut r = rng();
        for sub in Subcategory::ALL {
            let text = cth_text(LabelSet::single(sub), Gender::Male, None, &mut r);
            assert!(!text.is_empty(), "{sub}");
        }
    }

    #[test]
    fn mobilizing_language_usually_present() {
        let mut r = rng();
        let with_mobilizer = (0..200)
            .filter(|_| {
                let text = cth_text(
                    LabelSet::single(Subcategory::MassFlagging),
                    Gender::Unknown,
                    None,
                    &mut r,
                );
                MOBILIZERS.iter().any(|m| text.contains(m))
            })
            .count();
        // ~75 % plain + camouflaged/leet variants that keep the mobilizer;
        // only the "implicit" obfuscation removes it.
        assert!(
            with_mobilizer > 140,
            "only {with_mobilizer}/200 kept a mobilizer"
        );
        assert!(with_mobilizer < 200, "obfuscation never fired");
    }

    #[test]
    fn obfuscation_produces_leetspeak_sometimes() {
        let mut r = rng();
        let leet_seen = (0..400).any(|_| {
            let text = cth_text(
                LabelSet::single(Subcategory::MassFlagging),
                Gender::Unknown,
                None,
                &mut r,
            );
            text.contains("rep0rt") || text.contains("fl4g") || text.contains("m4ss")
        });
        assert!(leet_seen, "no leetspeak variant in 400 draws");
    }

    #[test]
    fn gendered_pronouns_match_target() {
        let mut r = rng();
        let male = cth_text(
            LabelSet::single(Subcategory::Doxing),
            Gender::Male,
            None,
            &mut r,
        );
        assert!(
            male.contains("his") || male.contains("him") || male.contains("he"),
            "{male}"
        );
        let female = cth_text(
            LabelSet::single(Subcategory::Doxing),
            Gender::Female,
            None,
            &mut r,
        );
        assert!(female.contains("her") || female.contains("she"), "{female}");
    }

    #[test]
    fn multi_label_produces_multiple_clauses() {
        let mut r = rng();
        let labels = LabelSet::from_iter([Subcategory::MassFlagging, Subcategory::Raiding]);
        let text = cth_text(labels, Gender::Unknown, None, &mut r);
        // Two clauses joined with a connective.
        assert!(text.contains(','), "{text}");
        assert!(text.len() > 40);
    }

    #[test]
    fn embedded_identity_adds_pii_lines() {
        let mut r = rng();
        let id = identity(&mut r);
        let text = cth_text(
            LabelSet::single(Subcategory::Doxing),
            Gender::Male,
            Some((&id, &[PiiKind::Phone, PiiKind::Address])),
            &mut r,
        );
        assert!(text.contains("555-01"), "{text}");
        assert!(text.contains(&id.first_name), "{text}");
        assert!(text.lines().count() >= 3);
    }

    #[test]
    fn texts_vary_across_draws() {
        let mut r = rng();
        let texts: std::collections::HashSet<String> = (0..60)
            .map(|_| {
                cth_text(
                    LabelSet::single(Subcategory::FalseReportingToAuthorities),
                    Gender::Male,
                    None,
                    &mut r,
                )
            })
            .collect();
        assert!(texts.len() > 10, "only {} variants", texts.len());
    }
}
