//! Typed corpus errors.
//!
//! The corpus crate's lookups over per-platform tables used to panic on a
//! malformed table (`.expect("platform present")`); a crawler simulation
//! fed a corrupt platform list should refuse with a typed error instead,
//! keeping the panic-free contract honest for every caller. Variants carry
//! identifiers only — never document text (INC013).

use incite_taxonomy::Platform;

/// A structural error in corpus data or its derived tables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CorpusError {
    /// A document names a platform missing from a per-platform table.
    PlatformMissing { platform: Platform },
    /// A document that must carry a thread reference does not.
    ThreadMissing { doc_id: u64 },
}

impl std::fmt::Display for CorpusError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CorpusError::PlatformMissing { platform } => {
                write!(f, "platform `{}` missing from platform table", platform)
            }
            CorpusError::ThreadMissing { doc_id } => {
                write!(f, "document {doc_id} carries no thread reference")
            }
        }
    }
}

impl std::error::Error for CorpusError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_render_identifiers_only() {
        let e = CorpusError::PlatformMissing {
            platform: Platform::Gab,
        };
        assert!(e.to_string().contains("missing from platform table"));
        let e = CorpusError::ThreadMissing { doc_id: 7 };
        assert!(e.to_string().contains("document 7"));
    }
}
