//! # incite-corpus
//!
//! Synthetic five-platform corpus generation — the stand-in for the paper's
//! proprietary threat-intelligence crawls (Table 1; see DESIGN.md §2 for the
//! substitution rationale).
//!
//! The generator plants ground-truth calls to harassment and doxes whose
//! attack-type (Tables 5/11), gender (Table 10) and PII (Table 6)
//! distributions are drawn from the paper's published numbers
//! ([`incite_taxonomy::calibration`]). Planted positives are kept at the
//! paper's **absolute annotated counts** while benign volume scales with
//! [`CorpusConfig::scale`]; this keeps the downstream characterization
//! tables directly comparable to the paper at any corpus scale
//! (EXPERIMENTS.md documents the consequences).
//!
//! Everything is deterministic given [`CorpusConfig::seed`]. **No real data
//! is used anywhere**: names, handles, addresses, phone numbers (reserved
//! 555 exchange), SSNs (invalid 000 area) and card numbers (test IINs) are
//! all synthesized.
//!
//! Modules:
//! * [`document`] — the document model and planted ground truth.
//! * [`error`] — typed structural errors ([`CorpusError`]).
//! * [`config`] — generation parameters.
//! * [`pii_gen`] — synthetic-PII factory.
//! * [`textgen`] — benign platform chatter.
//! * [`cth_gen`] / [`dox_gen`] — positive-document generators.
//! * [`labels`] — calibrated sampling of label sets, genders, PII profiles.
//! * [`platforms`] — per-platform structure (board threads, chat channels,
//!   pastes, Gab posts, blog posts).
//! * [`generator`] — the orchestrator producing a [`Corpus`].
//! * [`jsonl`] — JSONL import/export.

pub mod config;
pub mod crawl;
pub mod cth_gen;
pub mod document;
pub mod dox_gen;
pub mod error;
pub mod generator;
pub mod jsonl;
pub mod labels;
pub mod markov;
pub mod pii_gen;
pub mod platforms;
pub mod soft_dox;
pub mod textgen;

pub use config::CorpusConfig;
pub use document::{DocId, Document, GroundTruth, ThreadRef};
pub use error::CorpusError;
pub use generator::{generate, Corpus};
pub use jsonl::{
    read_jsonl, read_jsonl_quarantine, redact_excerpt, write_jsonl, JsonlError, QuarantineStats,
};
