//! Per-platform structural models: thread sizes, channels, timestamps.

use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::Rng;

/// Board names in the style of the 43 imageboard domains (synthetic).
pub const BOARD_NAMES: &[&str] = &["b", "pol", "x", "vg", "int", "r9k", "news", "biz"];

/// Synthetic chat channel names (the paper's chat data covers 2,916
/// Telegram channels plus curated Discord servers).
pub const CHAT_CHANNELS: &[&str] = &[
    "general",
    "frog-pond",
    "the-bunker",
    "meme-forge",
    "night-watch",
    "raid-planning",
    "offtopic",
    "announcements",
    "vetting",
    "archive",
];

/// Synthetic paste-site domains (the paper covers 41).
pub const PASTE_SITES: &[&str] = &[
    "pastehole.example",
    "textdrop.example",
    "snipbin.example",
    "dumpyard.example",
];

/// The three blog profiles of §8.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Blog {
    DailyStormer,
    NoBlogs,
    Torch,
}

impl Blog {
    pub const ALL: [Blog; 3] = [Blog::DailyStormer, Blog::NoBlogs, Blog::Torch];

    /// Display name matching Table 8.
    pub fn name(self) -> &'static str {
        match self {
            Blog::DailyStormer => "Daily Stormer",
            Blog::NoBlogs => "NoBlogs",
            Blog::Torch => "The Torch",
        }
    }

    /// Channel slug used on documents.
    pub fn slug(self) -> &'static str {
        match self {
            Blog::DailyStormer => "daily_stormer",
            Blog::NoBlogs => "noblogs",
            Blog::Torch => "the_torch",
        }
    }

    /// Share of total blog posts (Table 8: 36,851 / 78,108 / 93).
    pub fn post_share(self) -> f64 {
        match self {
            Blog::DailyStormer => 36_851.0 / 115_052.0,
            Blog::NoBlogs => 78_108.0 / 115_052.0,
            Blog::Torch => 93.0 / 115_052.0,
        }
    }

    /// Share of blog doxes (Table 8 actual doxes: 90 / 66 / 23).
    pub fn dox_share(self) -> f64 {
        match self {
            Blog::DailyStormer => 90.0 / 179.0,
            Blog::NoBlogs => 66.0 / 179.0,
            Blog::Torch => 23.0 / 179.0,
        }
    }
}

/// Samples a board-thread length from a log-normal distribution with the
/// given mean; clamped to `[1, 5000]`. Figure 5's x-axis runs 10⁰–10³⁺.
pub fn thread_len(mean: f64, rng: &mut StdRng) -> u32 {
    // Log-normal via Box–Muller; sigma chosen so the tail reaches >10^3.
    let sigma: f64 = 1.1;
    let mu = mean.max(2.0).ln() - sigma * sigma / 2.0;
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
    let len = (mu + sigma * z).exp();
    len.round().clamp(1.0, 5000.0) as u32
}

/// Platform posting-era bounds (unix seconds), matching Table 1 date ranges.
pub fn time_range(platform: Platform) -> (u64, u64) {
    match platform {
        Platform::Boards => (992_476_800, 1_596_240_000), // 2001-06-14 .. 2020-08-01
        Platform::Blogs => (924_825_600, 1_597_363_200),  // 1999-04-23 .. 2020-08-14
        Platform::Discord | Platform::Telegram => (1_442_793_600, 1_596_240_000), // 2015-09-21 ..
        Platform::Gab => (1_470_787_200, 1_596_240_000),  // 2016-08-10 ..
        Platform::Pastes => (1_206_144_000, 1_596_240_000), // 2008-03-22 ..
    }
}

/// Samples a timestamp inside the platform's era.
pub fn timestamp(platform: Platform, rng: &mut StdRng) -> u64 {
    let (lo, hi) = time_range(platform);
    rng.gen_range(lo..hi)
}

/// Samples a recency-skewed timestamp: coordinated-harassment volume grew
/// over the observation window ("attack strategies … have evolved over
/// time", §1; §9.2 proposes longitudinal analysis), so planted positives
/// cluster toward the era's end. Uses the max of two uniforms (linear
/// density in time).
pub fn timestamp_recent(platform: Platform, rng: &mut StdRng) -> u64 {
    let (lo, hi) = time_range(platform);
    let a = rng.gen_range(lo..hi);
    let b = rng.gen_range(lo..hi);
    a.max(b)
}

/// A pseudonymous author handle; boards are anonymous.
pub fn author(platform: Platform, rng: &mut StdRng) -> String {
    if platform == Platform::Boards {
        return "anonymous".to_string();
    }
    const ADJ: &[&str] = &[
        "grim", "silent", "angry", "based", "lost", "iron", "pale", "wired",
    ];
    const NOUN: &[&str] = &[
        "wolf", "frog", "anon", "ghost", "raven", "serf", "baron", "node",
    ];
    format!(
        "{}{}{}",
        ADJ[rng.gen_range(0..ADJ.len())],
        NOUN[rng.gen_range(0..NOUN.len())],
        rng.gen_range(0..1000)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(17)
    }

    #[test]
    fn thread_lengths_are_bounded_and_heavy_tailed() {
        let mut r = rng();
        let lens: Vec<u32> = (0..20_000).map(|_| thread_len(60.0, &mut r)).collect();
        assert!(lens.iter().all(|&l| (1..=5000).contains(&l)));
        // Heavy tail: some threads exceed 10^3 (Figure 5's axis).
        assert!(lens.iter().any(|&l| l > 1000));
        // But the bulk is modest.
        let small = lens.iter().filter(|&&l| l <= 100).count();
        assert!(small as f64 / lens.len() as f64 > 0.5);
    }

    #[test]
    fn thread_len_mean_is_roughly_requested() {
        let mut r = rng();
        let n = 50_000;
        let total: u64 = (0..n).map(|_| thread_len(60.0, &mut r) as u64).sum();
        let mean = total as f64 / n as f64;
        assert!((mean - 60.0).abs() < 12.0, "mean = {mean}");
    }

    #[test]
    fn timestamps_respect_platform_eras() {
        let mut r = rng();
        for p in Platform::ALL {
            let (lo, hi) = time_range(p);
            for _ in 0..100 {
                let t = timestamp(p, &mut r);
                assert!((lo..hi).contains(&t), "{p}");
            }
        }
        // Gab's era starts later than boards'.
        assert!(time_range(Platform::Gab).0 > time_range(Platform::Boards).0);
    }

    #[test]
    fn boards_are_anonymous() {
        let mut r = rng();
        assert_eq!(author(Platform::Boards, &mut r), "anonymous");
        assert_ne!(author(Platform::Gab, &mut r), "anonymous");
    }

    #[test]
    fn blog_shares_sum_to_one() {
        let posts: f64 = Blog::ALL.iter().map(|b| b.post_share()).sum();
        let doxes: f64 = Blog::ALL.iter().map(|b| b.dox_share()).sum();
        assert!((posts - 1.0).abs() < 1e-9);
        assert!((doxes - 1.0).abs() < 1e-9);
    }
}
