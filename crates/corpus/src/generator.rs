//! Corpus orchestration: builds the full five-platform synthetic corpus.

use crate::config::CorpusConfig;
use crate::cth_gen::cth_text;
use crate::document::{DocId, Document, GroundTruth, ThreadRef};
use crate::dox_gen::{blog_dox_text, dox_text, partial_dox_text, BlogStyle};
use crate::labels;
use crate::pii_gen::{identity, Identity};
use crate::platforms::{self, Blog};
use crate::textgen;
use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::{DataSet, Gender, LabelSet, PiiKind, Platform, Subcategory};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;

/// A generated corpus.
#[derive(Debug, Clone)]
pub struct Corpus {
    pub documents: Vec<Document>,
    pub config: CorpusConfig,
}

/// Table 1-style summary row for a generated corpus.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryRow {
    pub data_set: DataSet,
    pub posts: u64,
    pub min_timestamp: u64,
    pub max_timestamp: u64,
}

impl Corpus {
    /// Total number of documents.
    pub fn len(&self) -> usize {
        self.documents.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.documents.is_empty()
    }

    /// Documents from one platform.
    pub fn by_platform(&self, platform: Platform) -> impl Iterator<Item = &Document> {
        self.documents
            .iter()
            .filter(move |d| d.platform == platform)
    }

    /// Documents from one data set.
    pub fn by_data_set(&self, ds: DataSet) -> impl Iterator<Item = &Document> {
        self.documents
            .iter()
            .filter(move |d| d.platform.data_set() == ds)
    }

    /// Board threads: thread id → posts ordered by position. Documents
    /// without a thread reference (none on boards today, but imported
    /// corpora make no such promise) are skipped rather than unwrapped.
    pub fn threads(&self) -> HashMap<u64, Vec<&Document>> {
        let mut map: HashMap<u64, Vec<(u32, &Document)>> = HashMap::new();
        for doc in self.by_platform(Platform::Boards) {
            if let Some(t) = doc.thread {
                map.entry(t.thread_id).or_default().push((t.position, doc));
            }
        }
        map.into_iter()
            .map(|(id, mut posts)| {
                posts.sort_by_key(|(position, _)| *position);
                (id, posts.into_iter().map(|(_, d)| d).collect())
            })
            .collect()
    }

    /// Ground-truth positives for a task.
    pub fn true_cth(&self) -> impl Iterator<Item = &Document> {
        self.documents.iter().filter(|d| d.truth.is_cth)
    }

    /// Ground-truth doxes.
    pub fn true_doxes(&self) -> impl Iterator<Item = &Document> {
        self.documents.iter().filter(|d| d.truth.is_dox)
    }

    /// Table 1-style summary (posts + date range per data set).
    pub fn summary(&self) -> Vec<SummaryRow> {
        DataSet::ALL
            .iter()
            .map(|&ds| {
                let mut posts = 0u64;
                let mut min_ts = u64::MAX;
                let mut max_ts = 0u64;
                for d in self.by_data_set(ds) {
                    posts += 1;
                    min_ts = min_ts.min(d.timestamp);
                    max_ts = max_ts.max(d.timestamp);
                }
                SummaryRow {
                    data_set: ds,
                    posts,
                    min_timestamp: min_ts,
                    max_timestamp: max_ts,
                }
            })
            .collect()
    }
}

/// A pooled dox target: the identity plus the OSN kind its most recent dox
/// exposed (so a repeat can expose the *same* handle, which is what makes
/// the §7.3 linking work).
#[derive(Clone)]
struct PoolEntry {
    identity: Identity,
    last_osn: Option<PiiKind>,
}

/// Internal builder state.
struct Builder {
    docs: Vec<Document>,
    next_id: u64,
    next_thread: u64,
    /// Per-platform identity pools for repeated doxes.
    pools: HashMap<Platform, Vec<PoolEntry>>,
}

impl Builder {
    fn new() -> Self {
        Builder {
            docs: Vec::new(),
            next_id: 0,
            next_thread: 0,
            pools: HashMap::new(),
        }
    }

    fn id(&mut self) -> DocId {
        let id = DocId(self.next_id);
        self.next_id += 1;
        id
    }

    fn push(
        &mut self,
        platform: Platform,
        text: String,
        channel: String,
        thread: Option<ThreadRef>,
        truth: GroundTruth,
        rng: &mut StdRng,
    ) {
        let id = self.id();
        // Positives skew recent (§9.2 longitudinal extension).
        let timestamp = if truth.is_cth || truth.is_dox {
            platforms::timestamp_recent(platform, rng)
        } else {
            platforms::timestamp(platform, rng)
        };
        self.docs.push(Document {
            id,
            platform,
            text,
            author: platforms::author(platform, rng),
            timestamp,
            thread,
            channel,
            truth,
        });
    }

    /// Picks (or mints) an identity for a dox and finalizes its PII
    /// profile, honoring the repeated-dox rate, the 98 % same-platform bias
    /// (§7.3), and OSN-handle continuity for repeats.
    fn dox_identity_and_profile(
        &mut self,
        platform: Platform,
        ds: DataSet,
        config: &CorpusConfig,
        rng: &mut StdRng,
    ) -> (Identity, PiiSet) {
        let mut profile = labels::sample_pii_profile(ds, rng);
        let reuse = rng.gen_bool(config.repeated_dox_rate);
        if reuse {
            // 98 % from the same platform's pool; otherwise any platform.
            let source_platform = if rng.gen_bool(0.98) {
                platform
            } else {
                // Canonical platform order: HashMap iteration order is
                // per-process random and would break cross-process
                // reproducibility of the corpus.
                let others: Vec<Platform> = Platform::ALL
                    .iter()
                    .copied()
                    .filter(|p| *p != platform && self.pools.get(p).is_some_and(|v| !v.is_empty()))
                    .collect();
                if others.is_empty() {
                    platform
                } else {
                    others[rng.gen_range(0..others.len())]
                }
            };
            if let Some(pool) = self.pools.get_mut(&source_platform) {
                if !pool.is_empty() {
                    let idx = rng.gen_range(0..pool.len());
                    let entry = &mut pool[idx];
                    // Re-expose the target's known handle so the repeat is
                    // linkable by OSN PII.
                    if let Some(kind) = entry.last_osn {
                        profile.insert(kind);
                    } else {
                        entry.last_osn = profile.iter().find(|k| k.is_osn_profile());
                    }
                    return (entry.identity.clone(), profile);
                }
            }
        }
        let id = identity(rng);
        let last_osn = profile.iter().find(|k| k.is_osn_profile());
        self.pools.entry(platform).or_default().push(PoolEntry {
            identity: id.clone(),
            last_osn,
        });
        (id, profile)
    }
}

fn cth_truth(ds: DataSet, rng: &mut StdRng) -> (LabelSet, Gender) {
    let labels = labels::sample_label_set(ds, rng);
    let primary = labels.iter().next().unwrap_or(Subcategory::GenericCall);
    let gender = labels::sample_gender(primary, rng);
    (labels, gender)
}

/// Samples a thread position following the paper's first/last/interior
/// fractions.
fn plant_position(len: u32, first_frac: f64, last_frac: f64, rng: &mut StdRng) -> u32 {
    if len <= 1 {
        return 0;
    }
    let r: f64 = rng.gen();
    if r < first_frac {
        0
    } else if r < first_frac + last_frac {
        len - 1
    } else {
        rng.gen_range(1..len.saturating_sub(1).max(2))
    }
}

/// Generates the full corpus.
pub fn generate(config: &CorpusConfig) -> Corpus {
    // Spec mirrors of the INC005 lint: Table 1 fixes six crawl platforms
    // folded into five data-set families.
    debug_assert_eq!(Platform::ALL.len(), 6);
    debug_assert_eq!(DataSet::ALL.len(), 5);
    let mut b = Builder::new();
    let mut rng = StdRng::seed_from_u64(config.seed);

    generate_boards(&mut b, config, &mut rng);
    for platform in [Platform::Discord, Platform::Telegram, Platform::Gab] {
        generate_flat(&mut b, platform, config, &mut rng);
    }
    generate_pastes(&mut b, config, &mut rng);
    generate_blogs(&mut b, config, &mut rng);

    Corpus {
        documents: b.docs,
        config: config.clone(),
    }
}

/// Boards: threaded structure with planted CTH/dox positions and the
/// CTH ∩ dox thread overlap of §6.3.
fn generate_boards(b: &mut Builder, config: &CorpusConfig, rng: &mut StdRng) {
    let platform = Platform::Boards;
    let ds = DataSet::Boards;
    let benign_target = config.benign_count(platform);
    let n_cth = config.cth_count(platform);
    let n_dox = config.dox_count(platform);
    // §6.3: 95 posts flagged by both pipelines; scaled.
    let n_both = ((95.0 * config.positive_scale).round() as usize).min(n_cth);

    // Build thread skeletons until we cover the benign volume.
    let mut threads: Vec<u32> = Vec::new();
    let mut total: usize = 0;
    while total < benign_target {
        let len = platforms::thread_len(config.mean_thread_len, rng);
        threads.push(len);
        total += len as usize;
    }

    // Cumulative post counts for size-biased thread sampling: a random
    // *post* lives in a long thread proportionally more often, and planted
    // documents must follow the same post-level distribution as the random
    // baseline or every response-size comparison would be biased short.
    let cum: Vec<usize> = threads
        .iter()
        .scan(0usize, |acc, &len| {
            *acc += len as usize;
            Some(*acc)
        })
        .collect();
    let total_posts = *cum.last().unwrap_or(&0);
    let size_biased = |rng: &mut StdRng| -> usize {
        let target = rng.gen_range(0..total_posts.max(1));
        cum.partition_point(|&c| c <= target)
    };

    // Each planted positive occupies a (thread, position) slot.
    #[derive(Clone)]
    enum Plant {
        Cth {
            labels: LabelSet,
            gender: Gender,
            with_pii: bool,
        },
        Dox,
    }
    let mut slots: HashMap<(usize, u32), Plant> = HashMap::new();
    let mut dox_threads: Vec<usize> = Vec::new();

    // Split threads into two halves: doxes plant in one half and CTH in the
    // other, so thread-sharing between the two document kinds is *only* the
    // calibrated 8.53 % overlap (at reduced corpus scale chance collisions
    // would otherwise swamp it). The split is stratified by thread length —
    // sorted threads are assigned pairwise, one of each pair per half at
    // random — because a uniform split would let a single giant thread give
    // one half most of the posts and bias every size comparison.
    let dox_eligible: Vec<bool> = {
        let mut order: Vec<usize> = (0..threads.len()).collect();
        order.sort_by_key(|&i| std::cmp::Reverse(threads[i]));
        let mut eligible = vec![false; threads.len()];
        for pair in order.chunks(2) {
            let first_is_dox = rng.gen_bool(0.5);
            eligible[pair[0]] = first_is_dox;
            if let Some(&second) = pair.get(1) {
                eligible[second] = !first_is_dox;
            }
        }
        eligible
    };
    let pick_in = |rng: &mut StdRng, want_dox_half: bool| -> usize {
        for _ in 0..200 {
            let t = size_biased(rng);
            if dox_eligible[t] == want_dox_half {
                return t;
            }
        }
        size_biased(rng)
    };

    // Doxes first, so CTH overlap can target their threads.
    for _ in 0..n_dox {
        let mut guard = 0;
        loop {
            let t = pick_in(rng, true);
            let pos = plant_position(threads[t], 0.097, 0.027, rng);
            if !slots.contains_key(&(t, pos)) || guard > 20 {
                slots.insert((t, pos), Plant::Dox);
                dox_threads.push(t);
                break;
            }
            guard += 1;
        }
    }

    // Calls to harassment; toxic-content calls land in longer threads
    // (§6.3 finds their responses significantly larger). CTH that *are*
    // doxes (the "both pipelines" posts) are placed in dox-half threads and
    // count toward the overlap quota, so the total thread-sharing rate
    // stays at the calibrated value.
    let residual_overlap = ((config.cth_dox_thread_overlap * n_cth as f64 - n_both as f64)
        / (n_cth.saturating_sub(n_both).max(1)) as f64)
        .clamp(0.0, 1.0);
    for i in 0..n_cth {
        let (labels, gender) = cth_truth(ds, rng);
        let with_pii = i < n_both;
        let overlap = !dox_threads.is_empty() && (with_pii || rng.gen_bool(residual_overlap));
        let mut guard = 0;
        loop {
            let t = if overlap {
                dox_threads[rng.gen_range(0..dox_threads.len())]
            } else if labels.contains_parent(incite_taxonomy::AttackType::ToxicContent) {
                // §6.3: toxic-content calls draw significantly larger
                // responses — take the longest of three size-biased
                // candidates from the CTH half.
                let mut best = pick_in(rng, false);
                for _ in 0..2 {
                    let c = pick_in(rng, false);
                    if threads[c] > threads[best] {
                        best = c;
                    }
                }
                best
            } else {
                pick_in(rng, false)
            };
            let pos = plant_position(threads[t], 0.037, 0.027, rng);
            if !slots.contains_key(&(t, pos)) || guard > 20 {
                slots.insert(
                    (t, pos),
                    Plant::Cth {
                        labels,
                        gender,
                        with_pii,
                    },
                );
                break;
            }
            guard += 1;
        }
    }

    // Emit every post of every thread.
    for (t_idx, &len) in threads.iter().enumerate() {
        let thread_id = b.next_thread;
        b.next_thread += 1;
        let board = platforms::BOARD_NAMES[rng.gen_range(0..platforms::BOARD_NAMES.len())];
        for pos in 0..len {
            let thread = Some(ThreadRef {
                thread_id,
                position: pos,
                thread_len: len,
            });
            match slots.get(&(t_idx, pos)).cloned() {
                Some(Plant::Dox) => {
                    let (id, pii) = b.dox_identity_and_profile(platform, ds, config, rng);
                    let gender = sample_dox_gender(rng);
                    let rep = labels::sample_reputation_flag(ds, pii, rng);
                    let text = if rng.gen_bool(0.4) {
                        partial_dox_text(&id, pii, rng)
                    } else {
                        dox_text(&id, pii, gender, rep, rng)
                    };
                    let truth = GroundTruth {
                        is_dox: true,
                        pii,
                        gender,
                        reputation_flag: rep,
                        target_handle: Some(id.handle()),
                        ..Default::default()
                    };
                    b.push(platform, text, board.to_string(), thread, truth, rng);
                }
                Some(Plant::Cth {
                    labels,
                    gender,
                    with_pii,
                }) => {
                    let (text, pii, handle) = if with_pii {
                        let id = identity(rng);
                        let kinds = [PiiKind::Phone, PiiKind::Address, PiiKind::Twitter];
                        let n = rng.gen_range(1..=kinds.len());
                        let chosen = &kinds[..n];
                        let text = cth_text(labels, gender, Some((&id, chosen)), rng);
                        let pii: PiiSet = chosen.iter().copied().collect();
                        (text, pii, Some(id.handle()))
                    } else {
                        (cth_text(labels, gender, None, rng), PiiSet::EMPTY, None)
                    };
                    let truth = GroundTruth {
                        is_cth: true,
                        is_dox: with_pii,
                        labels,
                        gender,
                        pii,
                        target_handle: handle,
                        ..Default::default()
                    };
                    b.push(platform, text, board.to_string(), thread, truth, rng);
                }
                None => {
                    let hard = rng.gen_bool(config.hard_negative_rate);
                    let text = if hard {
                        textgen::hard_negative(platform, rng)
                    } else {
                        textgen::benign(platform, rng)
                    };
                    let truth = GroundTruth {
                        hard_negative: hard,
                        ..Default::default()
                    };
                    b.push(platform, text, board.to_string(), thread, truth, rng);
                }
            }
        }
    }
}

fn sample_dox_gender(rng: &mut StdRng) -> Gender {
    // Dox target gender follows the overall CTH split (the paper does not
    // publish a dox-specific gender table).
    let r: f64 = rng.gen();
    if r < 2_711.0 / 6_254.0 {
        Gender::Unknown
    } else if r < (2_711.0 + 1_160.0) / 6_254.0 {
        Gender::Female
    } else {
        Gender::Male
    }
}

/// Chat (Discord / Telegram) and Gab: flat document streams with planted
/// positives at random indices.
fn generate_flat(b: &mut Builder, platform: Platform, config: &CorpusConfig, rng: &mut StdRng) {
    let ds = platform.data_set();
    let benign = config.benign_count(platform);
    let n_cth = config.cth_count(platform);
    let n_dox = config.dox_count(platform);
    let total = benign + n_cth + n_dox;

    // Random positions for positives.
    let mut kinds: Vec<u8> = vec![0; total];
    let mut planted = 0usize;
    while planted < n_cth {
        let i = rng.gen_range(0..total);
        if kinds[i] == 0 {
            kinds[i] = 1;
            planted += 1;
        }
    }
    planted = 0;
    while planted < n_dox {
        let i = rng.gen_range(0..total);
        if kinds[i] == 0 {
            kinds[i] = 2;
            planted += 1;
        }
    }

    for kind in kinds {
        let channel = match platform {
            Platform::Gab => "gab".to_string(),
            _ => platforms::CHAT_CHANNELS[rng.gen_range(0..platforms::CHAT_CHANNELS.len())]
                .to_string(),
        };
        match kind {
            1 => {
                let (labels, gender) = cth_truth(ds, rng);
                let text = cth_text(labels, gender, None, rng);
                let truth = GroundTruth {
                    is_cth: true,
                    labels,
                    gender,
                    ..Default::default()
                };
                b.push(platform, text, channel, None, truth, rng);
            }
            2 => {
                // §7.2: over half of Discord doxes expose only PII outside
                // the extraction pipeline (birthday, age, nicknames).
                if platform == Platform::Discord && rng.gen_bool(0.55) {
                    let id = identity(rng);
                    let gender = sample_dox_gender(rng);
                    let text = crate::soft_dox::soft_dox_text(&id, rng);
                    let truth = GroundTruth {
                        is_dox: true,
                        pii: PiiSet::EMPTY,
                        gender,
                        target_handle: Some(id.handle()),
                        ..Default::default()
                    };
                    b.push(platform, text, channel, None, truth, rng);
                    continue;
                }
                let (id, pii) = b.dox_identity_and_profile(platform, ds, config, rng);
                let gender = sample_dox_gender(rng);
                let rep = labels::sample_reputation_flag(ds, pii, rng);
                let text = if rng.gen_bool(0.5) {
                    partial_dox_text(&id, pii, rng)
                } else {
                    dox_text(&id, pii, gender, rep, rng)
                };
                let truth = GroundTruth {
                    is_dox: true,
                    pii,
                    gender,
                    reputation_flag: rep,
                    target_handle: Some(id.handle()),
                    ..Default::default()
                };
                b.push(platform, text, channel, None, truth, rng);
            }
            _ => {
                let hard = rng.gen_bool(config.hard_negative_rate);
                let text = if hard {
                    textgen::hard_negative(platform, rng)
                } else {
                    textgen::benign(platform, rng)
                };
                let truth = GroundTruth {
                    hard_negative: hard,
                    ..Default::default()
                };
                b.push(platform, text, channel, None, truth, rng);
            }
        }
    }
}

/// Pastes: flat long-form documents; doxes are always full drops; heavier
/// repeat pool (most repeated doxes live here, §7.3).
fn generate_pastes(b: &mut Builder, config: &CorpusConfig, rng: &mut StdRng) {
    let platform = Platform::Pastes;
    let ds = DataSet::Pastes;
    let benign = config.benign_count(platform);
    let n_dox = config.dox_count(platform);
    let total = benign + n_dox;
    let mut dox_at: Vec<bool> = vec![false; total];
    let mut planted = 0;
    while planted < n_dox {
        let i = rng.gen_range(0..total);
        if !dox_at[i] {
            dox_at[i] = true;
            planted += 1;
        }
    }
    for is_dox in dox_at {
        let site =
            platforms::PASTE_SITES[rng.gen_range(0..platforms::PASTE_SITES.len())].to_string();
        if is_dox {
            let (id, pii) = b.dox_identity_and_profile(platform, ds, config, rng);
            let gender = sample_dox_gender(rng);
            let rep = labels::sample_reputation_flag(ds, pii, rng);
            let text = dox_text(&id, pii, gender, rep, rng);
            let truth = GroundTruth {
                is_dox: true,
                pii,
                gender,
                reputation_flag: rep,
                target_handle: Some(id.handle()),
                ..Default::default()
            };
            b.push(platform, text, site, None, truth, rng);
        } else {
            let hard = rng.gen_bool(config.hard_negative_rate * 3.0); // SQL dumps are common
            let text = if hard {
                textgen::hard_negative(platform, rng)
            } else {
                textgen::benign(platform, rng)
            };
            let truth = GroundTruth {
                hard_negative: hard,
                ..Default::default()
            };
            b.push(platform, text, site, None, truth, rng);
        }
    }
}

/// Blogs: three profiles with distinct dox registers (§8) and
/// keyword-bearing "relevant" posts that are not doxes (Table 8).
fn generate_blogs(b: &mut Builder, config: &CorpusConfig, rng: &mut StdRng) {
    let platform = Platform::Blogs;
    let total_posts = config.benign_count(platform);
    let total_doxes = config.dox_count(platform);

    for blog in Blog::ALL {
        // The Torch is tiny in absolute terms (93 posts, Table 8); generate
        // it in full regardless of scale so its dox density survives.
        let posts = match blog {
            Blog::Torch => 93,
            _ => ((total_posts as f64 * blog.post_share()).round() as usize).max(5),
        };
        // Floor of 5 doxes per blog: the §8 analysis is qualitative and
        // needs a handful of documents per register even at tiny scales.
        let doxes = ((total_doxes as f64 * blog.dox_share()).round() as usize)
            .max(5)
            .min(posts);
        // Relevant-but-not-dox rate from Table 8 (relevant − doxes) / posts.
        let relevant_rate = match blog {
            Blog::DailyStormer => (3_072.0 - 90.0) / 36_851.0,
            Blog::NoBlogs => (668.0 - 66.0) / 78_108.0,
            Blog::Torch => (38.0 - 23.0) / 93.0,
        };
        let n_benign = posts.saturating_sub(doxes);
        for _ in 0..n_benign {
            let relevant = rng.gen_bool(relevant_rate);
            let mut text = textgen::benign(platform, rng);
            if relevant {
                // Mentions a PII keyword without being a dox.
                let kw = ["phone", "email", "dox", "dob:"][rng.gen_range(0..4)];
                text.push_str(&format!(
                    "\n\nSide note: my {kw} inbox is overflowing, replies are slow."
                ));
            }
            b.push(
                platform,
                text,
                blog.slug().to_string(),
                None,
                GroundTruth::default(),
                rng,
            );
        }
        for _ in 0..doxes {
            // Blog doxes draw the richest PII profile (pastes-like).
            let (id, pii) = b.dox_identity_and_profile(platform, DataSet::Pastes, config, rng);
            let gender = sample_dox_gender(rng);
            let (style, overload) = match blog {
                Blog::DailyStormer => {
                    // §8.3: 60 % of Stormer doxes include a call to overload.
                    (BlogStyle::DailyStormer, rng.gen_bool(0.60))
                }
                _ => (BlogStyle::Antifascist, false),
            };
            let (text, pii) = blog_dox_text(&id, pii, style, overload, rng);
            let rep = labels::sample_reputation_flag(DataSet::Blogs, pii, rng);
            let truth = GroundTruth {
                is_dox: true,
                // A Stormer dox with an overload call is also a CTH.
                is_cth: overload,
                labels: if overload {
                    LabelSet::from_iter([Subcategory::Raiding, Subcategory::Doxing])
                } else {
                    LabelSet::EMPTY
                },
                pii,
                gender,
                reputation_flag: rep,
                target_handle: Some(id.handle()),
                ..Default::default()
            };
            b.push(platform, text, blog.slug().to_string(), None, truth, rng);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Corpus {
        generate(&CorpusConfig::tiny(42))
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate(&CorpusConfig::tiny(1));
        let c = generate(&CorpusConfig::tiny(1));
        assert_eq!(a.len(), c.len());
        assert_eq!(a.documents[10].text, c.documents[10].text);
        let d = generate(&CorpusConfig::tiny(2));
        assert_ne!(a.documents[10].text, d.documents[10].text);
    }

    #[test]
    fn all_platforms_present() {
        let c = tiny();
        for p in Platform::ALL {
            assert!(c.by_platform(p).count() > 0, "{p} missing");
        }
    }

    #[test]
    fn positives_planted_at_configured_counts() {
        let config = CorpusConfig::small(7);
        let c = generate(&config);
        let cth = c.true_cth().count();
        let expected_cth: usize = Platform::ALL.iter().map(|p| config.cth_count(*p)).sum();
        // Blog Stormer doxes with overload calls add a few CTH beyond the quota.
        assert!(cth >= expected_cth, "cth {cth} < {expected_cth}");
        assert!(cth <= expected_cth + config.dox_count(Platform::Blogs));

        let dox = c.true_doxes().count();
        let expected_dox: usize = Platform::ALL.iter().map(|p| config.dox_count(*p)).sum();
        // Board CTH∩dox posts count toward doxes too.
        assert!(dox >= expected_dox, "dox {dox} < {expected_dox}");
    }

    #[test]
    fn board_docs_have_threads_others_do_not() {
        let c = tiny();
        for d in &c.documents {
            if d.platform == Platform::Boards {
                assert!(d.thread.is_some());
            } else {
                assert!(d.thread.is_none());
            }
        }
    }

    #[test]
    fn threads_are_complete_and_ordered() {
        let c = tiny();
        for (_, posts) in c.threads() {
            // Every returned post carries a thread ref (filter_map drops
            // none), the first announces the full length, and positions
            // run 0..len in order — all without unwrapping.
            let refs: Vec<ThreadRef> = posts.iter().filter_map(|p| p.thread).collect();
            assert_eq!(refs.len(), posts.len(), "thread-less post in a thread");
            let len = refs.first().map(|t| t.thread_len).unwrap_or(0);
            assert_eq!(posts.len() as u32, len);
            for (i, t) in refs.iter().enumerate() {
                assert_eq!(t.position, i as u32);
            }
        }
    }

    #[test]
    fn doxes_carry_pii_and_handles() {
        let c = tiny();
        for d in c.true_doxes() {
            assert!(d.truth.target_handle.is_some());
            // Discord "soft" doxes expose only non-extractable PII (§7.2);
            // every other dox carries at least one extractable kind.
            if d.platform != Platform::Discord {
                assert!(!d.truth.pii.is_empty(), "dox without PII: {}", d.text);
            }
        }
    }

    #[test]
    fn discord_has_soft_doxes() {
        let c = generate(&CorpusConfig::small(19));
        let discord_doxes: Vec<_> = c
            .by_platform(Platform::Discord)
            .filter(|d| d.truth.is_dox)
            .collect();
        let soft = discord_doxes
            .iter()
            .filter(|d| d.truth.pii.is_empty())
            .count();
        // §7.2: over half of Discord doxes carry no extractable indicator.
        let frac = soft as f64 / discord_doxes.len().max(1) as f64;
        assert!(frac > 0.3, "soft-dox fraction {frac}");
        assert!(frac < 0.8, "soft-dox fraction {frac}");
    }

    #[test]
    fn cth_carry_labels() {
        let c = tiny();
        for d in c.true_cth() {
            assert!(!d.truth.labels.is_empty(), "CTH without labels");
        }
    }

    #[test]
    fn summary_matches_table1_shape() {
        let c = generate(&CorpusConfig::small(3));
        let rows = c.summary();
        assert_eq!(rows.len(), 5);
        let get = |ds: DataSet| rows.iter().find(|r| r.data_set == ds).unwrap().posts;
        assert!(get(DataSet::Boards) > get(DataSet::Chat));
        assert!(get(DataSet::Chat) > get(DataSet::Gab));
        assert!(get(DataSet::Gab) > get(DataSet::Pastes));
        assert!(get(DataSet::Pastes) > get(DataSet::Blogs));
    }

    #[test]
    fn some_repeated_doxes_share_handles() {
        let config = CorpusConfig::small(11);
        let c = generate(&config);
        let mut handle_counts: HashMap<&str, usize> = HashMap::new();
        for d in c.true_doxes() {
            if let Some(h) = &d.truth.target_handle {
                *handle_counts.entry(h.as_str()).or_default() += 1;
            }
        }
        let repeated: usize = handle_counts.values().filter(|&&n| n > 1).copied().sum();
        assert!(repeated > 0, "no repeated doxes planted");
    }

    #[test]
    fn pastes_have_no_cth() {
        let c = tiny();
        assert_eq!(
            c.by_platform(Platform::Pastes)
                .filter(|d| d.truth.is_cth)
                .count(),
            0
        );
    }

    #[test]
    fn hard_negatives_exist_and_are_benign() {
        let c = generate(&CorpusConfig::small(5));
        let hard: Vec<_> = c
            .documents
            .iter()
            .filter(|d| d.truth.hard_negative)
            .collect();
        assert!(!hard.is_empty());
        for d in hard {
            assert!(!d.truth.is_cth && !d.truth.is_dox);
        }
    }

    #[test]
    fn doc_ids_are_unique() {
        let c = tiny();
        let mut ids: Vec<u64> = c.documents.iter().map(|d| d.id.0).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), c.len());
    }

    #[test]
    fn blogs_include_both_registers() {
        let config = CorpusConfig {
            positive_scale: 1.0,
            ..CorpusConfig::tiny(9)
        };
        let c = generate(&config);
        let stormer_doxes = c
            .by_platform(Platform::Blogs)
            .filter(|d| d.channel == "daily_stormer" && d.truth.is_dox)
            .count();
        let torch_doxes = c
            .by_platform(Platform::Blogs)
            .filter(|d| d.channel == "the_torch" && d.truth.is_dox)
            .count();
        assert!(stormer_doxes > 0);
        assert!(torch_doxes > 0);
    }
}
