//! Dox text generation.
//!
//! Produces the document shapes §7 and §8 describe: structured "drop"
//! doxes on pastes and boards (header + labeled PII lines), shorter partial
//! doxes in chat and Gab replies, and long-form blog doxes — far-left style
//! (narration of the target's activities, rationale, then PII; The Torch /
//! NoBlogs, §8.2) and Daily-Stormer style (narration, a contact handle, and
//! a call to overload; §8.3).

use crate::pii_gen::Identity;
use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::{Gender, PiiKind};
use rand::rngs::StdRng;
use rand::Rng;

fn pii_label(kind: PiiKind) -> &'static str {
    match kind {
        PiiKind::Address => "Address",
        PiiKind::CreditCard => "CC",
        PiiKind::Email => "Email",
        PiiKind::Facebook => "Facebook",
        PiiKind::Instagram => "Instagram",
        PiiKind::Phone => "Phone",
        PiiKind::Ssn => "SSN",
        PiiKind::Twitter => "Twitter",
        PiiKind::YouTube => "YouTube",
    }
}

fn pronoun_line(gender: Gender, rng: &mut StdRng) -> Option<String> {
    let lines: Vec<&str> = match gender {
        Gender::Male => vec![
            "he has been posting under this name for years, his main account is below",
            "everything he runs is linked here, hold him accountable",
        ],
        Gender::Female => vec![
            "she has been active on all of these, her accounts are below",
            "everything she posts traces back to her, details follow",
        ],
        Gender::Unknown => return None,
    };
    Some(lines[rng.gen_range(0..lines.len())].to_string())
}

/// A structured dox "drop": header, optional pronoun narration, labeled PII
/// lines, optional family/employer note (reputation flag).
pub fn dox_text(
    id: &Identity,
    pii: PiiSet,
    gender: Gender,
    reputation_flag: bool,
    rng: &mut StdRng,
) -> String {
    let mut lines = Vec::new();
    lines.push(format!(
        "==== dox drop: {} {} ====",
        id.first_name, id.last_name
    ));
    if let Some(p) = pronoun_line(gender, rng) {
        lines.push(p);
    }
    lines.push(format!("Name: {} {}", id.first_name, id.last_name));
    for (i, kind) in pii.iter().enumerate() {
        lines.push(format!("{}: {}", pii_label(kind), id.pii_text(kind, i)));
    }
    if reputation_flag {
        let extras = [
            format!("Employer: {} logistics co", id.last_name),
            format!(
                "Family: mother and brother live nearby, the {} family",
                id.last_name
            ),
        ];
        lines.push(extras[rng.gen_range(0..extras.len())].clone());
    }
    lines.push("know anything else? add below".to_string());
    lines.join("\n")
}

/// A short partial dox (a reply sharing one or two identifiers), the shape
/// common on boards/Gab (§7.2 "partial doxing information, such as an
/// online profile, as a reply to a previous message").
pub fn partial_dox_text(id: &Identity, pii: PiiSet, rng: &mut StdRng) -> String {
    let openers = [
        "found it:",
        "this is the one:",
        "confirmed:",
        "same person:",
    ];
    let mut lines = vec![openers[rng.gen_range(0..openers.len())].to_string()];
    for (i, kind) in pii.iter().enumerate() {
        lines.push(id.pii_text(kind, i));
    }
    lines.join(" ")
}

/// Which blog register a blog dox is written in (§8).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlogStyle {
    /// The Torch / NoBlogs: narration + extensive PII + community alert.
    Antifascist,
    /// Daily Stormer: narration + contact handle + call to overload.
    DailyStormer,
}

/// A long-form blog dox in one of the two observed registers. Returns the
/// text plus the PII kinds actually embedded (the Daily Stormer register
/// deliberately exposes only a single contact channel, §8.3).
pub fn blog_dox_text(
    id: &Identity,
    pii: PiiSet,
    style: BlogStyle,
    include_overload_call: bool,
    rng: &mut StdRng,
) -> (String, PiiSet) {
    let name = format!("{} {}", id.first_name, id.last_name);
    match style {
        BlogStyle::Antifascist => {
            let mut paras = vec![
                format!(
                    "We have identified {name} as a participant in last month's rally. \
                     Photos from the event match {}'s public profiles, and leaked chat \
                     logs confirm the connection.",
                    id.first_name
                ),
                format!(
                    "We are publishing this so the community can be alerted to the threat. \
                     Neighbors, landlords and employers deserve to know who {name} is."
                ),
            ];
            let mut pii_lines = vec![format!("Name: {name}")];
            for (i, kind) in pii.iter().enumerate() {
                pii_lines.push(format!("{}: {}", pii_label(kind), id.pii_text(kind, i)));
            }
            paras.push(pii_lines.join("\n"));
            paras.push(
                "If you have additional information about this individual, send it in.".to_string(),
            );
            (paras.join("\n\n"), pii)
        }
        BlogStyle::DailyStormer => {
            let mut paras = vec![format!(
                "Another day, another enemy of the people. {name} decided to run that mouth \
                 again, and the internet never forgets. Consider this a dox."
            )];
            // Stormer doxes carry *less* PII: typically one contact channel.
            let contact = pii
                .iter()
                .find(|k| k.is_osn_profile() || *k == PiiKind::Email)
                .unwrap_or(PiiKind::Email);
            paras.push(format!(
                "You can reach {name} here: {}",
                id.pii_text(contact, rng.gen_range(0..2))
            ));
            if include_overload_call {
                let calls = [
                    "You know what to do. Flood it until the account goes dark.",
                    "Spam it. Raid it. Make it unusable.",
                ];
                paras.push(calls[rng.gen_range(0..calls.len())].to_string());
            }
            let embedded: PiiSet = [contact].into_iter().collect();
            (paras.join("\n\n"), embedded)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pii_gen::identity;
    use rand::SeedableRng;

    fn setup() -> (Identity, StdRng) {
        let mut r = StdRng::seed_from_u64(31);
        let id = identity(&mut r);
        (id, r)
    }

    fn all_pii() -> PiiSet {
        PiiKind::ALL.into_iter().collect()
    }

    #[test]
    fn full_dox_contains_every_planted_kind() {
        let (id, mut r) = setup();
        let text = dox_text(&id, all_pii(), Gender::Male, true, &mut r);
        assert!(text.contains("Name:"));
        assert!(text.contains("Phone:"));
        assert!(text.contains("SSN:"));
        assert!(text.contains("Employer:") || text.contains("Family:"));
        assert!(text.contains(&id.email));
    }

    #[test]
    fn reputation_flag_controls_family_employer_lines() {
        let (id, mut r) = setup();
        let without = dox_text(&id, all_pii(), Gender::Unknown, false, &mut r);
        assert!(!without.contains("Employer:") && !without.contains("Family:"));
    }

    #[test]
    fn pronoun_lines_follow_gender() {
        let (id, mut r) = setup();
        let male = dox_text(&id, all_pii(), Gender::Male, false, &mut r);
        assert!(male.contains(" he ") || male.contains("he has"), "{male}");
        let unknown = dox_text(&id, all_pii(), Gender::Unknown, false, &mut r);
        assert!(!unknown.contains("he has") && !unknown.contains("she has"));
    }

    #[test]
    fn partial_dox_is_short() {
        let (id, mut r) = setup();
        let pii: PiiSet = [PiiKind::Twitter].into_iter().collect();
        let partial = partial_dox_text(&id, pii, &mut r);
        let full = dox_text(&id, all_pii(), Gender::Male, true, &mut r);
        assert!(partial.len() < full.len());
        assert!(partial.contains(&id.twitter));
    }

    #[test]
    fn antifascist_blog_has_narration_and_pii() {
        let (id, mut r) = setup();
        let (text, embedded) = blog_dox_text(&id, all_pii(), BlogStyle::Antifascist, false, &mut r);
        assert_eq!(embedded, all_pii());
        assert!(text.contains("rally"));
        assert!(text.contains("Name:"));
        assert!(text.contains("\n\n"), "long form expected");
        assert!(text.to_lowercase().contains("employers"));
    }

    #[test]
    fn stormer_blog_has_contact_and_overload_call() {
        let (id, mut r) = setup();
        let pii: PiiSet = [PiiKind::Twitter, PiiKind::Email].into_iter().collect();
        let (text, embedded) = blog_dox_text(&id, pii, BlogStyle::DailyStormer, true, &mut r);
        assert_eq!(embedded.len(), 1, "stormer exposes one contact");
        assert!(text.contains("reach"));
        assert!(
            text.contains("Flood") || text.contains("Spam"),
            "overload call missing: {text}"
        );
        // Only one contact channel, not the full drop format.
        assert!(!text.contains("SSN:"));
    }

    #[test]
    fn stormer_without_call_omits_overload_language() {
        let (id, mut r) = setup();
        let pii: PiiSet = [PiiKind::Email].into_iter().collect();
        let (text, _) = blog_dox_text(&id, pii, BlogStyle::DailyStormer, false, &mut r);
        assert!(!text.contains("Flood") && !text.contains("Raid"));
    }
}
