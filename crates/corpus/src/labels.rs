//! Calibrated sampling of attack labels, genders and PII profiles.
//!
//! Planted positives should *look like* the paper's annotated sets: labels
//! are drawn from the Table 11 per-data-set distributions, gender is drawn
//! conditional on the primary label from Table 10, multi-label incidence
//! follows §6.2 (13 % carry ≥ 2 attack types, with the surveillance ↔
//! content-leakage and impersonation ↔ public-opinion pairings), and dox PII
//! profiles follow the Table 6 per-data-set prevalence.

use incite_taxonomy::calibration::{self, Table10Row, Table11Row};
use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::{AttackType, DataSet, Gender, LabelSet, PiiKind, Subcategory};
use rand::rngs::StdRng;
use rand::Rng;

/// Samples an index from unnormalized weights. Returns 0 when all weights
/// are zero.
fn weighted_index(weights: &[f64], rng: &mut StdRng) -> usize {
    let total: f64 = weights.iter().sum();
    if total <= 0.0 {
        return 0;
    }
    let mut x = rng.gen_range(0.0..total);
    for (i, w) in weights.iter().enumerate() {
        if x < *w {
            return i;
        }
        x -= w;
    }
    weights.len() - 1
}

fn table11_weights(ds: DataSet) -> Vec<f64> {
    calibration::TABLE11
        .iter()
        .map(|row: &Table11Row| row.count(ds).unwrap_or(0) as f64)
        .collect()
}

/// Samples one subcategory from the Table 11 distribution for a data set.
pub fn sample_subcategory(ds: DataSet, rng: &mut StdRng) -> Subcategory {
    let weights = table11_weights(ds);
    calibration::TABLE11[weighted_index(&weights, rng)].subcategory
}

/// Samples a full label set for one call to harassment (§6.2 co-occurrence
/// structure).
pub fn sample_label_set(ds: DataSet, rng: &mut StdRng) -> LabelSet {
    let primary = sample_subcategory(ds, rng);
    let mut set = LabelSet::single(primary);

    // §6.2 documented pairings apply to the category as a whole: 64 % of
    // *all* surveillance CTH are also content leakage; 30 % of *all*
    // impersonation CTH are also public-opinion manipulation. These
    // categories are < 2 % of documents, so the global multi-label rate
    // barely moves.
    match primary.parent() {
        AttackType::Surveillance if rng.gen_bool(0.64) => {
            set.insert(Subcategory::Doxing);
        }
        AttackType::Impersonation if rng.gen_bool(0.30) => {
            set.insert(Subcategory::PublicOpinionManipulationMisc);
        }
        _ => {}
    }

    // §6.2: 831/6254 multi-label; of those 767 two, 54 three, 10 four+.
    let multi = rng.gen_bool(831.0 / 6254.0);
    if multi {
        let extra_labels = {
            let r: f64 = rng.gen();
            if r < 767.0 / 831.0 {
                1
            } else if r < (767.0 + 54.0) / 831.0 {
                2
            } else {
                3
            }
        };
        let mut guard = 0;
        while set.len() < 1 + extra_labels && guard < 50 {
            set.insert(sample_subcategory(ds, rng));
            guard += 1;
        }
    }
    set
}

/// Samples a target gender conditioned on the primary label, using the
/// Table 10 row for that label.
pub fn sample_gender(primary: Subcategory, rng: &mut StdRng) -> Gender {
    let row: &Table10Row = calibration::TABLE10
        .iter()
        .find(|r| r.subcategory == primary)
        .expect("every subcategory has a Table 10 row");
    let weights = [row.unknown as f64, row.female as f64, row.male as f64];
    match weighted_index(&weights, rng) {
        0 => Gender::Unknown,
        1 => Gender::Female,
        _ => Gender::Male,
    }
}

/// Samples the PII profile of a dox for a data set from the Table 6
/// prevalence, with the documented Facebook → email/phone/address
/// enrichment (§7.1). Guarantees at least one PII kind (a dox with no PII
/// is not a dox).
pub fn sample_pii_profile(ds: DataSet, rng: &mut StdRng) -> PiiSet {
    let size = calibration::DOX_SIZE
        .iter()
        .find(|(d, _)| *d == ds)
        .map(|(_, n)| *n as f64)
        .unwrap_or(1_000.0);
    let mut set = PiiSet::new();
    let mut facebook = false;
    for row in &calibration::TABLE6 {
        let count = row.count(ds).unwrap_or(0) as f64;
        let p = (count / size).clamp(0.0, 1.0);
        if rng.gen_bool(p) {
            set.insert(row.kind);
            if row.kind == PiiKind::Facebook {
                facebook = true;
            }
        }
    }
    // Facebook-bearing doxes are enriched with contact PII (§7.1: emails
    // 39 %, phones 25 %, addresses 24 % co-occurrence).
    if facebook {
        if !set.contains(PiiKind::Email) && rng.gen_bool(0.25) {
            set.insert(PiiKind::Email);
        }
        if !set.contains(PiiKind::Phone) && rng.gen_bool(0.15) {
            set.insert(PiiKind::Phone);
        }
    }
    if set.is_empty() {
        // Fall back to the data set's most common kind.
        let weights: Vec<f64> = calibration::TABLE6
            .iter()
            .map(|row| row.count(ds).unwrap_or(0) as f64)
            .collect();
        set.insert(calibration::TABLE6[weighted_index(&weights, rng)].kind);
    }
    set
}

/// Samples the manual "reputation risk" flag (§7.2; ≈ 42.7 % of doxes
/// carry family/employer information, with Telegram-heavy chat skew).
/// The flag correlates with how complete the dox is — richer PII profiles
/// come from more thorough doxers who also dig up family/employer details
/// (Figure 2: 11.5 % of doxes carry all four risks, 73 % of them on pastes).
pub fn sample_reputation_flag(ds: DataSet, pii: PiiSet, rng: &mut StdRng) -> bool {
    let base = match ds {
        DataSet::Chat => 0.45,
        DataSet::Pastes => 0.35,
        DataSet::Boards => 0.30,
        DataSet::Gab => 0.28,
        DataSet::Blogs => 0.70,
    };
    let p = (base + 0.08 * pii.len() as f64).clamp(0.0, 0.95);
    rng.gen_bool(p)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(2024)
    }

    #[test]
    fn subcategory_distribution_tracks_table11() {
        let mut r = rng();
        let n = 20_000;
        let mut reporting = 0;
        for _ in 0..n {
            let s = sample_subcategory(DataSet::Boards, &mut r);
            if s.parent() == AttackType::Reporting {
                reporting += 1;
            }
        }
        // Boards reporting share of label slots: 1,152 of the 2,483 label
        // occurrences in the boards column of Table 11 ≈ 0.464.
        let frac = reporting as f64 / n as f64;
        assert!((frac - 0.464).abs() < 0.02, "reporting fraction = {frac}");
    }

    #[test]
    fn gab_never_samples_lockout() {
        // Table 11 has zero lockout counts for Gab.
        let mut r = rng();
        for _ in 0..5_000 {
            let s = sample_subcategory(DataSet::Gab, &mut r);
            assert_ne!(s.parent(), AttackType::LockoutAndControl);
        }
    }

    #[test]
    fn multi_label_rate_matches_section_6_2() {
        let mut r = rng();
        let n = 20_000;
        let multi = (0..n)
            .filter(|_| sample_label_set(DataSet::Chat, &mut r).len() > 1)
            .count();
        let frac = multi as f64 / n as f64;
        assert!((frac - 0.133).abs() < 0.02, "multi-label fraction = {frac}");
    }

    #[test]
    fn label_sets_are_never_empty() {
        let mut r = rng();
        for ds in [DataSet::Boards, DataSet::Chat, DataSet::Gab] {
            for _ in 0..500 {
                assert!(!sample_label_set(ds, &mut r).is_empty());
            }
        }
    }

    #[test]
    fn gender_conditioning_follows_table10() {
        let mut r = rng();
        // Mass flagging skews heavily to unknown (818) and male (532) over
        // female (145).
        let mut counts = [0usize; 3];
        for _ in 0..10_000 {
            match sample_gender(Subcategory::MassFlagging, &mut r) {
                Gender::Unknown => counts[0] += 1,
                Gender::Female => counts[1] += 1,
                Gender::Male => counts[2] += 1,
            }
        }
        assert!(counts[0] > counts[2], "{counts:?}");
        assert!(counts[2] > counts[1] * 2, "{counts:?}");
    }

    #[test]
    fn pii_profiles_track_table6() {
        let mut r = rng();
        let n = 10_000;
        let mut with_address = 0;
        let mut with_card = 0;
        for _ in 0..n {
            let p = sample_pii_profile(DataSet::Pastes, &mut r);
            assert!(!p.is_empty());
            if p.contains(PiiKind::Address) {
                with_address += 1;
            }
            if p.contains(PiiKind::CreditCard) {
                with_card += 1;
            }
        }
        // Pastes: addresses 45.7 %, cards 4.9 % (Table 6).
        let addr_frac = with_address as f64 / n as f64;
        let card_frac = with_card as f64 / n as f64;
        assert!(
            (addr_frac - 0.457).abs() < 0.03,
            "address fraction = {addr_frac}"
        );
        assert!(
            (card_frac - 0.049).abs() < 0.02,
            "card fraction = {card_frac}"
        );
    }

    #[test]
    fn gab_doxes_never_have_cards() {
        // Table 6: Gab card count is 0.
        let mut r = rng();
        for _ in 0..3_000 {
            assert!(!sample_pii_profile(DataSet::Gab, &mut r).contains(PiiKind::CreditCard));
        }
    }

    #[test]
    fn reputation_flag_rates_are_plausible() {
        let mut r = rng();
        let n = 5_000;
        let pii: PiiSet = [PiiKind::Email].into_iter().collect();
        let chat = (0..n)
            .filter(|_| sample_reputation_flag(DataSet::Chat, pii, &mut r))
            .count();
        let gab = (0..n)
            .filter(|_| sample_reputation_flag(DataSet::Gab, pii, &mut r))
            .count();
        assert!(chat > gab, "chat {chat} vs gab {gab}");
        // Richer PII profiles raise the flag rate (Figure 2 correlation).
        let rich: PiiSet = PiiKind::ALL.into_iter().collect();
        let rich_rate = (0..n)
            .filter(|_| sample_reputation_flag(DataSet::Gab, rich, &mut r))
            .count();
        assert!(rich_rate > gab, "rich {rich_rate} vs sparse {gab}");
    }
}
