//! A small seeded bigram Markov text generator.
//!
//! The template pools in [`crate::textgen`] give the benign corpus its
//! platform register; this Markov layer adds lexical diversity so the
//! classifiers cannot simply memorize templates. The chain is trained on a
//! built-in seed corpus of innocuous sentences and generates by sampling
//! successor words until a sentence terminator or length cap.

use rand::rngs::StdRng;
use rand::Rng;
use std::collections::HashMap;

/// Built-in seed corpus: innocuous, platform-flavored chatter.
const SEED_SENTENCES: &[&str] = &[
    "the new update finally fixed the audio bug that annoyed everyone for weeks",
    "i spent the whole weekend repainting the kitchen and it looks great now",
    "the trailer dropped last night and the soundtrack alone is worth a watch",
    "my sourdough starter died again so i am back to store bought bread",
    "the meetup moved to thursday because the venue double booked the room",
    "someone finally archived the old wiki before the host shut down",
    "the patch notes mention a rework of the crafting system coming next season",
    "we watched the finale together and argued about the ending for an hour",
    "the library extended its hours during exams which saved my schedule",
    "a stray cat adopted our porch and now owns the entire street",
    "the marathon route changes this year so the finish line is by the river",
    "i rebuilt the shed door twice because the first hinge set was garbage",
    "the podcast episode about deep sea cables was surprisingly gripping",
    "our team lost the quiz night by one point on a question about rivers",
    "the garden tomatoes came in early and the salsa was worth the wait",
    "the train was delayed again so i finished two chapters on the platform",
    "the speedrun record fell twice in one night during the charity event",
    "grandma's recipe calls for twice the butter and honestly she is right",
    "the telescope club meets on the hill when the sky is clear enough",
    "the duck pond froze over and the whole park came out to look",
];

/// A trained bigram chain.
#[derive(Debug, Clone)]
pub struct MarkovChain {
    /// word → list of successors (with repetition for frequency weighting).
    successors: HashMap<String, Vec<String>>,
    /// Sentence-starting words.
    starters: Vec<String>,
}

impl Default for MarkovChain {
    fn default() -> Self {
        Self::from_sentences(SEED_SENTENCES.iter().copied())
    }
}

impl MarkovChain {
    /// Trains a chain from sentences (whitespace-tokenized).
    pub fn from_sentences<'a, I: IntoIterator<Item = &'a str>>(sentences: I) -> Self {
        let mut successors: HashMap<String, Vec<String>> = HashMap::new();
        let mut starters = Vec::new();
        for sentence in sentences {
            let words: Vec<&str> = sentence.split_whitespace().collect();
            if let Some(first) = words.first() {
                starters.push(first.to_string());
            }
            for pair in words.windows(2) {
                successors
                    .entry(pair[0].to_string())
                    .or_default()
                    .push(pair[1].to_string());
            }
        }
        MarkovChain {
            successors,
            starters,
        }
    }

    /// Number of distinct context words.
    pub fn contexts(&self) -> usize {
        self.successors.len()
    }

    /// Generates one sentence of at most `max_words` words.
    pub fn sentence(&self, max_words: usize, rng: &mut StdRng) -> String {
        if self.starters.is_empty() {
            return String::new();
        }
        let mut word = self.starters[rng.gen_range(0..self.starters.len())].clone();
        let mut out = vec![word.clone()];
        for _ in 1..max_words {
            let Some(next_options) = self.successors.get(&word) else {
                break;
            };
            if next_options.is_empty() {
                break;
            }
            word = next_options[rng.gen_range(0..next_options.len())].clone();
            out.push(word.clone());
        }
        out.join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(3)
    }

    #[test]
    fn default_chain_has_vocabulary() {
        let chain = MarkovChain::default();
        assert!(chain.contexts() > 100, "contexts {}", chain.contexts());
    }

    #[test]
    fn sentences_are_bounded_and_nonempty() {
        let chain = MarkovChain::default();
        let mut r = rng();
        for _ in 0..100 {
            let s = chain.sentence(20, &mut r);
            assert!(!s.is_empty());
            assert!(s.split_whitespace().count() <= 20);
        }
    }

    #[test]
    fn every_bigram_comes_from_training_data() {
        let chain = MarkovChain::from_sentences(["a b c", "b d", "a c"]);
        let mut r = rng();
        let valid: std::collections::HashSet<(&str, &str)> =
            [("a", "b"), ("b", "c"), ("b", "d"), ("a", "c")]
                .into_iter()
                .collect();
        for _ in 0..200 {
            let s = chain.sentence(10, &mut r);
            let words: Vec<&str> = s.split_whitespace().collect();
            for w in words.windows(2) {
                assert!(valid.contains(&(w[0], w[1])), "invalid bigram {w:?}");
            }
        }
    }

    #[test]
    fn generation_is_diverse() {
        let chain = MarkovChain::default();
        let mut r = rng();
        let unique: std::collections::HashSet<String> =
            (0..200).map(|_| chain.sentence(12, &mut r)).collect();
        assert!(unique.len() > 100, "only {} unique sentences", unique.len());
    }

    #[test]
    fn empty_chain_is_safe() {
        let chain = MarkovChain::from_sentences(std::iter::empty::<&str>());
        let mut r = rng();
        assert_eq!(chain.sentence(5, &mut r), "");
    }
}
