//! Benign platform chatter and hard negatives.
//!
//! The benign generator produces innocuous discussion in each platform's
//! register (board threads, chat one-liners, Gab micro-posts, paste bodies,
//! long-form blog posts). A configurable fraction are *hard negatives*:
//! civic mobilization ("contact your local representative"), moderation
//! chatter and SQL-dump pastes — the false-positive families §5.4 calls out.

use crate::markov::MarkovChain;
use incite_taxonomy::Platform;
use rand::rngs::StdRng;
use rand::Rng;
use std::sync::OnceLock;

/// Shared default Markov chain (built once; the chain itself is immutable).
fn chain() -> &'static MarkovChain {
    static CHAIN: OnceLock<MarkovChain> = OnceLock::new();
    CHAIN.get_or_init(MarkovChain::default)
}

const TOPICS: &[&str] = &[
    "the new game patch",
    "that music drop",
    "the football final",
    "this keyboard build",
    "the season finale",
    "my sourdough starter",
    "the hiking trail",
    "that art stream",
    "the retro console",
    "the comic con panel",
    "this coffee roast",
    "the homebrew setup",
    "the model train layout",
    "the photography contest",
    "that indie album",
];

const OPINIONS: &[&str] = &[
    "is honestly great",
    "was kind of disappointing",
    "deserves more attention",
    "surprised me this week",
    "keeps getting better",
    "needs a rework",
    "is underrated",
    "made my day",
    "is overhyped",
    "aged really well",
];

const FOLLOWUPS: &[&str] = &[
    "anyone else following this?",
    "thoughts?",
    "link in the usual place.",
    "discussion welcome.",
    "been at it all week.",
    "cannot recommend enough.",
    "first try went badly, second was fine.",
    "will post an update tomorrow.",
    "screenshots when i get home.",
    "source: trust me.",
];

const CHAT_SNIPPETS: &[&str] = &[
    "gm everyone",
    "who is online tonight",
    "that stream was wild",
    "push the update already",
    "anyone got the notes from yesterday",
    "lol same",
    "brb food",
    "new emote when",
    "voice chat in five",
    "good run today",
    "the server lagged again",
    "gg all",
];

const CIVIC: &[&str] = &[
    "we need to contact our local representative about the pothole situation",
    "we should all email the city council to support the new bike lanes",
    "lets everyone sign the petition for longer library hours",
    "we have to call our senators about the funding bill, all of us",
    "we will show up to the town hall and make our voices heard",
    "everyone should report outages to the utility company hotline",
];

const MODERATION: &[&str] = &[
    "please report spam posts to the mods so we can keep the board clean",
    "if you see rule breaking content flag it and move on",
    "reminder to report phishing links to the admins",
    "mods please ban the crypto bots, report them in the meta thread",
];

const PASTE_BODIES: &[&str] = &[
    "#!/bin/sh\nset -e\nmake build\nmake test\necho done",
    "def main():\n    for i in range(10):\n        print(i)\n\nmain()",
    "Exception in thread main java.lang.NullPointerException\n    at App.run(App.java:42)",
    "server {\n  listen 80;\n  location / { proxy_pass http://127.0.0.1:3000; }\n}",
    "TODO list:\n- refactor parser\n- add tests\n- update readme",
];

const SQL_DUMP: &str = "INSERT INTO `users` VALUES (1,'u1','x'),(2,'u2','y'),(3,'u3','z');\nINSERT INTO `orders` VALUES (10,1,'pending'),(11,2,'shipped');";

/// Generates one benign document body for a platform: a mixture of
/// register templates and Markov-chain sentences (the lexical-diversity
/// layer, so classifiers cannot simply memorize templates).
pub fn benign(platform: Platform, rng: &mut StdRng) -> String {
    let topic = TOPICS[rng.gen_range(0..TOPICS.len())];
    let opinion = OPINIONS[rng.gen_range(0..OPINIONS.len())];
    let follow = FOLLOWUPS[rng.gen_range(0..FOLLOWUPS.len())];
    match platform {
        Platform::Boards => {
            if rng.gen_bool(0.4) {
                format!("{}. {follow}", chain().sentence(18, rng))
            } else {
                format!("{topic} {opinion}. {follow}")
            }
        }
        Platform::Discord | Platform::Telegram => {
            let r: f64 = rng.gen();
            if r < 0.4 {
                CHAT_SNIPPETS[rng.gen_range(0..CHAT_SNIPPETS.len())].to_string()
            } else if r < 0.7 {
                chain().sentence(10, rng)
            } else {
                format!("{topic} {opinion}")
            }
        }
        Platform::Gab => {
            if rng.gen_bool(0.4) {
                format!("{}. {follow}", chain().sentence(16, rng))
            } else {
                format!("{topic} {opinion}. {follow}")
            }
        }
        Platform::Pastes => {
            let body = PASTE_BODIES[rng.gen_range(0..PASTE_BODIES.len())];
            format!("{body}\n# {topic} {opinion}")
        }
        Platform::Blogs => {
            let mut paras = Vec::new();
            for _ in 0..rng.gen_range(3..7) {
                let t = TOPICS[rng.gen_range(0..TOPICS.len())];
                let o = OPINIONS[rng.gen_range(0..OPINIONS.len())];
                let f = FOLLOWUPS[rng.gen_range(0..FOLLOWUPS.len())];
                if rng.gen_bool(0.5) {
                    paras.push(format!(
                        "Writing again about {t}, which {o}. After some reflection, {f}"
                    ));
                } else {
                    paras.push(format!(
                        "{}. {}. {f}",
                        chain().sentence(20, rng),
                        chain().sentence(16, rng)
                    ));
                }
            }
            paras.join("\n\n")
        }
    }
}

/// Generates one hard negative: benign text that shares surface features
/// with calls to harassment or doxes.
pub fn hard_negative(platform: Platform, rng: &mut StdRng) -> String {
    match platform {
        Platform::Pastes => {
            // Database-dump-looking paste; the paper explicitly excludes
            // these from the dox category (§4).
            format!("-- db export {}\n{}", rng.gen_range(1..999), SQL_DUMP)
        }
        _ => {
            if rng.gen_bool(0.6) {
                CIVIC[rng.gen_range(0..CIVIC.len())].to_string()
            } else {
                MODERATION[rng.gen_range(0..MODERATION.len())].to_string()
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(7)
    }

    #[test]
    fn benign_is_nonempty_for_all_platforms() {
        let mut r = rng();
        for p in Platform::ALL {
            for _ in 0..20 {
                assert!(!benign(p, &mut r).trim().is_empty(), "{p}");
            }
        }
    }

    #[test]
    fn blogs_are_long_form() {
        let mut r = rng();
        let blog = benign(Platform::Blogs, &mut r);
        let chat = benign(Platform::Discord, &mut r);
        assert!(blog.len() > chat.len() * 2);
        assert!(blog.contains("\n\n"));
    }

    #[test]
    fn hard_negatives_use_mobilizing_language() {
        let mut r = rng();
        let found = (0..50)
            .map(|_| hard_negative(Platform::Boards, &mut r))
            .any(|t| t.contains("we need to") || t.contains("we should") || t.contains("report"));
        assert!(found);
    }

    #[test]
    fn paste_hard_negatives_look_like_dumps() {
        let mut r = rng();
        let t = hard_negative(Platform::Pastes, &mut r);
        assert!(t.contains("INSERT INTO"));
    }

    #[test]
    fn generation_is_seed_deterministic() {
        let a = benign(Platform::Gab, &mut StdRng::seed_from_u64(1));
        let b = benign(Platform::Gab, &mut StdRng::seed_from_u64(1));
        assert_eq!(a, b);
    }

    #[test]
    fn benign_text_varies() {
        let mut r = rng();
        let texts: std::collections::HashSet<String> =
            (0..100).map(|_| benign(Platform::Boards, &mut r)).collect();
        assert!(texts.len() > 50, "only {} distinct texts", texts.len());
    }
}
