//! Corpus-wide structural invariants, checked across seeds and scales.

use incite_corpus::{generate, CorpusConfig};
use incite_taxonomy::{Platform, Subcategory};
use proptest::prelude::*;
use std::collections::HashSet;

fn check_invariants(config: &CorpusConfig) {
    let corpus = generate(config);
    assert!(!corpus.is_empty());

    // Unique ids, non-empty text, timestamps inside platform eras.
    let mut ids = HashSet::new();
    for d in &corpus.documents {
        assert!(ids.insert(d.id), "duplicate id {:?}", d.id);
        assert!(!d.text.trim().is_empty(), "empty document");
        assert!(!d.channel.is_empty());
        let (lo, hi) = incite_corpus::platforms::time_range(d.platform);
        assert!((lo..hi).contains(&d.timestamp), "timestamp out of era");
        // A CTH flag implies at least one attack-type label.
        if d.truth.is_cth {
            assert!(!d.truth.labels.is_empty());
        }
        // Soft doxes (empty PII) only exist on Discord.
        if d.truth.is_dox && d.truth.pii.is_empty() {
            assert_eq!(d.platform, Platform::Discord, "{:?}", d.id);
        }
    }

    // Threads are dense and consistent.
    for (_, posts) in corpus.threads() {
        let len = posts[0].thread.unwrap().thread_len;
        assert_eq!(posts.len() as u32, len);
        for (i, p) in posts.iter().enumerate() {
            let t = p.thread.unwrap();
            assert_eq!(t.position, i as u32);
            assert_eq!(t.thread_len, len);
        }
    }

    // Label sets only contain valid subcategories.
    for d in corpus.true_cth() {
        for sub in d.truth.labels.iter() {
            assert!(Subcategory::ALL.contains(&sub));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn invariants_hold_across_seeds(seed in 0u64..1_000_000) {
        check_invariants(&CorpusConfig::tiny(seed));
    }
}

#[test]
fn invariants_hold_at_small_scale() {
    check_invariants(&CorpusConfig::small(77));
}

#[test]
fn zero_positive_corpus_is_valid() {
    let config = CorpusConfig {
        positive_scale: 0.0,
        ..CorpusConfig::tiny(5)
    };
    let corpus = generate(&config);
    // Blog doxes have a floor of 5 per blog; everything else has none.
    let non_blog_positives = corpus
        .documents
        .iter()
        .filter(|d| d.platform != Platform::Blogs)
        .filter(|d| d.truth.is_cth || d.truth.is_dox)
        .count();
    assert_eq!(non_blog_positives, 0);
    check_invariants(&config);
}
