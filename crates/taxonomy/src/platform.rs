//! Platform and data-set identifiers.
//!
//! The paper distinguishes the *platform* a document was crawled from (six
//! concrete sources once chat is split into Discord and Telegram) from the
//! *data set* it is analyzed under (five families; Table 1). Threshold
//! selection (§5.5, Table 4) operates per platform — the chat data set is
//! split "into individual platforms with separate thresholds in order to
//! improve performance" — while the attack-type tables (Tables 5 and 11)
//! aggregate Discord and Telegram back into a single "Chat" column.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A concrete crawl source.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Platform {
    /// Imageboards (4chan, 8kun, …): threaded, pseudo-anonymous, ephemeral.
    Boards,
    /// Discord: invite-free public servers curated as hate/harassment-adjacent.
    Discord,
    /// Telegram: public channels used by extremist and harassment communities.
    Telegram,
    /// Gab: a micro-blogging social network.
    Gab,
    /// Paste sites: long-form anonymous text hosting (41 domains).
    Pastes,
    /// Ideologically motivated blogs (Daily Stormer, The Torch, NoBlogs).
    Blogs,
}

impl Platform {
    /// All platforms, in the canonical (Table 1) order.
    pub const ALL: [Platform; 6] = [
        Platform::Boards,
        Platform::Discord,
        Platform::Telegram,
        Platform::Gab,
        Platform::Pastes,
        Platform::Blogs,
    ];

    /// The data-set family this platform belongs to.
    pub fn data_set(self) -> DataSet {
        match self {
            Platform::Boards => DataSet::Boards,
            Platform::Discord | Platform::Telegram => DataSet::Chat,
            Platform::Gab => DataSet::Gab,
            Platform::Pastes => DataSet::Pastes,
            Platform::Blogs => DataSet::Blogs,
        }
    }

    /// Whether the platform organizes posts into reply threads whose ordering
    /// is observable. Thread analyses (§6.3, §7.4) are restricted to boards
    /// because "thread post ordering was not available" elsewhere.
    pub fn has_ordered_threads(self) -> bool {
        matches!(self, Platform::Boards)
    }

    /// Whether the call-to-harassment task applies. Pastes are excluded
    /// (Table 2): "pastes do not enable this interactivity". Blogs are
    /// handled qualitatively (§8) rather than by the classifier.
    pub fn cth_task_applies(self) -> bool {
        !matches!(self, Platform::Pastes | Platform::Blogs)
    }

    /// Stable lowercase identifier used in file names and reports.
    pub fn slug(self) -> &'static str {
        match self {
            Platform::Boards => "boards",
            Platform::Discord => "discord",
            Platform::Telegram => "telegram",
            Platform::Gab => "gab",
            Platform::Pastes => "pastes",
            Platform::Blogs => "blogs",
        }
    }
}

impl fmt::Display for Platform {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Platform::Boards => "Boards",
            Platform::Discord => "Discord",
            Platform::Telegram => "Telegram",
            Platform::Gab => "Gab",
            Platform::Pastes => "Pastes",
            Platform::Blogs => "Blogs",
        };
        f.write_str(name)
    }
}

/// A data-set family (paper Table 1 row).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DataSet {
    Boards,
    Blogs,
    Chat,
    Gab,
    Pastes,
}

impl DataSet {
    /// All data sets, in Table 1 order.
    pub const ALL: [DataSet; 5] = [
        DataSet::Boards,
        DataSet::Blogs,
        DataSet::Chat,
        DataSet::Gab,
        DataSet::Pastes,
    ];

    /// Platforms folded into this data set.
    pub fn platforms(self) -> &'static [Platform] {
        match self {
            DataSet::Boards => &[Platform::Boards],
            DataSet::Blogs => &[Platform::Blogs],
            DataSet::Chat => &[Platform::Discord, Platform::Telegram],
            DataSet::Gab => &[Platform::Gab],
            DataSet::Pastes => &[Platform::Pastes],
        }
    }

    /// Stable lowercase identifier.
    pub fn slug(self) -> &'static str {
        match self {
            DataSet::Boards => "boards",
            DataSet::Blogs => "blogs",
            DataSet::Chat => "chat",
            DataSet::Gab => "gab",
            DataSet::Pastes => "pastes",
        }
    }
}

impl fmt::Display for DataSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            DataSet::Boards => "Boards",
            DataSet::Blogs => "Blogs",
            DataSet::Chat => "Chat",
            DataSet::Gab => "Gab",
            DataSet::Pastes => "Pastes",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_platform_maps_into_its_data_set() {
        for p in Platform::ALL {
            assert!(
                p.data_set().platforms().contains(&p),
                "{p} missing from its data set"
            );
        }
    }

    #[test]
    fn chat_folds_discord_and_telegram() {
        assert_eq!(
            DataSet::Chat.platforms(),
            &[Platform::Discord, Platform::Telegram]
        );
        assert_eq!(Platform::Discord.data_set(), DataSet::Chat);
        assert_eq!(Platform::Telegram.data_set(), DataSet::Chat);
    }

    #[test]
    fn only_boards_have_ordered_threads() {
        let with_threads: Vec<_> = Platform::ALL
            .iter()
            .filter(|p| p.has_ordered_threads())
            .collect();
        assert_eq!(with_threads, vec![&Platform::Boards]);
    }

    #[test]
    fn cth_task_excludes_pastes_and_blogs() {
        assert!(!Platform::Pastes.cth_task_applies());
        assert!(!Platform::Blogs.cth_task_applies());
        assert!(Platform::Boards.cth_task_applies());
        assert!(Platform::Discord.cth_task_applies());
        assert!(Platform::Telegram.cth_task_applies());
        assert!(Platform::Gab.cth_task_applies());
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<_> = Platform::ALL.iter().map(|p| p.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), Platform::ALL.len());
    }

    #[test]
    fn data_sets_partition_platforms() {
        let mut seen = Vec::new();
        for ds in DataSet::ALL {
            seen.extend_from_slice(ds.platforms());
        }
        seen.sort_unstable();
        let mut all = Platform::ALL.to_vec();
        all.sort_unstable();
        assert_eq!(seen, all);
    }
}
