//! The call-to-harassment attack-type taxonomy of §6.1.
//!
//! The paper starts from the SoK taxonomy of Thomas et al. and adapts it:
//! "public opinion manipulation" is added, "purposeful embarrassment" is
//! promoted to a "reputational harm" parent with public/private variants,
//! "raiding" and "dogpiling" are merged, a "generic" parent and per-parent
//! "miscellaneous" subcategories are introduced. The result is **10 parent
//! attack types** (Table 5) and **28 subcategories** (Table 11; `Generic`
//! has no subcategories and is counted at the parent level).

use serde::{Deserialize, Serialize};
use std::fmt;

/// One of the ten parent attack types (paper §6.1.1, Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum AttackType {
    /// Intentional leaking of personal information, media, or other PII
    /// (includes doxing).
    ContentLeakage,
    /// A call to harass without an explicit tactic ("bully", "blackmail").
    Generic,
    /// Pretending to represent a third party to do harm (fake profiles,
    /// synthetic pornography).
    Impersonation,
    /// Hacking or gaining unauthorized access to the target's accounts.
    LockoutAndControl,
    /// Flooding the target with notifications/messages/calls (raiding,
    /// spamming, review bombing).
    Overloading,
    /// Spreading admittedly false narratives to manipulate public perception.
    PublicOpinionManipulation,
    /// Deceiving a reporting system or institutional authority (mass
    /// flagging, SWATing, false reports).
    Reporting,
    /// Harassing the target's family/employer/neighbours to damage their
    /// reputation, publicly or privately.
    ReputationalHarm,
    /// Following or monitoring a target and exposing private behaviour.
    Surveillance,
    /// Hate speech, unwanted explicit content, or other inflammatory content.
    ToxicContent,
}

impl AttackType {
    /// All parents, in Table 5 row order.
    pub const ALL: [AttackType; 10] = [
        AttackType::ContentLeakage,
        AttackType::Generic,
        AttackType::Impersonation,
        AttackType::LockoutAndControl,
        AttackType::Overloading,
        AttackType::PublicOpinionManipulation,
        AttackType::Reporting,
        AttackType::ReputationalHarm,
        AttackType::Surveillance,
        AttackType::ToxicContent,
    ];

    /// The subcategories belonging to this parent (empty for `Generic`).
    pub fn subcategories(self) -> &'static [Subcategory] {
        use Subcategory::*;
        match self {
            AttackType::ContentLeakage => &[
                Doxing,
                LeakedChatsProfile,
                NonConsensualMediaExposure,
                OutingDeadnaming,
                DoxPropagation,
                ContentLeakageMisc,
            ],
            AttackType::Generic => &[],
            AttackType::Impersonation => &[
                ImpersonatedProfiles,
                SyntheticPornography,
                ImpersonationMisc,
            ],
            AttackType::LockoutAndControl => &[AccountLockout, LockoutMisc],
            AttackType::Overloading => {
                &[NegativeRatingsReviews, Raiding, Spamming, OverloadingMisc]
            }
            AttackType::PublicOpinionManipulation => {
                &[HashtagHijacking, PublicOpinionManipulationMisc]
            }
            AttackType::Reporting => &[FalseReportingToAuthorities, MassFlagging, ReportingMisc],
            AttackType::ReputationalHarm => &[
                ReputationalHarmPrivate,
                ReputationalHarmPublic,
                ReputationalHarmMisc,
            ],
            AttackType::Surveillance => &[StalkingOrTracking, SurveillanceMisc],
            AttackType::ToxicContent => &[HateSpeech, UnwantedExplicitContent, ToxicContentMisc],
        }
    }

    /// Stable lowercase identifier.
    pub fn slug(self) -> &'static str {
        match self {
            AttackType::ContentLeakage => "content_leakage",
            AttackType::Generic => "generic",
            AttackType::Impersonation => "impersonation",
            AttackType::LockoutAndControl => "lockout_and_control",
            AttackType::Overloading => "overloading",
            AttackType::PublicOpinionManipulation => "public_opinion_manipulation",
            AttackType::Reporting => "reporting",
            AttackType::ReputationalHarm => "reputational_harm",
            AttackType::Surveillance => "surveillance",
            AttackType::ToxicContent => "toxic_content",
        }
    }
}

impl fmt::Display for AttackType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            AttackType::ContentLeakage => "Content Leakage",
            AttackType::Generic => "Generic",
            AttackType::Impersonation => "Impersonation",
            AttackType::LockoutAndControl => "Lockout And Control",
            AttackType::Overloading => "Overloading",
            AttackType::PublicOpinionManipulation => "Public Opinion Manip.",
            AttackType::Reporting => "Reporting",
            AttackType::ReputationalHarm => "Reputation Harm",
            AttackType::Surveillance => "Surveillance",
            AttackType::ToxicContent => "Toxic Content",
        };
        f.write_str(name)
    }
}

/// One of the 28 subcategory attack types (paper Table 11), plus
/// [`Subcategory::GenericCall`] representing the parent-only "Generic" label
/// so that a [`crate::LabelSet`] can encode every Table 11 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
#[repr(u8)]
pub enum Subcategory {
    // Content Leakage
    Doxing = 0,
    LeakedChatsProfile = 1,
    NonConsensualMediaExposure = 2,
    OutingDeadnaming = 3,
    DoxPropagation = 4,
    ContentLeakageMisc = 5,
    // Impersonation
    ImpersonatedProfiles = 6,
    SyntheticPornography = 7,
    ImpersonationMisc = 8,
    // Lockout And Control
    AccountLockout = 9,
    LockoutMisc = 10,
    // Overloading
    NegativeRatingsReviews = 11,
    Raiding = 12,
    Spamming = 13,
    OverloadingMisc = 14,
    // Public Opinion Manipulation
    HashtagHijacking = 15,
    PublicOpinionManipulationMisc = 16,
    // Reporting
    FalseReportingToAuthorities = 17,
    MassFlagging = 18,
    ReportingMisc = 19,
    // Reputational Harm
    ReputationalHarmPrivate = 20,
    ReputationalHarmPublic = 21,
    ReputationalHarmMisc = 22,
    // Surveillance
    StalkingOrTracking = 23,
    SurveillanceMisc = 24,
    // Toxic Content
    HateSpeech = 25,
    UnwantedExplicitContent = 26,
    ToxicContentMisc = 27,
    // Generic (parent-level label; Table 11 bottom row)
    GenericCall = 28,
}

impl Subcategory {
    /// Number of distinct labels (28 subcategories + the generic parent).
    pub const COUNT: usize = 29;

    /// All labels in Table 11 order.
    pub const ALL: [Subcategory; Self::COUNT] = [
        Subcategory::Doxing,
        Subcategory::LeakedChatsProfile,
        Subcategory::NonConsensualMediaExposure,
        Subcategory::OutingDeadnaming,
        Subcategory::DoxPropagation,
        Subcategory::ContentLeakageMisc,
        Subcategory::ImpersonatedProfiles,
        Subcategory::SyntheticPornography,
        Subcategory::ImpersonationMisc,
        Subcategory::AccountLockout,
        Subcategory::LockoutMisc,
        Subcategory::NegativeRatingsReviews,
        Subcategory::Raiding,
        Subcategory::Spamming,
        Subcategory::OverloadingMisc,
        Subcategory::HashtagHijacking,
        Subcategory::PublicOpinionManipulationMisc,
        Subcategory::FalseReportingToAuthorities,
        Subcategory::MassFlagging,
        Subcategory::ReportingMisc,
        Subcategory::ReputationalHarmPrivate,
        Subcategory::ReputationalHarmPublic,
        Subcategory::ReputationalHarmMisc,
        Subcategory::StalkingOrTracking,
        Subcategory::SurveillanceMisc,
        Subcategory::HateSpeech,
        Subcategory::UnwantedExplicitContent,
        Subcategory::ToxicContentMisc,
        Subcategory::GenericCall,
    ];

    /// Bit index for [`crate::LabelSet`] encoding.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Inverse of [`Subcategory::index`]; `None` for out-of-range indices.
    pub fn from_index(index: usize) -> Option<Subcategory> {
        Self::ALL.get(index).copied()
    }

    /// The parent attack type.
    pub fn parent(self) -> AttackType {
        use Subcategory::*;
        match self {
            Doxing
            | LeakedChatsProfile
            | NonConsensualMediaExposure
            | OutingDeadnaming
            | DoxPropagation
            | ContentLeakageMisc => AttackType::ContentLeakage,
            ImpersonatedProfiles | SyntheticPornography | ImpersonationMisc => {
                AttackType::Impersonation
            }
            AccountLockout | LockoutMisc => AttackType::LockoutAndControl,
            NegativeRatingsReviews | Raiding | Spamming | OverloadingMisc => {
                AttackType::Overloading
            }
            HashtagHijacking | PublicOpinionManipulationMisc => {
                AttackType::PublicOpinionManipulation
            }
            FalseReportingToAuthorities | MassFlagging | ReportingMisc => AttackType::Reporting,
            ReputationalHarmPrivate | ReputationalHarmPublic | ReputationalHarmMisc => {
                AttackType::ReputationalHarm
            }
            StalkingOrTracking | SurveillanceMisc => AttackType::Surveillance,
            HateSpeech | UnwantedExplicitContent | ToxicContentMisc => AttackType::ToxicContent,
            GenericCall => AttackType::Generic,
        }
    }

    /// Stable lowercase identifier.
    pub fn slug(self) -> &'static str {
        use Subcategory::*;
        match self {
            Doxing => "doxing",
            LeakedChatsProfile => "leaked_chats_profile",
            NonConsensualMediaExposure => "non_consensual_media_exposure",
            OutingDeadnaming => "outing_deadnaming",
            DoxPropagation => "dox_propagation",
            ContentLeakageMisc => "content_leakage_misc",
            ImpersonatedProfiles => "impersonated_profiles",
            SyntheticPornography => "synthetic_pornography",
            ImpersonationMisc => "impersonation_misc",
            AccountLockout => "account_lockout",
            LockoutMisc => "lockout_misc",
            NegativeRatingsReviews => "negative_ratings_reviews",
            Raiding => "raiding",
            Spamming => "spamming",
            OverloadingMisc => "overloading_misc",
            HashtagHijacking => "hashtag_hijacking",
            PublicOpinionManipulationMisc => "public_opinion_manipulation_misc",
            FalseReportingToAuthorities => "false_reporting_to_authorities",
            MassFlagging => "mass_flagging",
            ReportingMisc => "reporting_misc",
            ReputationalHarmPrivate => "reputational_harm_private",
            ReputationalHarmPublic => "reputational_harm_public",
            ReputationalHarmMisc => "reputational_harm_misc",
            StalkingOrTracking => "stalking_or_tracking",
            SurveillanceMisc => "surveillance_misc",
            HateSpeech => "hate_speech",
            UnwantedExplicitContent => "unwanted_explicit_content",
            ToxicContentMisc => "toxic_content_misc",
            GenericCall => "generic",
        }
    }
}

impl fmt::Display for Subcategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Subcategory::*;
        let name = match self {
            Doxing => "Doxing",
            LeakedChatsProfile => "Leaked Chats Profile",
            NonConsensualMediaExposure => "Non-Consensual Media Exposure",
            OutingDeadnaming => "Outing/Deadnaming",
            DoxPropagation => "Dox Propagation",
            ContentLeakageMisc => "Content Leakage (Misc.)",
            ImpersonatedProfiles => "Impersonated Profiles",
            SyntheticPornography => "Synthetic Pornography",
            ImpersonationMisc => "Impersonation (Misc.)",
            AccountLockout => "Account Lockout",
            LockoutMisc => "Lockout And Control (Misc.)",
            NegativeRatingsReviews => "Negative Ratings/Reviews",
            Raiding => "Raiding",
            Spamming => "Spamming",
            OverloadingMisc => "Overloading (Misc.)",
            HashtagHijacking => "Hashtag Hijacking",
            PublicOpinionManipulationMisc => "Public Opinion Manipulation (Misc.)",
            FalseReportingToAuthorities => "False Reporting to Authorities",
            MassFlagging => "Mass Flagging",
            ReportingMisc => "Reporting (Misc.)",
            ReputationalHarmPrivate => "Reputational Harm: Private",
            ReputationalHarmPublic => "Reputational Harm: Public",
            ReputationalHarmMisc => "Reputational Harm (Misc.)",
            StalkingOrTracking => "Stalking or Tracking",
            SurveillanceMisc => "Surveillance (Misc.)",
            HateSpeech => "Hate Speech",
            UnwantedExplicitContent => "Unwanted Explicit Content",
            ToxicContentMisc => "Toxic Content (Misc.)",
            GenericCall => "Generic",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn twenty_eight_subcategories_plus_generic() {
        // Table 11 defines 28 subcategories; GenericCall is the 29th label.
        assert_eq!(Subcategory::COUNT, 29);
        let non_generic = Subcategory::ALL
            .iter()
            .filter(|s| **s != Subcategory::GenericCall)
            .count();
        assert_eq!(non_generic, 28);
    }

    #[test]
    fn index_roundtrip() {
        for (i, sub) in Subcategory::ALL.iter().enumerate() {
            assert_eq!(sub.index(), i);
            assert_eq!(Subcategory::from_index(i), Some(*sub));
        }
        assert_eq!(Subcategory::from_index(Subcategory::COUNT), None);
    }

    #[test]
    fn parent_subcategory_closure() {
        // Every subcategory listed under a parent maps back to it.
        for parent in AttackType::ALL {
            for sub in parent.subcategories() {
                assert_eq!(sub.parent(), parent, "{sub} should belong to {parent}");
            }
        }
    }

    #[test]
    fn parents_partition_subcategories() {
        let mut count = 0;
        for parent in AttackType::ALL {
            count += parent.subcategories().len();
        }
        // Generic has no subcategories; GenericCall is its parent-level label.
        assert_eq!(count, 28);
    }

    #[test]
    fn generic_has_no_subcategories() {
        assert!(AttackType::Generic.subcategories().is_empty());
        assert_eq!(Subcategory::GenericCall.parent(), AttackType::Generic);
    }

    #[test]
    fn slugs_are_unique() {
        let mut slugs: Vec<_> = Subcategory::ALL.iter().map(|s| s.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), Subcategory::COUNT);
    }
}
