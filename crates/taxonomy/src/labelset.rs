//! Compact multi-label attack-type sets.
//!
//! §6.2: "13 % (831) of the annotated calls to harassment contained more than
//! one attack type" — so a call to harassment carries a *set* of labels, not
//! a single one. [`LabelSet`] packs the 29 labels (28 subcategories + the
//! generic parent) into a `u32` bitset with set-algebra helpers used by the
//! co-occurrence analyses.

use crate::attack::{AttackType, Subcategory};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A set of [`Subcategory`] labels, stored as a 29-bit bitset.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct LabelSet(u32);

impl LabelSet {
    /// The empty label set.
    pub const EMPTY: LabelSet = LabelSet(0);

    /// Bit mask covering every valid label.
    const FULL_MASK: u32 = (1 << Subcategory::COUNT) - 1;

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    /// Creates a set containing a single label.
    pub fn single(sub: Subcategory) -> Self {
        // Spec mirrors of the INC005 lint: ten parents (Table 5) and 28
        // subcategories plus the generic parent label (Table 11). The
        // bit-set representation additionally requires COUNT ≤ 32.
        debug_assert_eq!(AttackType::ALL.len(), 10);
        debug_assert_eq!(Subcategory::COUNT, 29);
        LabelSet(1 << sub.index())
    }

    /// Inserts a label; returns `true` if it was newly added.
    pub fn insert(&mut self, sub: Subcategory) -> bool {
        let bit = 1 << sub.index();
        let added = self.0 & bit == 0;
        self.0 |= bit;
        added
    }

    /// Removes a label; returns `true` if it was present.
    pub fn remove(&mut self, sub: Subcategory) -> bool {
        let bit = 1 << sub.index();
        let present = self.0 & bit != 0;
        self.0 &= !bit;
        present
    }

    /// Whether the label is present.
    pub fn contains(self, sub: Subcategory) -> bool {
        self.0 & (1 << sub.index()) != 0
    }

    /// Whether any label under the given parent is present.
    pub fn contains_parent(self, parent: AttackType) -> bool {
        self.parents().any(|p| p == parent)
    }

    /// Number of labels in the set.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates labels in Table 11 order.
    pub fn iter(self) -> impl Iterator<Item = Subcategory> {
        Subcategory::ALL
            .into_iter()
            .filter(move |s| self.contains(*s))
    }

    /// Iterates the *distinct* parent attack types present, in Table 5 order.
    pub fn parents(self) -> impl Iterator<Item = AttackType> {
        let mut mask = 0u16;
        for sub in self.iter() {
            let idx = AttackType::ALL
                .iter()
                .position(|p| *p == sub.parent())
                .unwrap();
            mask |= 1 << idx;
        }
        AttackType::ALL
            .into_iter()
            .enumerate()
            .filter(move |(i, _)| mask & (1 << i) != 0)
            .map(|(_, p)| p)
    }

    /// Number of distinct parent attack types.
    pub fn parent_count(self) -> usize {
        self.parents().count()
    }

    /// Set union.
    pub fn union(self, other: LabelSet) -> LabelSet {
        LabelSet(self.0 | other.0)
    }

    /// Set intersection.
    pub fn intersection(self, other: LabelSet) -> LabelSet {
        LabelSet(self.0 & other.0)
    }

    /// Set difference (`self - other`).
    pub fn difference(self, other: LabelSet) -> LabelSet {
        LabelSet(self.0 & !other.0)
    }

    /// Whether the two sets share any label.
    pub fn intersects(self, other: LabelSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Raw bit representation (for hashing/serialization diagnostics).
    pub fn bits(self) -> u32 {
        self.0
    }

    /// Rebuilds a set from raw bits, masking out invalid positions.
    pub fn from_bits(bits: u32) -> LabelSet {
        LabelSet(bits & Self::FULL_MASK)
    }
}

impl FromIterator<Subcategory> for LabelSet {
    fn from_iter<I: IntoIterator<Item = Subcategory>>(iter: I) -> Self {
        let mut set = Self::new();
        for sub in iter {
            set.insert(sub);
        }
        set
    }
}

impl fmt::Debug for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl fmt::Display for LabelSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for sub in self.iter() {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{sub}")?;
            first = false;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use Subcategory::*;

    #[test]
    fn insert_contains_remove() {
        let mut set = LabelSet::new();
        assert!(set.is_empty());
        assert!(set.insert(MassFlagging));
        assert!(!set.insert(MassFlagging));
        assert!(set.contains(MassFlagging));
        assert_eq!(set.len(), 1);
        assert!(set.remove(MassFlagging));
        assert!(!set.remove(MassFlagging));
        assert!(set.is_empty());
    }

    #[test]
    fn parents_deduplicate() {
        // Two reporting subcategories → one Reporting parent.
        let set = LabelSet::from_iter([MassFlagging, FalseReportingToAuthorities, Raiding]);
        let parents: Vec<_> = set.parents().collect();
        assert_eq!(
            parents,
            vec![AttackType::Overloading, AttackType::Reporting]
        );
        assert_eq!(set.parent_count(), 2);
    }

    #[test]
    fn contains_parent() {
        let set = LabelSet::single(HateSpeech);
        assert!(set.contains_parent(AttackType::ToxicContent));
        assert!(!set.contains_parent(AttackType::Reporting));
    }

    #[test]
    fn set_algebra() {
        let a = LabelSet::from_iter([Doxing, Raiding]);
        let b = LabelSet::from_iter([Raiding, MassFlagging]);
        assert_eq!(a.union(b).len(), 3);
        assert_eq!(a.intersection(b), LabelSet::single(Raiding));
        assert_eq!(a.difference(b), LabelSet::single(Doxing));
        assert!(a.intersects(b));
        assert!(!a.difference(b).intersects(b));
    }

    #[test]
    fn full_set_roundtrips_through_bits() {
        let all = LabelSet::from_iter(Subcategory::ALL);
        assert_eq!(all.len(), Subcategory::COUNT);
        assert_eq!(LabelSet::from_bits(all.bits()), all);
        // Out-of-range bits are masked.
        assert_eq!(LabelSet::from_bits(u32::MAX).len(), Subcategory::COUNT);
    }

    #[test]
    fn iter_is_sorted_in_table_order() {
        let set = LabelSet::from_iter([GenericCall, Doxing, Raiding]);
        let items: Vec<_> = set.iter().collect();
        assert_eq!(items, vec![Doxing, Raiding, GenericCall]);
    }

    #[test]
    fn generic_parent_via_generic_call() {
        let set = LabelSet::single(GenericCall);
        assert!(set.contains_parent(AttackType::Generic));
    }
}
