//! The paper's published measurements, as typed constants.
//!
//! These serve two purposes:
//!
//! 1. **Generator calibration** — `incite-corpus` plants synthetic calls to
//!    harassment and doxes whose attack-type / PII / gender distributions are
//!    drawn from these tables, so the pipeline has a known ground truth whose
//!    *shape* matches the paper.
//! 2. **Reference columns** — the `repro` binary prints paper-vs-measured for
//!    every experiment; the "paper" column comes from here.
//!
//! Counts are transcribed exactly as printed in the paper (IMC '21, Tables
//! 1–11 and the in-text statistics). Where the paper prints both a percentage
//! and a count we store the count.

use crate::attack::Subcategory;
use crate::gender::Gender;
use crate::pii_kind::PiiKind;
use crate::platform::DataSet;

/// Table 1: raw data set sizes and date ranges.
#[derive(Debug, Clone, Copy)]
pub struct RawDataSet {
    pub data_set: DataSet,
    pub posts: u64,
    /// Minimum post date, `YYYY-MM-DD`.
    pub min_date: &'static str,
    /// Maximum post date, `YYYY-MM-DD`.
    pub max_date: &'static str,
}

/// Table 1 rows.
pub const TABLE1: [RawDataSet; 5] = [
    RawDataSet {
        data_set: DataSet::Boards,
        posts: 405_943_342,
        min_date: "2001-06-14",
        max_date: "2020-08-01",
    },
    RawDataSet {
        data_set: DataSet::Blogs,
        posts: 115_052,
        min_date: "1999-04-23",
        max_date: "2020-08-14",
    },
    RawDataSet {
        data_set: DataSet::Chat,
        posts: 70_273_973,
        min_date: "2015-09-21",
        max_date: "2020-08-01",
    },
    RawDataSet {
        data_set: DataSet::Gab,
        posts: 50_165_961,
        min_date: "2016-08-10",
        max_date: "2020-08-01",
    },
    RawDataSet {
        data_set: DataSet::Pastes,
        posts: 32_555_682,
        min_date: "2008-03-22",
        max_date: "2020-08-01",
    },
];

/// Table 2: final annotated training-set sizes (positive, negative) per task.
#[derive(Debug, Clone, Copy)]
pub struct TrainingSizes {
    pub data_set: DataSet,
    pub dox_positive: u32,
    pub dox_negative: u32,
    /// `None` where the task does not apply (pastes for CTH).
    pub cth_positive: Option<u32>,
    pub cth_negative: Option<u32>,
}

/// Table 2 rows.
pub const TABLE2: [TrainingSizes; 4] = [
    TrainingSizes {
        data_set: DataSet::Boards,
        dox_positive: 163,
        dox_negative: 797,
        cth_positive: Some(967),
        cth_negative: Some(8_751),
    },
    TrainingSizes {
        data_set: DataSet::Chat,
        dox_positive: 536,
        dox_negative: 19_943,
        cth_positive: Some(401),
        cth_negative: Some(8_314),
    },
    TrainingSizes {
        data_set: DataSet::Gab,
        dox_positive: 216,
        dox_negative: 35_166,
        cth_positive: Some(356),
        cth_negative: Some(7_564),
    },
    TrainingSizes {
        data_set: DataSet::Pastes,
        dox_positive: 2_955,
        dox_negative: 19_598,
        cth_positive: None,
        cth_negative: None,
    },
];

/// Table 3: best-classifier performance per task (macro-averaged row).
#[derive(Debug, Clone, Copy)]
pub struct ClassifierPerformance {
    /// Hyperparameter-optimized max text length, in characters.
    pub text_length: usize,
    /// Positive-class F1 / precision / recall.
    pub positive_f1: f64,
    pub positive_precision: f64,
    pub positive_recall: f64,
    /// Macro-averaged F1.
    pub macro_f1: f64,
}

/// Table 3, doxing task.
pub const TABLE3_DOX: ClassifierPerformance = ClassifierPerformance {
    text_length: 512,
    positive_f1: 0.76,
    positive_precision: 0.77,
    positive_recall: 0.75,
    macro_f1: 0.88,
};

/// Table 3, call-to-harassment task.
pub const TABLE3_CTH: ClassifierPerformance = ClassifierPerformance {
    text_length: 128,
    positive_f1: 0.63,
    positive_precision: 0.63,
    positive_recall: 0.63,
    macro_f1: 0.80,
};

/// Table 4: threshold-selection outcomes per platform per task.
#[derive(Debug, Clone, Copy)]
pub struct ThresholdRow {
    /// Display label used by the paper ("Discord⋄", etc. — we store plain).
    pub platform: &'static str,
    pub threshold: f64,
    pub above_threshold: u32,
    pub annotated: u32,
    pub true_positive: u32,
    /// `true` where every document above the threshold was annotated.
    pub exhaustive: bool,
}

/// Table 4, doxing pipeline.
pub const TABLE4_DOX: [ThresholdRow; 5] = [
    ThresholdRow {
        platform: "boards",
        threshold: 0.9,
        above_threshold: 14_675,
        annotated: 3_300,
        true_positive: 2_549,
        exhaustive: false,
    },
    ThresholdRow {
        platform: "discord",
        threshold: 0.5,
        above_threshold: 197,
        annotated: 197,
        true_positive: 153,
        exhaustive: true,
    },
    ThresholdRow {
        platform: "gab",
        threshold: 0.8,
        above_threshold: 1_905,
        annotated: 1_905,
        true_positive: 1_657,
        exhaustive: true,
    },
    ThresholdRow {
        platform: "pastes",
        threshold: 0.5,
        above_threshold: 52_849,
        annotated: 3_241,
        true_positive: 3_118,
        exhaustive: false,
    },
    ThresholdRow {
        platform: "telegram",
        threshold: 0.6,
        above_threshold: 1_194,
        annotated: 1_194,
        true_positive: 948,
        exhaustive: true,
    },
];

/// Table 4, call-to-harassment pipeline.
pub const TABLE4_CTH: [ThresholdRow; 4] = [
    ThresholdRow {
        platform: "boards",
        threshold: 0.935,
        above_threshold: 30_685,
        annotated: 3_016,
        true_positive: 2_045,
        exhaustive: false,
    },
    ThresholdRow {
        platform: "gab",
        threshold: 0.935,
        above_threshold: 2_141,
        annotated: 2_141,
        true_positive: 1_335,
        exhaustive: true,
    },
    ThresholdRow {
        platform: "discord",
        threshold: 0.5,
        above_threshold: 1_093,
        annotated: 1_093,
        true_positive: 510,
        exhaustive: true,
    },
    ThresholdRow {
        platform: "telegram",
        threshold: 0.7,
        above_threshold: 4_166,
        annotated: 4_166,
        true_positive: 2_364,
        exhaustive: true,
    },
];

/// Total annotated true positives: 8,425 doxes + 6,254 calls to harassment.
pub const TOTAL_TRUE_DOXES: u32 = 8_425;
pub const TOTAL_TRUE_CTH: u32 = 6_254;
/// Headline figure from the abstract: 14,679 detected incitement documents.
pub const TOTAL_DETECTED: u32 = TOTAL_TRUE_DOXES + TOTAL_TRUE_CTH;

/// Annotated CTH sizes per data set used by Tables 5 and 11
/// (boards 2,045; chat 2,874 = Discord 510 + Telegram 2,364; Gab 1,335).
pub const CTH_SIZE: [(DataSet, u32); 3] = [
    (DataSet::Boards, 2_045),
    (DataSet::Chat, 2_874),
    (DataSet::Gab, 1_335),
];

/// Annotated dox sizes per data set used by Table 6
/// (boards 2,549; chat 1,101 = Discord 153 + Telegram 948; Gab 1,657; pastes 3,118).
pub const DOX_SIZE: [(DataSet, u32); 4] = [
    (DataSet::Boards, 2_549),
    (DataSet::Chat, 1_101),
    (DataSet::Gab, 1_657),
    (DataSet::Pastes, 3_118),
];

/// One subcategory row of Table 11: counts per (boards, chat, gab).
#[derive(Debug, Clone, Copy)]
pub struct Table11Row {
    pub subcategory: Subcategory,
    pub boards: u32,
    pub chat: u32,
    pub gab: u32,
}

impl Table11Row {
    /// Count for a data set (only the three CTH data sets are valid).
    pub fn count(&self, ds: DataSet) -> Option<u32> {
        match ds {
            DataSet::Boards => Some(self.boards),
            DataSet::Chat => Some(self.chat),
            DataSet::Gab => Some(self.gab),
            _ => None,
        }
    }
}

/// Table 11: complete subcategory taxonomy counts per data set.
pub const TABLE11: [Table11Row; 29] = [
    Table11Row {
        subcategory: Subcategory::Doxing,
        boards: 357,
        chat: 358,
        gab: 278,
    },
    Table11Row {
        subcategory: Subcategory::LeakedChatsProfile,
        boards: 18,
        chat: 3,
        gab: 6,
    },
    Table11Row {
        subcategory: Subcategory::NonConsensualMediaExposure,
        boards: 104,
        chat: 69,
        gab: 23,
    },
    Table11Row {
        subcategory: Subcategory::OutingDeadnaming,
        boards: 4,
        chat: 2,
        gab: 0,
    },
    Table11Row {
        subcategory: Subcategory::DoxPropagation,
        boards: 29,
        chat: 166,
        gab: 8,
    },
    Table11Row {
        subcategory: Subcategory::ContentLeakageMisc,
        boards: 11,
        chat: 8,
        gab: 1,
    },
    Table11Row {
        subcategory: Subcategory::ImpersonatedProfiles,
        boards: 45,
        chat: 38,
        gab: 13,
    },
    Table11Row {
        subcategory: Subcategory::SyntheticPornography,
        boards: 9,
        chat: 1,
        gab: 1,
    },
    Table11Row {
        subcategory: Subcategory::ImpersonationMisc,
        boards: 6,
        chat: 2,
        gab: 2,
    },
    Table11Row {
        subcategory: Subcategory::AccountLockout,
        boards: 2,
        chat: 3,
        gab: 0,
    },
    Table11Row {
        subcategory: Subcategory::LockoutMisc,
        boards: 3,
        chat: 2,
        gab: 0,
    },
    Table11Row {
        subcategory: Subcategory::NegativeRatingsReviews,
        boards: 5,
        chat: 9,
        gab: 5,
    },
    Table11Row {
        subcategory: Subcategory::Raiding,
        boards: 89,
        chat: 370,
        gab: 244,
    },
    Table11Row {
        subcategory: Subcategory::Spamming,
        boards: 18,
        chat: 22,
        gab: 16,
    },
    Table11Row {
        subcategory: Subcategory::OverloadingMisc,
        boards: 12,
        chat: 15,
        gab: 0,
    },
    Table11Row {
        subcategory: Subcategory::HashtagHijacking,
        boards: 16,
        chat: 40,
        gab: 22,
    },
    Table11Row {
        subcategory: Subcategory::PublicOpinionManipulationMisc,
        boards: 126,
        chat: 50,
        gab: 1,
    },
    Table11Row {
        subcategory: Subcategory::FalseReportingToAuthorities,
        boards: 409,
        chat: 311,
        gab: 157,
    },
    Table11Row {
        subcategory: Subcategory::MassFlagging,
        boards: 417,
        chat: 909,
        gab: 169,
    },
    Table11Row {
        subcategory: Subcategory::ReportingMisc,
        boards: 326,
        chat: 289,
        gab: 219,
    },
    Table11Row {
        subcategory: Subcategory::ReputationalHarmPrivate,
        boards: 64,
        chat: 128,
        gab: 24,
    },
    Table11Row {
        subcategory: Subcategory::ReputationalHarmPublic,
        boards: 40,
        chat: 240,
        gab: 118,
    },
    Table11Row {
        subcategory: Subcategory::ReputationalHarmMisc,
        boards: 56,
        chat: 2,
        gab: 1,
    },
    Table11Row {
        subcategory: Subcategory::StalkingOrTracking,
        boards: 10,
        chat: 14,
        gab: 4,
    },
    Table11Row {
        subcategory: Subcategory::SurveillanceMisc,
        boards: 5,
        chat: 0,
        gab: 1,
    },
    Table11Row {
        subcategory: Subcategory::HateSpeech,
        boards: 79,
        chat: 57,
        gab: 59,
    },
    Table11Row {
        subcategory: Subcategory::UnwantedExplicitContent,
        boards: 45,
        chat: 9,
        gab: 2,
    },
    Table11Row {
        subcategory: Subcategory::ToxicContentMisc,
        boards: 32,
        chat: 7,
        gab: 0,
    },
    Table11Row {
        subcategory: Subcategory::GenericCall,
        boards: 146,
        chat: 161,
        gab: 61,
    },
];

/// One subcategory row of Table 10: counts per inferred gender.
#[derive(Debug, Clone, Copy)]
pub struct Table10Row {
    pub subcategory: Subcategory,
    pub unknown: u32,
    pub female: u32,
    pub male: u32,
}

impl Table10Row {
    /// Count for a gender column.
    pub fn count(&self, gender: Gender) -> u32 {
        match gender {
            Gender::Unknown => self.unknown,
            Gender::Female => self.female,
            Gender::Male => self.male,
        }
    }
}

/// Gender column totals of Table 10 (unknown 2,711; female 1,160; male 2,383).
pub const GENDER_SIZE: [(Gender, u32); 3] = [
    (Gender::Unknown, 2_711),
    (Gender::Female, 1_160),
    (Gender::Male, 2_383),
];

/// Table 10: complete subcategory taxonomy counts per inferred gender.
pub const TABLE10: [Table10Row; 29] = [
    Table10Row {
        subcategory: Subcategory::Doxing,
        unknown: 297,
        female: 215,
        male: 481,
    },
    Table10Row {
        subcategory: Subcategory::LeakedChatsProfile,
        unknown: 4,
        female: 13,
        male: 10,
    },
    Table10Row {
        subcategory: Subcategory::NonConsensualMediaExposure,
        unknown: 73,
        female: 75,
        male: 48,
    },
    Table10Row {
        subcategory: Subcategory::OutingDeadnaming,
        unknown: 1,
        female: 2,
        male: 3,
    },
    Table10Row {
        subcategory: Subcategory::DoxPropagation,
        unknown: 57,
        female: 19,
        male: 127,
    },
    Table10Row {
        subcategory: Subcategory::ContentLeakageMisc,
        unknown: 5,
        female: 4,
        male: 11,
    },
    Table10Row {
        subcategory: Subcategory::ImpersonatedProfiles,
        unknown: 65,
        female: 15,
        male: 16,
    },
    Table10Row {
        subcategory: Subcategory::SyntheticPornography,
        unknown: 2,
        female: 7,
        male: 2,
    },
    Table10Row {
        subcategory: Subcategory::ImpersonationMisc,
        unknown: 5,
        female: 3,
        male: 2,
    },
    Table10Row {
        subcategory: Subcategory::AccountLockout,
        unknown: 2,
        female: 0,
        male: 3,
    },
    Table10Row {
        subcategory: Subcategory::LockoutMisc,
        unknown: 0,
        female: 1,
        male: 4,
    },
    Table10Row {
        subcategory: Subcategory::NegativeRatingsReviews,
        unknown: 9,
        female: 1,
        male: 9,
    },
    Table10Row {
        subcategory: Subcategory::Raiding,
        unknown: 283,
        female: 184,
        male: 236,
    },
    Table10Row {
        subcategory: Subcategory::Spamming,
        unknown: 23,
        female: 7,
        male: 26,
    },
    Table10Row {
        subcategory: Subcategory::OverloadingMisc,
        unknown: 2,
        female: 3,
        male: 22,
    },
    Table10Row {
        subcategory: Subcategory::HashtagHijacking,
        unknown: 69,
        female: 1,
        male: 8,
    },
    Table10Row {
        subcategory: Subcategory::PublicOpinionManipulationMisc,
        unknown: 112,
        female: 24,
        male: 41,
    },
    Table10Row {
        subcategory: Subcategory::FalseReportingToAuthorities,
        unknown: 371,
        female: 169,
        male: 337,
    },
    Table10Row {
        subcategory: Subcategory::MassFlagging,
        unknown: 818,
        female: 145,
        male: 532,
    },
    Table10Row {
        subcategory: Subcategory::ReportingMisc,
        unknown: 427,
        female: 108,
        male: 299,
    },
    Table10Row {
        subcategory: Subcategory::ReputationalHarmPrivate,
        unknown: 58,
        female: 87,
        male: 71,
    },
    Table10Row {
        subcategory: Subcategory::ReputationalHarmPublic,
        unknown: 202,
        female: 54,
        male: 142,
    },
    Table10Row {
        subcategory: Subcategory::ReputationalHarmMisc,
        unknown: 18,
        female: 17,
        male: 24,
    },
    Table10Row {
        subcategory: Subcategory::StalkingOrTracking,
        unknown: 11,
        female: 7,
        male: 10,
    },
    Table10Row {
        subcategory: Subcategory::SurveillanceMisc,
        unknown: 4,
        female: 2,
        male: 0,
    },
    Table10Row {
        subcategory: Subcategory::HateSpeech,
        unknown: 60,
        female: 40,
        male: 95,
    },
    Table10Row {
        subcategory: Subcategory::UnwantedExplicitContent,
        unknown: 10,
        female: 28,
        male: 18,
    },
    Table10Row {
        subcategory: Subcategory::ToxicContentMisc,
        unknown: 4,
        female: 5,
        male: 30,
    },
    Table10Row {
        subcategory: Subcategory::GenericCall,
        unknown: 114,
        female: 99,
        male: 155,
    },
];

/// One PII row of Table 6: counts per (boards, chat, gab, pastes).
#[derive(Debug, Clone, Copy)]
pub struct Table6Row {
    pub kind: PiiKind,
    pub boards: u32,
    pub chat: u32,
    pub gab: u32,
    pub pastes: u32,
}

impl Table6Row {
    /// Count for a data set (only the four dox data sets are valid).
    pub fn count(&self, ds: DataSet) -> Option<u32> {
        match ds {
            DataSet::Boards => Some(self.boards),
            DataSet::Chat => Some(self.chat),
            DataSet::Gab => Some(self.gab),
            DataSet::Pastes => Some(self.pastes),
            DataSet::Blogs => None,
        }
    }
}

/// Table 6: PII included in doxes per data set.
pub const TABLE6: [Table6Row; 9] = [
    Table6Row {
        kind: PiiKind::Address,
        boards: 748,
        chat: 326,
        gab: 299,
        pastes: 1_424,
    },
    Table6Row {
        kind: PiiKind::CreditCard,
        boards: 4,
        chat: 47,
        gab: 0,
        pastes: 154,
    },
    Table6Row {
        kind: PiiKind::Email,
        boards: 379,
        chat: 162,
        gab: 332,
        pastes: 1_414,
    },
    Table6Row {
        kind: PiiKind::Facebook,
        boards: 317,
        chat: 70,
        gab: 100,
        pastes: 1_226,
    },
    Table6Row {
        kind: PiiKind::Instagram,
        boards: 107,
        chat: 36,
        gab: 10,
        pastes: 311,
    },
    Table6Row {
        kind: PiiKind::Phone,
        boards: 565,
        chat: 297,
        gab: 501,
        pastes: 1_419,
    },
    Table6Row {
        kind: PiiKind::Ssn,
        boards: 18,
        chat: 15,
        gab: 7,
        pastes: 124,
    },
    Table6Row {
        kind: PiiKind::Twitter,
        boards: 237,
        chat: 38,
        gab: 104,
        pastes: 425,
    },
    Table6Row {
        kind: PiiKind::YouTube,
        boards: 210,
        chat: 22,
        gab: 18,
        pastes: 368,
    },
];

/// §5.3 crowdsourced annotation statistics.
pub mod annotation {
    /// Fraction of raw documents on which two crowd annotators disagreed.
    pub const DOX_DISAGREEMENT: f64 = 0.0394;
    pub const CTH_DISAGREEMENT: f64 = 0.1866;
    /// Cohen's kappa over initial crowd annotations.
    pub const DOX_CROWD_KAPPA: f64 = 0.519;
    pub const CTH_CROWD_KAPPA: f64 = 0.350;
    /// Cohen's kappa over domain-expert annotations (1,000 docs per task).
    pub const DOX_EXPERT_KAPPA: f64 = 0.893;
    pub const CTH_EXPERT_KAPPA: f64 = 0.845;
    /// Qualification gate: ≥ 90 % on 10 screening posts to enter, removal
    /// below 85 %, retest every 10th document.
    pub const ENTRY_SCORE: f64 = 0.90;
    pub const RETENTION_SCORE: f64 = 0.85;
    pub const RETEST_EVERY: usize = 10;
    /// Over 100,000 crowd annotations: > 79 K dox task, > 25 K CTH task.
    pub const DOX_TASK_DOCS: u32 = 79_374;
    pub const CTH_TASK_DOCS: u32 = 26_353;
}

/// §6.3 / §7.4 thread-analysis statistics (boards only).
pub mod threads {
    /// CTH appears as the first post in 3.7 % (75) of threads, last in 2.7 % (55).
    pub const CTH_FIRST_POST_FRAC: f64 = 0.037;
    pub const CTH_LAST_POST_FRAC: f64 = 0.027;
    /// CTH thread-position median / mean / standard deviation.
    pub const CTH_POSITION_MEDIAN: f64 = 70.0;
    pub const CTH_POSITION_MEAN: f64 = 145.0;
    pub const CTH_POSITION_STD: f64 = 263.0;
    /// Dox position statistics (§7.4).
    pub const DOX_FIRST_POST_FRAC: f64 = 0.097;
    pub const DOX_LAST_POST_FRAC: f64 = 0.027;
    pub const DOX_POSITION_MEDIAN: f64 = 142.0;
    pub const DOX_POSITION_MEAN: f64 = 59.0;
    pub const DOX_POSITION_STD: f64 = 236.0;
    /// Thread overlap: 8.53 % of above-threshold CTH share a thread with an
    /// above-threshold dox; 17.85 % of dox threads contain a CTH.
    pub const CTH_WITH_DOX_FRAC: f64 = 0.0853;
    pub const DOX_WITH_CTH_FRAC: f64 = 0.1785;
    /// Chance rates of a CTH / dox appearing in a random thread.
    pub const CTH_BASE_RATE: f64 = 0.0020;
    pub const DOX_BASE_RATE: f64 = 0.0010;
    /// Random boards baseline sample size.
    pub const BASELINE_SAMPLE: usize = 5_000;
    /// Only "toxic content" threads showed significantly larger responses
    /// (t = 2.8477, p < 0.01).
    pub const TOXIC_T_STATISTIC: f64 = 2.8477;
}

/// §6.2 co-occurrence statistics.
pub mod cooccurrence {
    /// 831 of 6,254 annotated CTH carried more than one attack type.
    pub const MULTI_LABEL: u32 = 831;
    pub const TWO_LABELS: u32 = 767;
    pub const THREE_LABELS: u32 = 54;
    pub const FOUR_PLUS_LABELS: u32 = 10;
    /// 64 % of surveillance CTH were also content leakage.
    pub const SURVEILLANCE_AND_LEAKAGE: f64 = 0.64;
    /// 30 % of impersonation CTH were also public-opinion manipulation.
    pub const IMPERSONATION_AND_POM: f64 = 0.30;
}

/// §7.3 repeated-dox statistics.
pub mod repeats {
    /// Full above-threshold dox set size used for linking.
    pub const ABOVE_THRESHOLD_DOXES: u32 = 70_820;
    /// 14,587 (20.1 %) share OSN handles with another dox.
    pub const REPEATED: u32 = 14_587;
    /// 98 % reposted to the same data set; 250 cross-posted.
    pub const SAME_DATASET_FRAC: f64 = 0.98;
    pub const CROSS_POSTED: u32 = 250;
    /// Per-platform split of repeated doxes.
    pub const ON_PASTES: u32 = 13_076;
    pub const ON_BOARDS: u32 = 1_402;
    pub const ON_CHATS: u32 = 62;
    pub const ON_GAB: u32 = 47;
    /// Duplicates found inside the small annotated set (936, 11.12 %).
    pub const ANNOTATED_DUPLICATES: u32 = 936;
}

/// §8 blog-analysis statistics (Table 8).
pub mod blogs {
    pub struct BlogRow {
        pub name: &'static str,
        pub total_posts: u32,
        pub relevant: u32,
        pub actual_doxes: u32,
    }
    pub const TABLE8: [BlogRow; 3] = [
        BlogRow {
            name: "Daily Stormer",
            total_posts: 36_851,
            relevant: 3_072,
            actual_doxes: 90,
        },
        BlogRow {
            name: "NoBlogs",
            total_posts: 78_108,
            relevant: 668,
            actual_doxes: 66,
        },
        BlogRow {
            name: "The Torch",
            total_posts: 93,
            relevant: 38,
            actual_doxes: 23,
        },
    ];
    /// Keyword query on The Torch missed 10 of 33 doxes.
    pub const TORCH_QUERY_MISSED: u32 = 10;
    pub const TORCH_QUERY_TOTAL: u32 = 33;
    /// 60 % (54) of relevant Daily Stormer doxes include a call to overload;
    /// 26 more include a contact handle but no explicit raid call.
    pub const STORMER_OVERLOAD_DOXES: u32 = 54;
    pub const STORMER_CONTACT_ONLY: u32 = 26;
}

/// §5.6 extraction-evaluation statistics.
pub mod extraction {
    /// All PII regexes scored ≥ 95 % accuracy on 98 true-positive pastes doxes.
    pub const MIN_ACCURACY: f64 = 0.95;
    pub const EVAL_SAMPLE: usize = 98;
    /// Seven of the extractors scored 100 %.
    pub const PERFECT_EXTRACTORS: usize = 7;
    /// Pronoun-based gender inference agreed with the target 94.3 % of the
    /// time on a 123-dox sample.
    pub const GENDER_ACCURACY: f64 = 0.943;
    pub const GENDER_EVAL_SAMPLE: usize = 123;
}

/// Sums a Table 11 column; used to sanity-check transcription against the
/// paper's printed totals.
pub fn table11_parent_total(ds: DataSet, parent: crate::AttackType) -> u32 {
    TABLE11
        .iter()
        .filter(|row| row.subcategory.parent() == parent)
        .filter_map(|row| row.count(ds))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attack::AttackType;

    #[test]
    fn table1_totals() {
        let total: u64 = TABLE1.iter().map(|r| r.posts).sum();
        // ~559 M raw documents across the five data sets.
        assert_eq!(total, 559_054_010);
    }

    #[test]
    fn table2_totals_match_paper() {
        let dox_pos: u32 = TABLE2.iter().map(|r| r.dox_positive).sum();
        let dox_neg: u32 = TABLE2.iter().map(|r| r.dox_negative).sum();
        let cth_pos: u32 = TABLE2.iter().filter_map(|r| r.cth_positive).sum();
        let cth_neg: u32 = TABLE2.iter().filter_map(|r| r.cth_negative).sum();
        assert_eq!(dox_pos, 3_870);
        assert_eq!(dox_neg, 75_504);
        assert_eq!(cth_pos, 1_724);
        assert_eq!(cth_neg, 24_629);
    }

    #[test]
    fn table4_totals_match_paper() {
        let dox_above: u32 = TABLE4_DOX.iter().map(|r| r.above_threshold).sum();
        let dox_ann: u32 = TABLE4_DOX.iter().map(|r| r.annotated).sum();
        let dox_tp: u32 = TABLE4_DOX.iter().map(|r| r.true_positive).sum();
        assert_eq!(dox_above, 70_820); // paper prints 70,823 in Fig 1 and 70,820 in §7.3
        assert_eq!(dox_ann, 9_837);
        assert_eq!(dox_tp, TOTAL_TRUE_DOXES);

        let cth_above: u32 = TABLE4_CTH.iter().map(|r| r.above_threshold).sum();
        let cth_ann: u32 = TABLE4_CTH.iter().map(|r| r.annotated).sum();
        let cth_tp: u32 = TABLE4_CTH.iter().map(|r| r.true_positive).sum();
        assert_eq!(cth_above, 38_085);
        assert_eq!(cth_ann, 10_416);
        assert_eq!(cth_tp, TOTAL_TRUE_CTH);
    }

    #[test]
    fn headline_total() {
        assert_eq!(TOTAL_DETECTED, 14_679);
    }

    #[test]
    fn cth_sizes_sum_to_true_positives() {
        let total: u32 = CTH_SIZE.iter().map(|(_, n)| n).sum();
        assert_eq!(total, TOTAL_TRUE_CTH);
    }

    #[test]
    fn dox_sizes_sum_to_true_positives() {
        let total: u32 = DOX_SIZE.iter().map(|(_, n)| n).sum();
        assert_eq!(total, TOTAL_TRUE_DOXES);
    }

    #[test]
    fn table11_has_every_label_once() {
        let mut subs: Vec<_> = TABLE11.iter().map(|r| r.subcategory).collect();
        subs.sort();
        subs.dedup();
        assert_eq!(subs.len(), Subcategory::COUNT);
    }

    #[test]
    fn table11_parent_totals_match_table5() {
        // Spot-check the printed Table 5 parent totals.
        assert_eq!(
            table11_parent_total(DataSet::Boards, AttackType::Reporting),
            1_152
        );
        assert_eq!(
            table11_parent_total(DataSet::Chat, AttackType::Reporting),
            1_509
        );
        assert_eq!(
            table11_parent_total(DataSet::Gab, AttackType::Reporting),
            545
        );
        assert_eq!(
            table11_parent_total(DataSet::Boards, AttackType::ContentLeakage),
            523
        );
        assert_eq!(
            table11_parent_total(DataSet::Chat, AttackType::ContentLeakage),
            606
        );
        assert_eq!(
            table11_parent_total(DataSet::Gab, AttackType::ContentLeakage),
            316
        );
        assert_eq!(
            table11_parent_total(DataSet::Boards, AttackType::Overloading),
            124
        );
        assert_eq!(
            table11_parent_total(DataSet::Chat, AttackType::Overloading),
            416
        );
        assert_eq!(
            table11_parent_total(DataSet::Gab, AttackType::Overloading),
            265
        );
        assert_eq!(
            table11_parent_total(DataSet::Boards, AttackType::Generic),
            146
        );
    }

    #[test]
    fn reporting_over_half_of_total() {
        // Abstract: > 50 % of CTH included reporting calls (3,193 incl. blogs' analysis; Table 5 sums to 3,206 in text).
        let reporting: u32 = [DataSet::Boards, DataSet::Chat, DataSet::Gab]
            .iter()
            .map(|ds| table11_parent_total(*ds, AttackType::Reporting))
            .sum();
        assert!(reporting * 2 > TOTAL_TRUE_CTH, "reporting = {reporting}");
    }

    #[test]
    fn table10_has_every_label_once() {
        let mut subs: Vec<_> = TABLE10.iter().map(|r| r.subcategory).collect();
        subs.sort();
        subs.dedup();
        assert_eq!(subs.len(), Subcategory::COUNT);
    }

    #[test]
    fn gender_sizes_sum_to_true_cth() {
        let total: u32 = GENDER_SIZE.iter().map(|(_, n)| n).sum();
        assert_eq!(total, TOTAL_TRUE_CTH);
    }

    #[test]
    fn table6_counts_bounded_by_sizes() {
        for row in TABLE6 {
            for (ds, size) in DOX_SIZE {
                let count = row.count(ds).unwrap();
                assert!(count <= size, "{:?} {} exceeds data-set size", row.kind, ds);
            }
        }
    }

    #[test]
    fn repeated_dox_fraction() {
        let frac = repeats::REPEATED as f64 / repeats::ABOVE_THRESHOLD_DOXES as f64;
        assert!((frac - 0.201).abs() < 0.01, "frac = {frac}");
        let split = repeats::ON_PASTES + repeats::ON_BOARDS + repeats::ON_CHATS + repeats::ON_GAB;
        assert_eq!(split, repeats::REPEATED);
    }

    #[test]
    fn blog_table_rows() {
        assert_eq!(blogs::TABLE8.len(), 3);
        assert_eq!(blogs::TABLE8[0].actual_doxes, 90);
        assert!(
            blogs::TABLE8[2].actual_doxes * 10 > blogs::TABLE8[2].relevant * 6,
            "Torch dox yield should be ~60% of relevant"
        );
    }
}
