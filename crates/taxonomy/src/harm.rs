//! The harm-risk taxonomy of §7.2 (paper Table 7).
//!
//! A doxing target is considered at elevated risk of a harm category based on
//! the PII the dox contains. "Reputation" risk cannot be inferred from
//! extracted PII alone — the paper annotates it manually — so the assignment
//! function takes an explicit flag for it.

use crate::pii_kind::{PiiKind, PiiSet};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A harm-risk category (Table 7 / Figure 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum HarmRisk {
    /// Risk of online harassment: the dox exposes OSN profiles or email.
    Online,
    /// Risk of physical harm: the dox exposes a physical location.
    Physical,
    /// Risk of economic / identity harm: financial identifiers or email.
    EconomicIdentity,
    /// Risk of reputational harm: family / employer information (manually
    /// annotated in the paper).
    Reputation,
}

impl HarmRisk {
    /// All categories, in Figure 2 row order.
    pub const ALL: [HarmRisk; 4] = [
        HarmRisk::Physical,
        HarmRisk::EconomicIdentity,
        HarmRisk::Online,
        HarmRisk::Reputation,
    ];

    /// The PII kinds that trigger this risk (Table 7). Empty for
    /// `Reputation`, which requires manual annotation.
    pub fn trigger_kinds(self) -> &'static [PiiKind] {
        match self {
            HarmRisk::Online => &[
                PiiKind::Email,
                PiiKind::Instagram,
                PiiKind::Facebook,
                PiiKind::Twitter,
                PiiKind::YouTube,
            ],
            HarmRisk::Physical => &[PiiKind::Address],
            HarmRisk::EconomicIdentity => &[PiiKind::Email, PiiKind::CreditCard, PiiKind::Ssn],
            HarmRisk::Reputation => &[],
        }
    }

    /// Stable lowercase identifier.
    pub fn slug(self) -> &'static str {
        match self {
            HarmRisk::Online => "online",
            HarmRisk::Physical => "physical",
            HarmRisk::EconomicIdentity => "economic_identity",
            HarmRisk::Reputation => "reputation",
        }
    }
}

impl fmt::Display for HarmRisk {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            HarmRisk::Online => "Online",
            HarmRisk::Physical => "Physical",
            HarmRisk::EconomicIdentity => "Economic / Identity",
            HarmRisk::Reputation => "Reputation",
        };
        f.write_str(name)
    }
}

/// A set of harm risks assigned to one dox, stored as a 4-bit bitset.
///
/// Figure 2's "venn" columns are exactly the 15 non-empty values of this
/// type (plus the empty set for doxes carrying no risk indicator, which the
/// paper notes covers over 50 % of Discord samples).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RiskSet(u8);

impl RiskSet {
    /// The empty risk set.
    pub const EMPTY: RiskSet = RiskSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    fn bit(risk: HarmRisk) -> u8 {
        1 << HarmRisk::ALL.iter().position(|r| *r == risk).unwrap()
    }

    /// Inserts a risk; returns `true` if newly added.
    pub fn insert(&mut self, risk: HarmRisk) -> bool {
        let b = Self::bit(risk);
        let added = self.0 & b == 0;
        self.0 |= b;
        added
    }

    /// Whether the risk is present.
    pub fn contains(self, risk: HarmRisk) -> bool {
        self.0 & Self::bit(risk) != 0
    }

    /// Number of risks present (Figure 2 top row: 1–4).
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether no risk indicator is present.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates risks in Figure 2 row order.
    pub fn iter(self) -> impl Iterator<Item = HarmRisk> {
        HarmRisk::ALL.into_iter().filter(move |r| self.contains(*r))
    }

    /// Raw bits, useful as a combination key (0–15).
    pub fn bits(self) -> u8 {
        self.0
    }

    /// Rebuilds from raw bits (masked to 4 bits).
    pub fn from_bits(bits: u8) -> RiskSet {
        RiskSet(bits & 0x0f)
    }

    /// Derives the risk set implied by a dox's extracted PII (§7.2) plus the
    /// manually annotated reputation flag (family/employer information).
    pub fn from_pii(pii: PiiSet, reputation_flag: bool) -> RiskSet {
        let mut set = RiskSet::new();
        for risk in [
            HarmRisk::Online,
            HarmRisk::Physical,
            HarmRisk::EconomicIdentity,
        ] {
            if risk.trigger_kinds().iter().any(|k| pii.contains(*k)) {
                set.insert(risk);
            }
        }
        if reputation_flag {
            set.insert(HarmRisk::Reputation);
        }
        set
    }
}

impl FromIterator<HarmRisk> for RiskSet {
    fn from_iter<I: IntoIterator<Item = HarmRisk>>(iter: I) -> Self {
        let mut set = RiskSet::new();
        for r in iter {
            set.insert(r);
        }
        set
    }
}

impl fmt::Debug for RiskSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table7_trigger_mapping() {
        assert_eq!(HarmRisk::Physical.trigger_kinds(), &[PiiKind::Address]);
        assert!(HarmRisk::Online.trigger_kinds().contains(&PiiKind::Email));
        assert!(HarmRisk::Online
            .trigger_kinds()
            .contains(&PiiKind::Facebook));
        assert!(HarmRisk::EconomicIdentity
            .trigger_kinds()
            .contains(&PiiKind::Ssn));
        assert!(HarmRisk::EconomicIdentity
            .trigger_kinds()
            .contains(&PiiKind::CreditCard));
        // Email triggers BOTH online and economic risk (paper footnote 1).
        assert!(HarmRisk::EconomicIdentity
            .trigger_kinds()
            .contains(&PiiKind::Email));
        assert!(HarmRisk::Reputation.trigger_kinds().is_empty());
    }

    #[test]
    fn from_pii_email_triggers_two_risks() {
        let pii: PiiSet = [PiiKind::Email].into_iter().collect();
        let risks = RiskSet::from_pii(pii, false);
        assert!(risks.contains(HarmRisk::Online));
        assert!(risks.contains(HarmRisk::EconomicIdentity));
        assert!(!risks.contains(HarmRisk::Physical));
        assert_eq!(risks.len(), 2);
    }

    #[test]
    fn from_pii_address_is_physical_only() {
        let pii: PiiSet = [PiiKind::Address].into_iter().collect();
        let risks = RiskSet::from_pii(pii, false);
        assert_eq!(risks.iter().collect::<Vec<_>>(), vec![HarmRisk::Physical]);
    }

    #[test]
    fn reputation_requires_manual_flag() {
        let pii: PiiSet = PiiKind::ALL.into_iter().collect();
        assert!(!RiskSet::from_pii(pii, false).contains(HarmRisk::Reputation));
        assert!(RiskSet::from_pii(pii, true).contains(HarmRisk::Reputation));
        assert_eq!(RiskSet::from_pii(pii, true).len(), 4);
    }

    #[test]
    fn empty_pii_yields_empty_risks() {
        assert!(RiskSet::from_pii(PiiSet::EMPTY, false).is_empty());
    }

    #[test]
    fn sixteen_combinations() {
        // Figure 2 has 15 non-empty combination columns.
        let mut seen = std::collections::HashSet::new();
        for bits in 0..16u8 {
            seen.insert(RiskSet::from_bits(bits).bits());
        }
        assert_eq!(seen.len(), 16);
        assert_eq!(RiskSet::from_bits(0xff).bits(), 0x0f);
    }

    #[test]
    fn bitset_roundtrip() {
        let set: RiskSet = [HarmRisk::Online, HarmRisk::Reputation]
            .into_iter()
            .collect();
        assert_eq!(RiskSet::from_bits(set.bits()), set);
        assert_eq!(set.len(), 2);
    }
}
