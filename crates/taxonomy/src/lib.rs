//! # incite-taxonomy
//!
//! Shared vocabulary for the `incite` reproduction of *A Large-Scale
//! Characterization of Online Incitements to Harassment Across Platforms*
//! (Aliapoulios et al., IMC '21).
//!
//! This crate defines the typed taxonomies every other crate speaks:
//!
//! * [`Platform`] / [`DataSet`] — the five platform families the paper crawls
//!   (boards, chat, Gab, pastes, blogs) and the per-application split of the
//!   chat data set (Discord vs. Telegram).
//! * [`AttackType`] / [`Subcategory`] — the call-to-harassment attack-type
//!   taxonomy of §6.1: 10 parent categories and 28 subcategories (paper
//!   Tables 5 and 11).
//! * [`LabelSet`] — a compact bitset over subcategories; a single call to
//!   harassment can carry several attack types at once (§6.2 measures 13 %
//!   multi-label incidence).
//! * [`PiiKind`] — the nine PII families extracted in §5.6 (Table 6).
//! * [`HarmRisk`] and the PII → harm mapping of §7.2 (Table 7).
//! * [`Gender`] — the pronoun-inferred target gender of §5.6.
//! * [`calibration`] — the paper's published distributions (Tables 5, 6, 10,
//!   11 and headline statistics), used both to calibrate the synthetic corpus
//!   generator and as the reference column in EXPERIMENTS.md comparisons.

pub mod attack;
pub mod calibration;
pub mod gender;
pub mod harm;
pub mod labelset;
pub mod pii_kind;
pub mod platform;

pub use attack::{AttackType, Subcategory};
pub use gender::Gender;
pub use harm::HarmRisk;
pub use labelset::LabelSet;
pub use pii_kind::PiiKind;
pub use platform::{DataSet, Platform};
