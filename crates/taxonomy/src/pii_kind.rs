//! The PII families extracted by the paper's 12 regular expressions (§5.6).
//!
//! Table 6 reports prevalence for nine families; the "12 regular expressions"
//! count of §5.6 arises because credit cards use one expression per card
//! network and social profiles use both a URL form and a `site: handle` form.

use serde::{Deserialize, Serialize};
use std::fmt;

/// A family of personally identifiable information.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum PiiKind {
    /// US street address.
    Address,
    /// Credit card number (any issuer; Luhn-validated).
    CreditCard,
    /// Email address.
    Email,
    /// Facebook profile (URL or `fb: handle`).
    Facebook,
    /// Instagram profile.
    Instagram,
    /// US phone number.
    Phone,
    /// US Social Security Number.
    Ssn,
    /// Twitter handle or profile URL.
    Twitter,
    /// YouTube channel.
    YouTube,
}

impl PiiKind {
    /// All kinds, in Table 6 row order.
    pub const ALL: [PiiKind; 9] = [
        PiiKind::Address,
        PiiKind::CreditCard,
        PiiKind::Email,
        PiiKind::Facebook,
        PiiKind::Instagram,
        PiiKind::Phone,
        PiiKind::Ssn,
        PiiKind::Twitter,
        PiiKind::YouTube,
    ];

    /// Whether this family is an online-social-network profile.
    pub fn is_osn_profile(self) -> bool {
        matches!(
            self,
            PiiKind::Facebook | PiiKind::Instagram | PiiKind::Twitter | PiiKind::YouTube
        )
    }

    /// Stable lowercase identifier.
    pub fn slug(self) -> &'static str {
        match self {
            PiiKind::Address => "address",
            PiiKind::CreditCard => "credit_card",
            PiiKind::Email => "email",
            PiiKind::Facebook => "facebook",
            PiiKind::Instagram => "instagram",
            PiiKind::Phone => "phone",
            PiiKind::Ssn => "ssn",
            PiiKind::Twitter => "twitter",
            PiiKind::YouTube => "youtube",
        }
    }

    /// Table 6 row label.
    pub fn table_label(self) -> &'static str {
        match self {
            PiiKind::Address => "Addresses",
            PiiKind::CreditCard => "Cards",
            PiiKind::Email => "Emails",
            PiiKind::Facebook => "Facebook",
            PiiKind::Instagram => "Instagram",
            PiiKind::Phone => "Phones",
            PiiKind::Ssn => "SSN",
            PiiKind::Twitter => "Twitter",
            PiiKind::YouTube => "YouTube",
        }
    }
}

impl fmt::Display for PiiKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.table_label())
    }
}

/// A compact set of [`PiiKind`]s, used to summarize which families a dox
/// contains (feeds the harm-risk assignment of §7.2).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub struct PiiSet(u16);

impl PiiSet {
    /// The empty set.
    pub const EMPTY: PiiSet = PiiSet(0);

    /// Creates an empty set.
    pub fn new() -> Self {
        Self::EMPTY
    }

    fn bit(kind: PiiKind) -> u16 {
        1 << PiiKind::ALL.iter().position(|k| *k == kind).unwrap()
    }

    /// Inserts a kind; returns `true` if newly added.
    pub fn insert(&mut self, kind: PiiKind) -> bool {
        let b = Self::bit(kind);
        let added = self.0 & b == 0;
        self.0 |= b;
        added
    }

    /// Whether the kind is present.
    pub fn contains(self, kind: PiiKind) -> bool {
        self.0 & Self::bit(kind) != 0
    }

    /// Number of distinct kinds.
    pub fn len(self) -> usize {
        self.0.count_ones() as usize
    }

    /// Whether the set is empty.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Iterates kinds in Table 6 order.
    pub fn iter(self) -> impl Iterator<Item = PiiKind> {
        PiiKind::ALL.into_iter().filter(move |k| self.contains(*k))
    }

    /// Set union.
    pub fn union(self, other: PiiSet) -> PiiSet {
        PiiSet(self.0 | other.0)
    }

    /// Whether the two sets share any kind.
    pub fn intersects(self, other: PiiSet) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether any OSN profile kind is present (used for repeated-dox
    /// linking, §7.3).
    pub fn has_osn_profile(self) -> bool {
        self.iter().any(|k| k.is_osn_profile())
    }
}

impl FromIterator<PiiKind> for PiiSet {
    fn from_iter<I: IntoIterator<Item = PiiKind>>(iter: I) -> Self {
        let mut set = PiiSet::new();
        for k in iter {
            set.insert(k);
        }
        set
    }
}

impl fmt::Debug for PiiSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nine_kinds() {
        assert_eq!(PiiKind::ALL.len(), 9);
    }

    #[test]
    fn osn_profiles() {
        let osn: Vec<_> = PiiKind::ALL.iter().filter(|k| k.is_osn_profile()).collect();
        assert_eq!(
            osn,
            vec![
                &PiiKind::Facebook,
                &PiiKind::Instagram,
                &PiiKind::Twitter,
                &PiiKind::YouTube
            ]
        );
    }

    #[test]
    fn set_operations() {
        let mut set = PiiSet::new();
        assert!(set.insert(PiiKind::Email));
        assert!(!set.insert(PiiKind::Email));
        assert!(set.contains(PiiKind::Email));
        assert!(!set.contains(PiiKind::Phone));
        assert_eq!(set.len(), 1);
        assert!(!set.has_osn_profile());
        set.insert(PiiKind::Twitter);
        assert!(set.has_osn_profile());
    }

    #[test]
    fn union_and_intersects() {
        let a: PiiSet = [PiiKind::Email, PiiKind::Phone].into_iter().collect();
        let b: PiiSet = [PiiKind::Phone, PiiKind::Ssn].into_iter().collect();
        assert_eq!(a.union(b).len(), 3);
        assert!(a.intersects(b));
        let c: PiiSet = [PiiKind::Address].into_iter().collect();
        assert!(!a.intersects(c));
    }

    #[test]
    fn iter_in_table_order() {
        let set: PiiSet = [PiiKind::YouTube, PiiKind::Address].into_iter().collect();
        let kinds: Vec<_> = set.iter().collect();
        assert_eq!(kinds, vec![PiiKind::Address, PiiKind::YouTube]);
    }

    #[test]
    fn slugs_unique() {
        let mut slugs: Vec<_> = PiiKind::ALL.iter().map(|k| k.slug()).collect();
        slugs.sort_unstable();
        slugs.dedup();
        assert_eq!(slugs.len(), 9);
    }
}
