//! Pronoun-inferred target gender (§5.6, Table 10).
//!
//! The paper infers each target's *likely* gender from the most frequent
//! gendered pronoun group in the text ("he/him/his" vs "she/her/hers") and is
//! explicit that the method is approximate: it mislabels when the attacker
//! misgenders the target (itself a form of harassment, "deadnaming"). The
//! manual evaluation found 94.3 % agreement on a 123-dox sample.

use serde::{Deserialize, Serialize};
use std::fmt;

/// The inferred likely gender of a harassment target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum Gender {
    /// No gendered pronouns found, or a tie between pronoun groups.
    Unknown,
    /// "she/her/hers" pronouns dominate.
    Female,
    /// "he/him/his" pronouns dominate.
    Male,
}

impl Default for Gender {
    /// `Unknown` — the value when no gendered pronouns are present.
    fn default() -> Self {
        Gender::Unknown
    }
}

impl Gender {
    /// All values, in Table 10 column order.
    pub const ALL: [Gender; 3] = [Gender::Unknown, Gender::Female, Gender::Male];

    /// Resolves pronoun counts into a gender following §5.6: the group that
    /// "occurred most frequently" wins; absence or a tie yields `Unknown`.
    pub fn from_pronoun_counts(masculine: usize, feminine: usize) -> Gender {
        use std::cmp::Ordering;
        match masculine.cmp(&feminine) {
            Ordering::Greater => Gender::Male,
            Ordering::Less => Gender::Female,
            Ordering::Equal => Gender::Unknown,
        }
    }

    /// Stable lowercase identifier.
    pub fn slug(self) -> &'static str {
        match self {
            Gender::Unknown => "unknown",
            Gender::Female => "female",
            Gender::Male => "male",
        }
    }
}

impl fmt::Display for Gender {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Gender::Unknown => "Unknown",
            Gender::Female => "Female",
            Gender::Male => "Male",
        };
        f.write_str(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn majority_pronoun_group_wins() {
        assert_eq!(Gender::from_pronoun_counts(3, 1), Gender::Male);
        assert_eq!(Gender::from_pronoun_counts(0, 2), Gender::Female);
    }

    #[test]
    fn ties_and_absence_are_unknown() {
        assert_eq!(Gender::from_pronoun_counts(0, 0), Gender::Unknown);
        assert_eq!(Gender::from_pronoun_counts(2, 2), Gender::Unknown);
    }
}
