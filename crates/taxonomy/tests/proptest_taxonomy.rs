//! Model-based property tests: the bitset types against `HashSet` models.

use incite_taxonomy::harm::RiskSet;
use incite_taxonomy::pii_kind::PiiSet;
use incite_taxonomy::{HarmRisk, LabelSet, PiiKind, Subcategory};
use proptest::prelude::*;
use std::collections::HashSet;

fn arb_subcategory() -> impl Strategy<Value = Subcategory> {
    (0..Subcategory::COUNT).prop_map(|i| Subcategory::from_index(i).unwrap())
}

fn arb_pii_kind() -> impl Strategy<Value = PiiKind> {
    (0..PiiKind::ALL.len()).prop_map(|i| PiiKind::ALL[i])
}

proptest! {
    #[test]
    fn labelset_behaves_like_hashset(ops in prop::collection::vec((arb_subcategory(), any::<bool>()), 0..100)) {
        let mut set = LabelSet::new();
        let mut model: HashSet<Subcategory> = HashSet::new();
        for (sub, insert) in ops {
            if insert {
                prop_assert_eq!(set.insert(sub), model.insert(sub));
            } else {
                prop_assert_eq!(set.remove(sub), model.remove(&sub));
            }
            prop_assert_eq!(set.len(), model.len());
            for s in Subcategory::ALL {
                prop_assert_eq!(set.contains(s), model.contains(&s));
            }
        }
        // Iteration yields exactly the model's contents, in table order.
        let from_iter: HashSet<Subcategory> = set.iter().collect();
        prop_assert_eq!(from_iter, model);
    }

    #[test]
    fn labelset_algebra_matches_hashset(
        a in prop::collection::vec(arb_subcategory(), 0..20),
        b in prop::collection::vec(arb_subcategory(), 0..20),
    ) {
        let sa: LabelSet = a.iter().copied().collect();
        let sb: LabelSet = b.iter().copied().collect();
        let ma: HashSet<Subcategory> = a.into_iter().collect();
        let mb: HashSet<Subcategory> = b.into_iter().collect();
        prop_assert_eq!(
            sa.union(sb).iter().collect::<HashSet<_>>(),
            ma.union(&mb).copied().collect::<HashSet<_>>()
        );
        prop_assert_eq!(
            sa.intersection(sb).iter().collect::<HashSet<_>>(),
            ma.intersection(&mb).copied().collect::<HashSet<_>>()
        );
        prop_assert_eq!(
            sa.difference(sb).iter().collect::<HashSet<_>>(),
            ma.difference(&mb).copied().collect::<HashSet<_>>()
        );
        prop_assert_eq!(sa.intersects(sb), !ma.is_disjoint(&mb));
    }

    #[test]
    fn labelset_bits_roundtrip(subs in prop::collection::vec(arb_subcategory(), 0..29)) {
        let set: LabelSet = subs.into_iter().collect();
        prop_assert_eq!(LabelSet::from_bits(set.bits()), set);
    }

    #[test]
    fn parent_count_never_exceeds_label_count(subs in prop::collection::vec(arb_subcategory(), 0..29)) {
        let set: LabelSet = subs.into_iter().collect();
        prop_assert!(set.parent_count() <= set.len());
        for parent in set.parents() {
            prop_assert!(set.iter().any(|s| s.parent() == parent));
        }
    }

    #[test]
    fn piiset_roundtrip_and_counts(kinds in prop::collection::vec(arb_pii_kind(), 0..20)) {
        let set: PiiSet = kinds.iter().copied().collect();
        let model: HashSet<PiiKind> = kinds.into_iter().collect();
        prop_assert_eq!(set.len(), model.len());
        prop_assert_eq!(set.iter().collect::<HashSet<_>>(), model);
        prop_assert_eq!(
            set.has_osn_profile(),
            set.iter().any(|k| k.is_osn_profile())
        );
    }

    #[test]
    fn riskset_from_pii_is_monotone(kinds in prop::collection::vec(arb_pii_kind(), 0..9), extra in arb_pii_kind()) {
        // Adding PII can only add risks, never remove them.
        let base: PiiSet = kinds.iter().copied().collect();
        let mut bigger = base;
        bigger.insert(extra);
        let r1 = RiskSet::from_pii(base, false);
        let r2 = RiskSet::from_pii(bigger, false);
        for risk in HarmRisk::ALL {
            prop_assert!(!r1.contains(risk) || r2.contains(risk));
        }
    }

    #[test]
    fn riskset_reputation_flag_is_independent(kinds in prop::collection::vec(arb_pii_kind(), 0..9)) {
        let pii: PiiSet = kinds.into_iter().collect();
        let without = RiskSet::from_pii(pii, false);
        let with = RiskSet::from_pii(pii, true);
        prop_assert!(!without.contains(HarmRisk::Reputation));
        prop_assert!(with.contains(HarmRisk::Reputation));
        for risk in [HarmRisk::Online, HarmRisk::Physical, HarmRisk::EconomicIdentity] {
            prop_assert_eq!(without.contains(risk), with.contains(risk));
        }
    }
}
