//! The Table 3 hyperparameter-optimization experiment as an integration
//! test: grid search over text lengths on both tasks, checking the sweep
//! machinery end to end on corpus text.

use incite::corpus::{generate, CorpusConfig};
use incite::ml::{grid_search, FeatureMode, GridPoint};

type LabeledSplit = Vec<(String, bool)>;

fn task_data(
    corpus: &incite::corpus::Corpus,
    is_positive: impl Fn(&incite::corpus::Document) -> bool,
    n_pos: usize,
) -> (LabeledSplit, LabeledSplit) {
    let pos: Vec<String> = corpus
        .documents
        .iter()
        .filter(|d| is_positive(d))
        .take(2 * n_pos)
        .map(|d| d.text.clone())
        .collect();
    let neg: Vec<String> = corpus
        .documents
        .iter()
        .filter(|d| !d.truth.is_cth && !d.truth.is_dox)
        .take(8 * n_pos)
        .map(|d| d.text.clone())
        .collect();
    let half = |v: &[String], first: bool| -> Vec<String> {
        let mid = v.len() / 2;
        if first {
            v[..mid].to_vec()
        } else {
            v[mid..].to_vec()
        }
    };
    let mut train: Vec<(String, bool)> = half(&pos, true).into_iter().map(|t| (t, true)).collect();
    train.extend(half(&neg, true).into_iter().map(|t| (t, false)));
    let mut dev: Vec<(String, bool)> = half(&pos, false).into_iter().map(|t| (t, true)).collect();
    dev.extend(half(&neg, false).into_iter().map(|t| (t, false)));
    (train, dev)
}

#[test]
fn grid_search_sweeps_text_lengths_on_real_corpus() {
    let corpus = generate(&CorpusConfig::small(0x617d));
    let grid: Vec<GridPoint> = [128usize, 512]
        .iter()
        .map(|&text_length| GridPoint {
            text_length,
            learning_rate: 0.3,
            positive_weight: 2.0,
        })
        .collect();

    for (name, is_positive) in [
        (
            "cth",
            Box::new(|d: &incite::corpus::Document| d.truth.is_cth)
                as Box<dyn Fn(&incite::corpus::Document) -> bool>,
        ),
        (
            "dox",
            Box::new(|d: &incite::corpus::Document| d.truth.is_dox),
        ),
    ] {
        let (train, dev) = task_data(&corpus, &is_positive, 150);
        let results = grid_search(&train, &dev, &grid, FeatureMode::Word, 5);
        assert_eq!(results.len(), 2, "{name}");
        // Results are sorted best-first and every point produced usable
        // quality on this separable corpus.
        let aucs: Vec<f64> = results.iter().map(|r| r.auc.unwrap_or(0.0)).collect();
        assert!(aucs[0] >= aucs[1], "{name}: not sorted {aucs:?}");
        assert!(aucs[0] > 0.9, "{name}: best AUC {aucs:?}");
        assert!(results.iter().all(|r| r.positive_f1 > 0.5), "{name}");
    }
}
