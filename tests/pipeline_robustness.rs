//! Failure-injection tests: the pipeline must degrade gracefully, never
//! panic, on degenerate corpora.

use incite::core::{run_pipeline, PipelineConfig, Task};
use incite::corpus::{generate, CorpusConfig};

#[test]
fn pipeline_survives_a_corpus_with_no_positives() {
    let config = CorpusConfig {
        positive_scale: 0.0,
        ..CorpusConfig::tiny(3)
    };
    let corpus = generate(&config);
    for task in Task::ALL {
        let out = run_pipeline(&corpus, task, &PipelineConfig::quick(1)).expect("pipeline scoring");
        // Nothing (or nearly nothing — annotator noise can admit a stray
        // false positive) should survive the expert pass.
        assert!(
            out.counts.true_positives <= out.counts.final_annotated,
            "{task}"
        );
        let truth_positives = corpus.documents.iter().filter(|d| task.truth(d)).count();
        if truth_positives == 0 {
            assert!(
                out.counts.true_positives < 20,
                "{task}: {} phantom positives",
                out.counts.true_positives
            );
        }
    }
}

#[test]
fn pipeline_survives_tiny_annotation_budgets() {
    let corpus = generate(&CorpusConfig::tiny(9));
    let config = PipelineConfig {
        annotation_budget: 3,
        per_decile: 1,
        max_seeds: 20,
        ..PipelineConfig::quick(2)
    };
    let out = run_pipeline(&corpus, Task::Dox, &config).expect("pipeline scoring");
    for t in &out.thresholds {
        assert!(t.annotated <= 3, "budget exceeded on {:?}", t.platform);
    }
}

#[test]
fn pipeline_survives_zero_active_learning_rounds() {
    let corpus = generate(&CorpusConfig::tiny(9));
    let config = PipelineConfig {
        al_rounds: 0,
        ..PipelineConfig::quick(2)
    };
    let out = run_pipeline(&corpus, Task::Dox, &config).expect("pipeline scoring");
    assert!(out.rounds.is_empty());
    assert_eq!(out.counts.crowd_annotations, 0);
    // Seeds alone still give a usable dox classifier on this corpus.
    assert!(out.counts.true_positives > 0);
}
