//! Reproducibility: every stage is a pure function of its seed.

use incite::core::{run_pipeline, PipelineConfig, Task};
use incite::corpus::{generate, CorpusConfig};

#[test]
fn corpus_generation_is_seed_deterministic() {
    let a = generate(&CorpusConfig::tiny(7));
    let b = generate(&CorpusConfig::tiny(7));
    assert_eq!(a.len(), b.len());
    for (x, y) in a.documents.iter().zip(&b.documents) {
        assert_eq!(x.id, y.id);
        assert_eq!(x.text, y.text);
        assert_eq!(x.timestamp, y.timestamp);
        assert_eq!(x.truth, y.truth);
    }
}

#[test]
fn different_seeds_differ() {
    let a = generate(&CorpusConfig::tiny(1));
    let b = generate(&CorpusConfig::tiny(2));
    let diff = a
        .documents
        .iter()
        .zip(&b.documents)
        .filter(|(x, y)| x.text != y.text)
        .count();
    assert!(diff > a.len() / 2, "only {diff} documents differ");
}

#[test]
fn pipeline_outcome_is_seed_deterministic() {
    let corpus = generate(&CorpusConfig::tiny(42));
    let c1 = run_pipeline(&corpus, Task::Dox, &PipelineConfig::quick(9)).expect("pipeline scoring");
    let c2 = run_pipeline(&corpus, Task::Dox, &PipelineConfig::quick(9)).expect("pipeline scoring");
    assert_eq!(c1.counts.true_positives, c2.counts.true_positives);
    assert_eq!(c1.counts.above_threshold, c2.counts.above_threshold);
    assert_eq!(c1.annotated_positive_ids(), c2.annotated_positive_ids());
    let t1: Vec<f64> = c1.thresholds.iter().map(|t| t.threshold).collect();
    let t2: Vec<f64> = c2.thresholds.iter().map(|t| t.threshold).collect();
    assert_eq!(t1, t2);
}

#[test]
fn pipeline_seed_changes_outcome_details() {
    let corpus = generate(&CorpusConfig::tiny(42));
    let c1 = run_pipeline(&corpus, Task::Dox, &PipelineConfig::quick(9)).expect("pipeline scoring");
    let c2 =
        run_pipeline(&corpus, Task::Dox, &PipelineConfig::quick(10)).expect("pipeline scoring");
    // Same corpus, different pipeline seed: sampling-driven counts differ
    // in detail while staying in the same regime.
    assert!(c2.counts.true_positives > 0);
    let ratio = c1.counts.true_positives as f64 / c2.counts.true_positives.max(1) as f64;
    assert!((0.5..2.0).contains(&ratio), "regimes diverged: {ratio}");
}
