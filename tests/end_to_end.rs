//! End-to-end integration: corpus generation → both filtering pipelines →
//! empirical characterization, asserting the paper's headline *shapes*.

use incite::analysis::{attack_types, harm_risk, overlap, pii_tables, repeats, threads};
use incite::core::{run_pipeline, PipelineConfig, Task};
use incite::corpus::{generate, Corpus, CorpusConfig, Document};
use incite::pii::PiiExtractor;
use incite::taxonomy::{AttackType, HarmRisk, Platform};

fn corpus() -> Corpus {
    generate(&CorpusConfig::small(0xE2E))
}

#[test]
fn full_study_reproduces_headline_shapes() {
    let corpus = corpus();

    // --- pipelines -------------------------------------------------------
    let pconfig = PipelineConfig::quick(11);
    let cth_out = run_pipeline(&corpus, Task::Cth, &pconfig).expect("pipeline scoring");
    let dox_out = run_pipeline(&corpus, Task::Dox, &pconfig).expect("pipeline scoring");

    // The dox task is the easier one (paper Table 3: F1 0.76 vs 0.63).
    let cth_auc = cth_out.eval.auc.unwrap_or(0.5);
    let dox_auc = dox_out.eval.auc.unwrap_or(0.5);
    assert!(dox_auc > 0.8, "dox AUC {dox_auc}");
    assert!(cth_auc > 0.7, "cth AUC {cth_auc}");

    // Funnels reduce the corpus by orders of magnitude.
    assert!(cth_out.counts.reduction_factor() > 10.0);
    assert!(dox_out.counts.reduction_factor() > 10.0);

    // --- characterization over the annotated sets -------------------------
    let cth_docs: Vec<&Document> =
        incite::analysis::resolve(&corpus, &cth_out.annotated_positive_ids())
            .into_iter()
            .filter(|d| d.truth.is_cth) // expert noise may admit a few FPs
            .collect();
    assert!(
        cth_docs.len() > 100,
        "too few annotated CTH: {}",
        cth_docs.len()
    );

    // Abstract headline: > 50 % of incitements include reporting calls.
    let reporting = cth_docs
        .iter()
        .filter(|d| d.truth.labels.contains_parent(AttackType::Reporting))
        .count();
    let frac = reporting as f64 / cth_docs.len() as f64;
    assert!(frac > 0.40, "reporting fraction {frac}");

    // Table 5: reporting is the top parent in every column.
    let columns = attack_types::tabulate(&cth_docs);
    for col in &columns {
        if col.size < 30 {
            continue;
        }
        let reporting = col.parent(AttackType::Reporting, &cth_docs);
        for parent in AttackType::ALL {
            assert!(
                col.parent(parent, &cth_docs) <= reporting,
                "{parent} tops reporting on {:?}",
                col.data_set
            );
        }
    }

    // --- dox side ----------------------------------------------------------
    let dox_docs: Vec<&Document> =
        incite::analysis::resolve(&corpus, &dox_out.annotated_positive_ids())
            .into_iter()
            .filter(|d| d.truth.is_dox)
            .collect();
    assert!(dox_docs.len() > 200);

    let extractor = PiiExtractor::new();
    let (pii_cols, _) = pii_tables::tabulate_pii(&extractor, &dox_docs);
    // Pastes column exists and carries rich PII.
    let pastes = pii_cols
        .iter()
        .find(|c| c.data_set == incite::taxonomy::DataSet::Pastes)
        .unwrap();
    assert!(pastes.size > 50);

    // Figure 2: online risk is the most common harm category.
    let (fig2, _) = harm_risk::figure2(&extractor, &dox_docs);
    let online = fig2.risk_total(HarmRisk::Online);
    assert!(online >= fig2.risk_total(HarmRisk::Physical));
    assert!(fig2.all_four() > 0, "no all-four-risk doxes found");

    // §7.3: repeats exist and stay on-platform.
    let stats = repeats::repeated_doxes(&extractor, &dox_docs);
    assert!(stats.repeated_fraction() > 0.02);

    // §6.3: thread overlap between the *above-threshold* sets is far above
    // trivial and in the paper's band.
    let ov = overlap::thread_overlap(
        &corpus,
        &cth_out.above_threshold_ids(),
        &dox_out.above_threshold_ids(),
    );
    if ov.cth_total > 50 {
        let f = ov.cth_with_dox_fraction();
        assert!((0.02..0.35).contains(&f), "overlap fraction {f}");
    }
}

#[test]
fn thread_analysis_matches_paper_shape() {
    let corpus = corpus();
    let board_cth: Vec<&Document> = corpus
        .by_platform(Platform::Boards)
        .filter(|d| d.truth.is_cth)
        .collect();

    let pos = threads::position_stats(&board_cth);
    // Calls rarely open or close threads (paper: 3.7 % / 2.7 %).
    assert!(pos.first_fraction < 0.10);
    assert!(pos.last_fraction < 0.10);

    // Figure 5: the CTH thread-size CDF is dominated by (lies below) the
    // baseline CDF at small sizes? In the paper both are similar with CTH
    // threads slightly larger; assert both curves are complete CDFs.
    let baseline = threads::baseline_sample(&corpus, 2_000, 12);
    let fig5 = threads::figure5(&board_cth, &baseline, 40);
    assert!((fig5.cth_curve.last().unwrap().1 - 1.0).abs() < 1e-9);
    assert!((fig5.baseline_curve.last().unwrap().1 - 1.0).abs() < 1e-9);
}

#[test]
fn pastes_never_enter_the_cth_pipeline() {
    let corpus = corpus();
    let out =
        run_pipeline(&corpus, Task::Cth, &PipelineConfig::quick(5)).expect("pipeline scoring");
    assert!(out
        .thresholds
        .iter()
        .all(|t| t.platform != Platform::Pastes));
    let paste_ids: std::collections::HashSet<_> =
        corpus.by_platform(Platform::Pastes).map(|d| d.id).collect();
    assert!(out
        .above_threshold_ids()
        .iter()
        .all(|id| !paste_ids.contains(id)));
}
