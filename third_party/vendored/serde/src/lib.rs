//! Offline vendored substitute for the
//! [`serde`](https://crates.io/crates/serde) crate.
//!
//! The real serde is a zero-cost visitor framework; this stand-in trades
//! that for a simple **value tree**: [`Serialize`] lowers any value to a
//! [`Value`], [`Deserialize`] rebuilds it from one. The only consumer in
//! this workspace is the vendored `serde_json`, which (de)serializes the
//! tree; together they provide the same observable behaviour for the
//! concrete types the workspace derives (structs with named fields,
//! newtype/tuple structs, fieldless enums, and the `#[serde(from/into)]`
//! container attributes used by `WordPieceVocab`).
//!
//! Determinism note: [`Map`] is a `BTreeMap`, so object keys serialize in
//! sorted order, independent of hasher state — JSON artifacts are
//! byte-stable across runs.

#![forbid(unsafe_code)]

use std::collections::{BTreeMap, HashMap};
use std::fmt;

pub use serde_derive::{Deserialize, Serialize};

/// Object representation: deterministic key order.
pub type Map = BTreeMap<String, Value>;

/// The serde data model as a concrete tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    /// Signed integers (also covers unsigned values that fit in `i64`).
    Int(i64),
    /// Unsigned integers above `i64::MAX`.
    UInt(u64),
    Float(f64),
    Str(String),
    Array(Vec<Value>),
    Object(Map),
}

impl Value {
    /// Borrows the object map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Borrows the string, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// A short name for error messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::Int(_) | Value::UInt(_) => "integer",
            Value::Float(_) => "float",
            Value::Str(_) => "string",
            Value::Array(_) => "array",
            Value::Object(_) => "object",
        }
    }
}

/// (De)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    /// Creates an error with a custom message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error(msg.to_string())
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for Error {}

/// Lowers a value to the [`Value`] tree.
pub trait Serialize {
    fn to_value(&self) -> Value;
}

/// Rebuilds a value from the [`Value`] tree.
pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Deserializes one named field of an object, treating a missing key as
/// `Null` (so `Option` fields default to `None`). Used by derived impls.
pub fn from_field<T: Deserialize>(obj: &Map, key: &str) -> Result<T, Error> {
    let v = obj.get(key).unwrap_or(&Value::Null);
    T::from_value(v).map_err(|e| Error(format!("field `{key}`: {e}")))
}

fn type_error<T>(expected: &str, got: &Value) -> Result<T, Error> {
    Err(Error(format!("expected {expected}, found {}", got.kind())))
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => type_error("bool", other),
        }
    }
}

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Int(*self as i64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: i128 = match v {
                    Value::Int(i) => *i as i128,
                    Value::UInt(u) => *u as i128,
                    other => return type_error("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64, isize);

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let wide = *self as u64;
                if wide <= i64::MAX as u64 {
                    Value::Int(wide as i64)
                } else {
                    Value::UInt(wide)
                }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let wide: u64 = match v {
                    Value::Int(i) if *i >= 0 => *i as u64,
                    Value::UInt(u) => *u,
                    Value::Int(i) => {
                        return Err(Error(format!("negative integer {i} for unsigned type")))
                    }
                    other => return type_error("integer", other),
                };
                <$t>::try_from(wide)
                    .map_err(|_| Error(format!("integer {wide} out of range")))
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::Float(*self as f64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Float(f) => Ok(*f as $t),
                    Value::Int(i) => Ok(*i as $t),
                    Value::UInt(u) => Ok(*u as $t),
                    other => type_error("number", other),
                }
            }
        }
    )*};
}

impl_float!(f32, f64);

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => type_error("string", other),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => {
                s.chars().next().ok_or_else(|| Error("empty string".into()))
            }
            other => type_error("single-character string", other),
        }
    }
}

// ---------------------------------------------------------------------------
// Compound impls
// ---------------------------------------------------------------------------

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Array(items) => items.iter().map(T::from_value).collect(),
            other => type_error("array", other),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Array(self.iter().map(Serialize::to_value).collect())
    }
}

macro_rules! impl_tuple {
    ($(($($n:tt $t:ident),+)),+) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Array(items) => {
                        let expected = 0usize $(+ { let _ = $n; 1 })+;
                        if items.len() != expected {
                            return Err(Error(format!(
                                "expected array of {expected}, found {}",
                                items.len()
                            )));
                        }
                        Ok(($($t::from_value(&items[$n])?,)+))
                    }
                    other => type_error("array", other),
                }
            }
        }
    )+};
}

impl_tuple!((0 A), (0 A, 1 B), (0 A, 1 B, 2 C), (0 A, 1 B, 2 C, 3 D));

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl<V: Serialize, S: std::hash::BuildHasher> Serialize for HashMap<String, V, S> {
    fn to_value(&self) -> Value {
        // Collect through a BTreeMap for deterministic key order.
        Value::Object(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize, S: std::hash::BuildHasher + Default> Deserialize for HashMap<String, V, S> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Object(m) => m
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => type_error("object", other),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn integer_boundaries() {
        assert_eq!(u64::MAX.to_value(), Value::UInt(u64::MAX));
        assert_eq!(5u64.to_value(), Value::Int(5));
        assert_eq!(u64::from_value(&Value::UInt(u64::MAX)), Ok(u64::MAX));
        assert!(u8::from_value(&Value::Int(300)).is_err());
        assert!(u32::from_value(&Value::Int(-1)).is_err());
        assert_eq!(i64::from_value(&Value::UInt(7)), Ok(7));
    }

    #[test]
    fn option_null_roundtrip() {
        assert_eq!(None::<u32>.to_value(), Value::Null);
        assert_eq!(Option::<u32>::from_value(&Value::Null), Ok(None));
        assert_eq!(Option::<u32>::from_value(&Value::Int(3)), Ok(Some(3)));
    }

    #[test]
    fn missing_field_is_null() {
        let obj = Map::new();
        assert_eq!(from_field::<Option<String>>(&obj, "x"), Ok(None));
        assert!(from_field::<String>(&obj, "x").is_err());
    }

    #[test]
    fn vec_and_tuple_roundtrip() {
        let v = vec![(1u32, true), (2, false)];
        let val = v.to_value();
        let back: Vec<(u32, bool)> = Vec::from_value(&val).unwrap();
        assert_eq!(back, v);
    }

    #[test]
    fn map_is_deterministic() {
        let mut m = HashMap::new();
        m.insert("zebra".to_string(), 1u8);
        m.insert("ant".to_string(), 2u8);
        match m.to_value() {
            Value::Object(obj) => {
                let keys: Vec<_> = obj.keys().cloned().collect();
                assert_eq!(keys, vec!["ant".to_string(), "zebra".to_string()]);
            }
            other => panic!("expected object, got {other:?}"),
        }
    }
}
