//! Offline vendored substitute for the [`rand`](https://crates.io/crates/rand)
//! crate, implementing the API subset this workspace uses.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace patches `rand` to this std-only implementation (see
//! `[patch.crates-io]` in the root `Cargo.toml`). It provides:
//!
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator seeded via
//!   SplitMix64 (`seed_from_u64`), matching the seeding discipline the
//!   pipeline relies on (same seed → same stream, forever).
//! * [`Rng`] — `gen`, `gen_range` (half-open and inclusive, integer and
//!   float), `gen_bool`.
//! * [`SeedableRng`] — `seed_from_u64` and `from_seed`.
//! * [`seq::SliceRandom`] — Fisher–Yates `shuffle` and `choose`.
//!
//! The streams produced differ from the upstream `rand::rngs::StdRng`
//! (ChaCha12); anything asserting exact sampled values would need
//! re-derivation. Reproducibility *within* this workspace is unaffected:
//! the generator is fully deterministic and platform-independent.

#![forbid(unsafe_code)]

/// Core random-number source: 64 bits at a time.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The fixed-size seed type.
    type Seed: AsMut<[u8]> + Default;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64` seed (SplitMix64 expansion).
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// User-facing sampling methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its full-range distribution.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Samples uniformly from a range. Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`. Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range: {p}");
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// Converts 64 random bits into a uniform `f64` in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits give a uniform dyadic rational in [0, 1).
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

fn unit_f32(bits: u64) -> f32 {
    ((bits >> 40) as u32) as f32 * (1.0 / (1u32 << 24) as f32)
}

/// Types samplable by [`Rng::gen`] (the upstream `Standard` distribution).
pub trait Standard: Sized {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for bool {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f64(rng.next_u64())
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore>(rng: &mut R) -> Self {
        unit_f32(rng.next_u64())
    }
}

/// Types with a uniform sampler, mirroring upstream's `SampleUniform`.
/// The single blanket `SampleRange` impl below is what lets integer
/// literal inference flow through `gen_range` (e.g. `slice[rng.gen_range(0..4)]`
/// infers `usize` from the indexing context).
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform sample from `[lo, hi)`.
    fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;

    /// Uniform sample from `[lo, hi]`.
    fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self;
}

/// Ranges usable with [`Rng::gen_range`].
pub trait SampleRange<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "gen_range: empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "gen_range: empty range");
        T::sample_inclusive(lo, hi, rng)
    }
}

/// Uniform `u64` in `[0, span)` using widening multiply (span > 0).
fn uniform_below<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    (((rng.next_u64() as u128) * (span as u128)) >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                lo.wrapping_add(uniform_below(rng, span) as $t)
            }

            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let span = (hi as $u).wrapping_sub(lo as $u) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(uniform_below(rng, span + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(
    u8 => u8, u16 => u16, u32 => u32, u64 => u64, usize => usize,
    i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize
);

macro_rules! impl_uniform_float {
    ($($t:ty, $unit:ident),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = $unit(rng.next_u64());
                lo + (hi - lo) * u
            }

            fn sample_inclusive<R: RngCore>(lo: Self, hi: Self, rng: &mut R) -> Self {
                let u = $unit(rng.next_u64());
                lo + (hi - lo) * u
            }
        }
    )*};
}

impl_uniform_float!(f64, unit_f64, f32, unit_f32);

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256++ generator (stand-in for the upstream
    /// ChaCha12-based `StdRng`; different stream, same determinism).
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        /// The raw xoshiro256++ state words (vendored extension).
        ///
        /// Upstream `rand` deliberately hides generator internals; this
        /// workspace's checkpoint subsystem needs to persist and restore
        /// the exact stream position across process restarts, so the
        /// vendored build exposes the four state words. Restoring via
        /// [`StdRng::from_state`] continues the stream bit-for-bit.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator from [`StdRng::state`] words (vendored
        /// extension). An all-zero state is a xoshiro fixed point and is
        /// nudged exactly like [`SeedableRng::from_seed`] does.
        pub fn from_state(s: [u64; 4]) -> Self {
            if s == [0, 0, 0, 0] {
                return StdRng {
                    s: [0x9E37_79B9_7F4A_7C15, 1, 2, 3],
                };
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // An all-zero state is a fixed point for xoshiro; nudge it.
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            StdRng { s }
        }
    }

    /// Alias: this vendored build has a single generator implementation.
    pub type SmallRng = StdRng;
}

pub mod seq {
    //! Sequence-related extensions.

    use super::{uniform_below, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        type Item;

        /// Fisher–Yates shuffle, O(n).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);

        /// Uniformly random element, or `None` if empty.
        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                self.get(uniform_below(rng, self.len() as u64) as usize)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_bounds_int() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..17);
            assert!((3..17).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
        }
    }

    #[test]
    fn gen_range_bounds_float() {
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..10_000 {
            let v: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&v));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((2_500..3_500).contains(&hits), "p=0.3 gave {hits}/10000");
    }

    #[test]
    fn unit_interval_gen() {
        let mut rng = StdRng::seed_from_u64(10);
        for _ in 0..1_000 {
            let v: f64 = rng.gen();
            assert!((0.0..1.0).contains(&v));
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = StdRng::seed_from_u64(11);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, sorted, "shuffle of 50 elements left them sorted");
    }

    #[test]
    fn choose_on_empty_is_none() {
        let mut rng = StdRng::seed_from_u64(12);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([7u8].choose(&mut rng), Some(&7));
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(13);
        let _ = rng.gen_range(5u32..5);
    }
}
