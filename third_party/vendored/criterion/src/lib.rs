//! Offline vendored substitute for
//! [`criterion`](https://crates.io/crates/criterion).
//!
//! Implements the workspace's benchmark surface: `Criterion`,
//! `benchmark_group` with `throughput`/`sample_size`, `bench_function`,
//! `bench_with_input`, `BenchmarkId`, `Throughput`, `Bencher::iter`,
//! `black_box`, and the `criterion_group!`/`criterion_main!` macros.
//!
//! Measurement is deliberately simple: per sample, the iteration count is
//! calibrated so a sample takes a few milliseconds, and the reported
//! number is the median over `sample_size` samples. There are no HTML
//! reports, no statistical regression analysis, and no saved baselines —
//! output is one plain-text line per benchmark. `--test` (as passed by
//! `cargo test --benches`) runs each benchmark body once and skips
//! timing.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(5);

/// Work-rate unit attached to a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Input size in bytes per iteration.
    Bytes(u64),
    /// Number of logical elements processed per iteration.
    Elements(u64),
    /// Bytes, decimal-scaled in reports (kept for API parity).
    BytesDecimal(u64),
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// An id made of a function name and a parameter value.
    pub fn new(function_name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    /// An id carrying just a parameter value.
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    mode: Mode,
    sample_size: usize,
    /// Filled in by `iter`: (median per-iteration nanos, total iters).
    result: Option<(f64, u64)>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mode {
    Measure,
    TestOnce,
}

impl Bencher {
    /// Measures the closure. Return values are routed through
    /// [`black_box`] so computing them cannot be optimized away.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        if self.mode == Mode::TestOnce {
            black_box(routine());
            self.result = Some((0.0, 1));
            return;
        }
        // Calibrate: grow the per-sample iteration count until one sample
        // costs roughly TARGET_SAMPLE_TIME.
        let mut iters: u64 = 1;
        loop {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            let elapsed = start.elapsed();
            if elapsed >= TARGET_SAMPLE_TIME || iters >= 1 << 30 {
                break;
            }
            let growth = if elapsed < TARGET_SAMPLE_TIME / 10 { 10 } else { 2 };
            iters = iters.saturating_mul(growth);
        }
        let mut samples: Vec<f64> = Vec::with_capacity(self.sample_size);
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size.max(1) {
            let start = Instant::now();
            for _ in 0..iters {
                black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / iters as f64);
            total_iters += iters;
        }
        samples.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
        let median = samples[samples.len() / 2];
        self.result = Some((median, total_iters));
    }
}

/// Top-level benchmark driver; one per `criterion_group!` function list.
pub struct Criterion {
    mode: Mode,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            mode: Mode::Measure,
            filter: None,
        }
    }
}

impl Criterion {
    /// Applies command-line arguments (`--test`, a name filter); other
    /// flags cargo may pass (`--bench`, harness options) are ignored.
    pub fn configure_from_args(mut self) -> Self {
        let mut args = std::env::args().skip(1);
        while let Some(arg) = args.next() {
            match arg.as_str() {
                "--test" => self.mode = Mode::TestOnce,
                "--bench" | "--verbose" | "--quiet" | "--noplot" => {}
                s if s.starts_with("--") => {
                    // Flags with values we don't interpret.
                    if matches!(
                        s,
                        "--save-baseline" | "--baseline" | "--measurement-time"
                            | "--warm-up-time" | "--sample-size"
                    ) {
                        let _ = args.next();
                    }
                }
                s => self.filter = Some(s.to_string()),
            }
        }
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
            sample_size: 20,
        }
    }

    /// Ungrouped single benchmark (kept for API parity).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let group_name = id.to_string();
        self.benchmark_group(group_name).bench_function("run", f);
        self
    }

    /// Runs the final-summary hook (no-op here).
    pub fn final_summary(&mut self) {}
}

/// A named group of benchmarks sharing throughput/sample settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Declares the per-iteration work rate used in reports.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Sets the number of timing samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n;
        self
    }

    /// Benchmarks a closure under `id` within this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = id.into_benchmark_id();
        self.run(&id.id, |b| f(b));
        self
    }

    /// Benchmarks a closure that receives a borrowed input value.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.run(&id.id, |b| f(b, input));
        self
    }

    /// Ends the group (kept for API parity; reporting is per-benchmark).
    pub fn finish(self) {}

    fn run(&mut self, id: &str, mut f: impl FnMut(&mut Bencher)) {
        let full = format!("{}/{}", self.name, id);
        if let Some(filter) = &self.criterion.filter {
            if !full.contains(filter.as_str()) {
                return;
            }
        }
        let mut bencher = Bencher {
            mode: self.criterion.mode,
            sample_size: self.sample_size,
            result: None,
        };
        f(&mut bencher);
        match (self.criterion.mode, bencher.result) {
            (Mode::TestOnce, _) => println!("test {full} ... ok"),
            (Mode::Measure, Some((nanos, _))) => {
                let mut line = format!("{full:<50} time: [{}]", format_nanos(nanos));
                if let Some(tp) = self.throughput {
                    let (amount, unit) = match tp {
                        Throughput::Bytes(n) | Throughput::BytesDecimal(n) => (n, "B"),
                        Throughput::Elements(n) => (n, "elem"),
                    };
                    if nanos > 0.0 && amount > 0 {
                        let per_sec = amount as f64 / (nanos * 1e-9);
                        let _ = write!(line, "  thrpt: [{}/s]", format_scaled(per_sec, unit));
                    }
                }
                println!("{line}");
            }
            (Mode::Measure, None) => println!("{full:<50} (no measurement: iter not called)"),
        }
    }
}

/// Conversion into a [`BenchmarkId`], so string literals work directly.
pub trait IntoBenchmarkId {
    /// Performs the conversion.
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            id: self.to_string(),
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId { id: self }
    }
}

fn format_nanos(nanos: f64) -> String {
    if nanos < 1e3 {
        format!("{nanos:.2} ns")
    } else if nanos < 1e6 {
        format!("{:.3} µs", nanos / 1e3)
    } else if nanos < 1e9 {
        format!("{:.3} ms", nanos / 1e6)
    } else {
        format!("{:.3} s", nanos / 1e9)
    }
}

fn format_scaled(per_sec: f64, unit: &str) -> String {
    if per_sec >= 1e9 {
        format!("{:.3} G{unit}", per_sec / 1e9)
    } else if per_sec >= 1e6 {
        format!("{:.3} M{unit}", per_sec / 1e6)
    } else if per_sec >= 1e3 {
        format!("{:.3} K{unit}", per_sec / 1e3)
    } else {
        format!("{per_sec:.1} {unit}")
    }
}

/// Declares a group function running each benchmark function in order.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
    (name = $group:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $config.configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `fn main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run_one(mode: Mode, sample_size: usize) -> Option<(f64, u64)> {
        let mut b = Bencher {
            mode,
            sample_size,
            result: None,
        };
        let mut counter = 0u64;
        b.iter(|| {
            counter = counter.wrapping_add(black_box(1));
            counter
        });
        b.result
    }

    #[test]
    fn measure_mode_produces_positive_time() {
        let (nanos, iters) = run_one(Mode::Measure, 3).expect("result recorded");
        assert!(nanos >= 0.0);
        assert!(iters >= 3);
    }

    #[test]
    fn test_mode_runs_once() {
        let (_, iters) = run_one(Mode::TestOnce, 50).expect("result recorded");
        assert_eq!(iters, 1);
    }

    #[test]
    fn group_api_compiles_and_runs() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
            filter: None,
        };
        let mut group = c.benchmark_group("g");
        group.throughput(Throughput::Elements(10));
        group.sample_size(5);
        group.bench_function("f", |b| b.iter(|| 1 + 1));
        group.bench_with_input(BenchmarkId::from_parameter(4), &4usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    #[test]
    fn filtering_skips_nonmatching() {
        let mut c = Criterion {
            mode: Mode::TestOnce,
            filter: Some("nomatch".into()),
        };
        let mut ran = false;
        let mut group = c.benchmark_group("g");
        group.bench_function("f", |b| {
            ran = true;
            b.iter(|| 0)
        });
        group.finish();
        assert!(!ran);
    }

    #[test]
    fn formatting_units() {
        assert!(format_nanos(12.0).ends_with("ns"));
        assert!(format_nanos(12_000.0).ends_with("µs"));
        assert!(format_nanos(12_000_000.0).ends_with("ms"));
        assert!(format_scaled(2e9, "B").starts_with("2.000 G"));
        assert!(format_scaled(500.0, "elem").contains("elem"));
    }
}
