//! Offline vendored substitute for
//! [`proptest`](https://crates.io/crates/proptest).
//!
//! Implements the subset of the proptest API used by this workspace:
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`/`prop_assume!`,
//! `Strategy` with `prop_map`, `any::<T>()`, numeric range strategies,
//! regex-subset string strategies (`".{0,200}"`, `"[a-z]{1,10}"`),
//! `prop::collection::{vec, btree_map}`, `prop::sample::select`, and
//! `ProptestConfig::with_cases`.
//!
//! Differences from upstream, by design:
//! - **No shrinking.** A failing case reports the case seed so it can be
//!   reproduced, but is not minimized.
//! - **Deterministic.** Case seeds derive from the test name and case
//!   index (FNV-1a), so runs are reproducible across machines; there is
//!   no `PROPTEST_` environment handling.
//! - Default case count is 64 rather than 256.

#![forbid(unsafe_code)]

use std::fmt;
use std::marker::PhantomData;
use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG: SplitMix64, self-contained so the crate stays dependency-free.
// ---------------------------------------------------------------------------

/// Deterministic per-case random source handed to strategies.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        // 128-bit widening multiply: unbiased enough for test generation.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

// ---------------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------------

/// Why a single generated case did not pass.
#[derive(Debug)]
pub enum TestCaseError {
    /// `prop_assume!` failed: the case is discarded, not counted.
    Reject(String),
    /// `prop_assert!`/`prop_assert_eq!` failed: the test fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds the failing variant (mirrors upstream's constructor).
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds the rejection variant.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration; only `cases` is interpreted.
#[derive(Debug, Clone, Copy)]
pub struct ProptestConfig {
    /// Number of successful cases required for the test to pass.
    pub cases: u32,
    /// Upper bound on `prop_assume!` discards before giving up.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config running `cases` successful cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            max_global_rejects: 4096,
        }
    }
}

/// Drives one property: generates cases until `config.cases` pass.
/// Called by the `proptest!` expansion; not part of the public API shape
/// of upstream, but kept public for the macro.
pub fn run_proptest<F>(config: &ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng) -> Result<(), TestCaseError>,
{
    let base = fnv1a(name.as_bytes());
    let mut passed = 0u32;
    let mut rejects = 0u32;
    let mut index = 0u64;
    while passed < config.cases {
        let seed = base ^ index.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let mut rng = TestRng::new(seed);
        match case(&mut rng) {
            Ok(()) => passed += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                if rejects > config.max_global_rejects {
                    panic!(
                        "proptest `{name}`: too many prop_assume! rejections \
                         ({rejects}) before {passed}/{} cases passed",
                        config.cases
                    );
                }
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!(
                    "proptest `{name}` failed at case #{index} (seed {seed:#x}): {msg}"
                );
            }
        }
        index += 1;
    }
}

// ---------------------------------------------------------------------------
// Strategy trait
// ---------------------------------------------------------------------------

/// A generator of test values. Unlike upstream there is no value tree and
/// no shrinking: `generate` produces the final value directly.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draws one value from this strategy.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

// Numeric range strategies: `lo..hi` draws uniformly from the half-open
// interval, matching upstream's `Range<T>: Strategy`.

macro_rules! int_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(
                    self.start < self.end,
                    "empty integer range strategy {}..{}",
                    self.start, self.end
                );
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = rng.below(span);
                (self.start as i128 + off as i128) as $t
            }
        }
    )*};
}

int_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        let v = self.start + rng.unit_f64() * (self.end - self.start);
        // Guard against rounding up to the excluded endpoint.
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

impl Strategy for Range<f32> {
    type Value = f32;

    fn generate(&self, rng: &mut TestRng) -> f32 {
        assert!(self.start < self.end, "empty f32 range strategy");
        let v = self.start + (rng.unit_f64() as f32) * (self.end - self.start);
        if v >= self.end {
            self.start
        } else {
            v
        }
    }
}

// Tuple strategies.

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

// ---------------------------------------------------------------------------
// String strategies from regex-subset patterns
// ---------------------------------------------------------------------------

/// Pool backing `.`: printable ASCII plus whitespace, a control character,
/// and multi-byte characters so byte-index handling gets exercised.
/// Upstream's `.` is "any char except \n"; this is a representative sample.
const ANY_POOL: &[char] = &[
    'a', 'b', 'c', 'd', 'e', 'k', 'o', 'r', 's', 't', 'z', 'A', 'B', 'Q', 'Z',
    '0', '1', '7', '9', ' ', ' ', ' ', '\t', '.', ',', ':', ';', '!', '?', '@',
    '#', '/', '-', '_', '\'', '"', '(', ')', '[', '*', '\u{7}', 'é', 'ß', '中',
    '🙂',
];

#[derive(Debug, Clone)]
enum CharSet {
    Any,
    Choices(Vec<char>),
}

impl CharSet {
    fn pick(&self, rng: &mut TestRng) -> char {
        match self {
            CharSet::Any => ANY_POOL[rng.below(ANY_POOL.len() as u64) as usize],
            CharSet::Choices(cs) => cs[rng.below(cs.len() as u64) as usize],
        }
    }
}

#[derive(Debug, Clone)]
struct Atom {
    set: CharSet,
    min: u32,
    max: u32,
}

/// Parses the regex subset used in strategy position: literal characters,
/// `.`, character classes `[...]` with `a-z` ranges, and quantifiers
/// `{m}`, `{m,n}`, `*`, `+`, `?`. Anything else panics — strategy
/// patterns are fixed strings in test code, so this fails fast and loudly.
fn parse_string_pattern(pattern: &str) -> Vec<Atom> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut atoms = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let set = match chars[i] {
            '.' => {
                i += 1;
                CharSet::Any
            }
            '[' => {
                i += 1;
                let mut choices = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in {pattern:?}");
                        for c in lo..=hi {
                            choices.push(c);
                        }
                        i += 3;
                    } else {
                        choices.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(
                    i < chars.len(),
                    "unterminated character class in {pattern:?}"
                );
                i += 1; // skip ']'
                assert!(!choices.is_empty(), "empty character class in {pattern:?}");
                CharSet::Choices(choices)
            }
            '\\' => {
                assert!(i + 1 < chars.len(), "trailing backslash in {pattern:?}");
                let c = chars[i + 1];
                i += 2;
                CharSet::Choices(vec![c])
            }
            c => {
                i += 1;
                CharSet::Choices(vec![c])
            }
        };
        let (min, max) = if i < chars.len() {
            match chars[i] {
                '{' => {
                    i += 1;
                    let mut m = 0u32;
                    while i < chars.len() && chars[i].is_ascii_digit() {
                        m = m * 10 + chars[i].to_digit(10).unwrap_or(0);
                        i += 1;
                    }
                    let n = if i < chars.len() && chars[i] == ',' {
                        i += 1;
                        let mut n = 0u32;
                        while i < chars.len() && chars[i].is_ascii_digit() {
                            n = n * 10 + chars[i].to_digit(10).unwrap_or(0);
                            i += 1;
                        }
                        n
                    } else {
                        m
                    };
                    assert!(
                        i < chars.len() && chars[i] == '}',
                        "unterminated counted repeat in {pattern:?}"
                    );
                    i += 1;
                    assert!(m <= n, "inverted counted repeat in {pattern:?}");
                    (m, n)
                }
                '*' => {
                    i += 1;
                    (0, 8)
                }
                '+' => {
                    i += 1;
                    (1, 8)
                }
                '?' => {
                    i += 1;
                    (0, 1)
                }
                _ => (1, 1),
            }
        } else {
            (1, 1)
        };
        atoms.push(Atom { set, min, max });
    }
    atoms
}

/// `&str` in strategy position: generates strings matching the pattern.
impl Strategy for str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let atoms = parse_string_pattern(self);
        let mut out = String::new();
        for atom in &atoms {
            let n = atom.min + rng.below((atom.max - atom.min + 1) as u64) as u32;
            for _ in 0..n {
                out.push(atom.set.pick(rng));
            }
        }
        out
    }
}

// ---------------------------------------------------------------------------
// any::<T>() / Arbitrary
// ---------------------------------------------------------------------------

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}

arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        // Finite, wide-range doubles; NaN/inf generation is not needed here.
        (rng.unit_f64() - 0.5) * 2e12
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        ((rng.unit_f64() - 0.5) * 2e6) as f32
    }
}

impl Arbitrary for char {
    fn arbitrary(rng: &mut TestRng) -> char {
        ANY_POOL[rng.below(ANY_POOL.len() as u64) as usize]
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(PhantomData<fn() -> T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T`, as in `any::<u64>()`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

// ---------------------------------------------------------------------------
// Collection strategies
// ---------------------------------------------------------------------------

/// Collection strategies (`prop::collection::{vec, btree_map}`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::collections::BTreeMap;
    use std::ops::Range;

    /// Strategy for `Vec<T>` with a size drawn from `sizes`.
    pub struct VecStrategy<S> {
        element: S,
        sizes: Range<usize>,
    }

    /// Generates vectors of `element` values with length in `sizes`.
    pub fn vec<S: Strategy>(element: S, sizes: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, sizes }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = pick_size(&self.sizes, rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Strategy for `BTreeMap<K, V>`.
    pub struct BTreeMapStrategy<K, V> {
        key: K,
        value: V,
        sizes: Range<usize>,
    }

    /// Generates maps with up to `sizes` entries (duplicate keys collapse,
    /// as with upstream's generator).
    pub fn btree_map<K, V>(key: K, value: V, sizes: Range<usize>) -> BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        BTreeMapStrategy { key, value, sizes }
    }

    impl<K, V> Strategy for BTreeMapStrategy<K, V>
    where
        K: Strategy,
        V: Strategy,
        K::Value: Ord,
    {
        type Value = BTreeMap<K::Value, V::Value>;

        fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
            let n = pick_size(&self.sizes, rng);
            let mut map = BTreeMap::new();
            for _ in 0..n {
                map.insert(self.key.generate(rng), self.value.generate(rng));
            }
            map
        }
    }

    fn pick_size(sizes: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(sizes.start < sizes.end, "empty collection size range");
        sizes.start + rng.below((sizes.end - sizes.start) as u64) as usize
    }
}

/// Sampling strategies (`prop::sample::select`).
pub mod sample {
    use super::{Strategy, TestRng};

    /// Strategy choosing uniformly from a fixed set of options.
    pub struct Select<T> {
        options: Vec<T>,
    }

    /// Picks one of `options`, cloned, uniformly at random.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select() needs at least one option");
        Select { options }
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            self.options[rng.below(self.options.len() as u64) as usize].clone()
        }
    }
}

// `prop::` paths in test code resolve through this module.
/// Namespace mirror so `prop::collection::vec` etc. work via the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::sample;
}

/// The standard prelude: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Any,
        Arbitrary, Just, ProptestConfig, Strategy, TestCaseError,
    };
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TestCaseError::Reject(m) => write!(f, "rejected: {m}"),
            TestCaseError::Fail(m) => write!(f, "failed: {m}"),
        }
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Asserts a condition inside a proptest body, failing the case (not
/// panicking directly) so the runner can report the case seed.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}",
                stringify!($cond),
                file!(),
                line!()
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert!({}) failed at {}:{}: {}",
                stringify!($cond),
                file!(),
                line!(),
                format!($($fmt)+)
            )));
        }
    };
}

/// Equality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}",
                file!(),
                line!(),
                l,
                r
            )));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_eq! failed at {}:{}: {:?} != {:?}: {}",
                file!(),
                line!(),
                l,
                r,
                format!($($fmt)+)
            )));
        }
    }};
}

/// Inequality assertion counterpart of [`prop_assert!`].
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "prop_assert_ne! failed at {}:{}: both {:?}",
                file!(),
                line!(),
                l
            )));
        }
    }};
}

/// Discards the current case when the assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::reject(stringify!(
                $cond
            )));
        }
    };
}

/// Declares property tests. Supports the two forms used in practice:
///
/// ```ignore
/// proptest! {
///     #[test]
///     fn prop(x in 0u32..10, s in "[a-z]{1,4}") { prop_assert!(x < 10); }
/// }
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(6))]
///     #[test]
///     fn prop(seed in 0u64..100) { /* ... */ }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl ($config) $($rest)*);
    };
    (@impl ($config:expr) $(
        $(#[$meta:meta])+
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])+
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_proptest(&config, stringify!($name), |__proptest_rng| {
                    $(let $arg = $crate::Strategy::generate(&($strategy), __proptest_rng);)+
                    $body
                    ::std::result::Result::Ok(())
                });
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default()) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn string_pattern_shapes() {
        let mut rng = crate::TestRng::new(7);
        for _ in 0..200 {
            let s = Strategy::generate("[a-z]{1,10}", &mut rng);
            assert!((1..=10).contains(&s.chars().count()), "{s:?}");
            assert!(s.chars().all(|c| c.is_ascii_lowercase()));
        }
        for _ in 0..100 {
            let s = Strategy::generate(".{0,20}", &mut rng);
            assert!(s.chars().count() <= 20);
            assert!(!s.contains('\n'));
        }
        let lit = Strategy::generate("abc", &mut rng);
        assert_eq!(lit, "abc");
    }

    #[test]
    fn ranges_are_in_bounds() {
        let mut rng = crate::TestRng::new(3);
        for _ in 0..500 {
            let x = Strategy::generate(&(5u32..17), &mut rng);
            assert!((5..17).contains(&x));
            let y = Strategy::generate(&(-3i64..4), &mut rng);
            assert!((-3..4).contains(&y));
            let f = Strategy::generate(&(-1.5f64..2.5), &mut rng);
            assert!((-1.5..2.5).contains(&f));
        }
    }

    #[test]
    fn collections_and_maps() {
        let mut rng = crate::TestRng::new(11);
        for _ in 0..50 {
            let v = Strategy::generate(
                &prop::collection::vec(0u32..100, 2..6),
                &mut rng,
            );
            assert!((2..6).contains(&v.len()));
            let m = Strategy::generate(
                &prop::collection::btree_map(0u32..8, any::<bool>(), 0..10),
                &mut rng,
            );
            assert!(m.len() < 10);
        }
    }

    proptest! {
        #[test]
        fn macro_roundtrip(x in 0u8..200, flag in any::<bool>(), s in "[ab]{0,4}") {
            prop_assert!(x < 200);
            prop_assert_eq!(flag, flag);
            prop_assume!(s.len() < 100);
            prop_assert!(s.chars().all(|c| c == 'a' || c == 'b'));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(5))]
        #[test]
        fn config_form_compiles(seed in 0u64..1000) {
            prop_assert!(seed < 1000);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_seed() {
        crate::run_proptest(
            &ProptestConfig::with_cases(3),
            "always_fails",
            |_rng| Err(TestCaseError::fail("nope")),
        );
    }

    #[test]
    fn determinism() {
        let one: Vec<String> = {
            let mut rng = crate::TestRng::new(99);
            (0..10)
                .map(|_| Strategy::generate(".{0,30}", &mut rng))
                .collect()
        };
        let two: Vec<String> = {
            let mut rng = crate::TestRng::new(99);
            (0..10)
                .map(|_| Strategy::generate(".{0,30}", &mut rng))
                .collect()
        };
        assert_eq!(one, two);
    }
}
