//! Offline vendored substitute for `serde_derive`.
//!
//! Hand-rolled over the built-in `proc_macro` crate (no `syn`/`quote`,
//! which are unreachable in this registry-less build environment). It
//! supports exactly the shapes this workspace derives:
//!
//! * structs with named fields,
//! * newtype and tuple structs,
//! * enums with unit, named-field, and tuple variants (externally tagged,
//!   matching upstream's default representation),
//! * container attributes `#[serde(from = "T")]` / `#[serde(into = "T")]`.
//!
//! Anything else (generics, unknown `#[serde(...)]`
//! attributes) produces a `compile_error!` naming the limitation, so a
//! future use of unsupported surface fails loudly at the declaration site
//! rather than misbehaving at run time.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// Derives `serde::Serialize` (value-tree flavour: `fn to_value`).
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Serialize)
}

/// Derives `serde::Deserialize` (value-tree flavour: `fn from_value`).
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    expand(input, Direction::Deserialize)
}

#[derive(Clone, Copy, PartialEq)]
enum Direction {
    Serialize,
    Deserialize,
}

enum Shape {
    NamedStruct(Vec<String>),
    TupleStruct(usize),
    UnitStruct,
    Enum(Vec<Variant>),
}

struct Variant {
    name: String,
    fields: VariantFields,
}

enum VariantFields {
    Unit,
    Named(Vec<String>),
    Tuple(usize),
}

struct Input {
    name: String,
    shape: Shape,
    /// `#[serde(from = "T")]` — deserialize via `From<T>`.
    from_ty: Option<String>,
    /// `#[serde(into = "T")]` — serialize via `Clone` + `Into<T>`.
    into_ty: Option<String>,
}

fn expand(input: TokenStream, dir: Direction) -> TokenStream {
    match parse_input(input) {
        Ok(parsed) => generate(&parsed, dir)
            .parse()
            .unwrap_or_else(|e| compile_error(&format!("vendored serde_derive codegen: {e}"))),
        Err(msg) => compile_error(&msg),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});")
        .parse()
        .expect("compile_error tokens")
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

fn parse_input(input: TokenStream) -> Result<Input, String> {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let mut i = 0;
    let mut from_ty = None;
    let mut into_ty = None;

    // Outer attributes: `#` followed by a bracket group.
    while i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[i] else {
            break;
        };
        if p.as_char() != '#' {
            break;
        }
        let TokenTree::Group(g) = &tokens[i + 1] else {
            return Err("expected attribute group after `#`".into());
        };
        parse_container_attr(g.stream(), &mut from_ty, &mut into_ty)?;
        i += 2;
    }

    // Visibility: `pub`, optionally `pub(...)`.
    if matches!(&tokens.get(i), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        i += 1;
        if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
        {
            i += 1;
        }
    }

    let kind = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected `struct` or `enum`".into()),
    };
    i += 1;
    if kind != "struct" && kind != "enum" {
        return Err(format!("vendored serde_derive cannot derive for `{kind}`"));
    }

    let name = match &tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        _ => return Err("expected type name".into()),
    };
    i += 1;

    if matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        return Err(format!(
            "vendored serde_derive does not support generic type `{name}`"
        ));
    }

    let shape = if kind == "struct" {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::NamedStruct(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                Shape::TupleStruct(count_tuple_fields(g.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Shape::UnitStruct,
            _ => return Err(format!("unrecognized struct body for `{name}`")),
        }
    } else {
        match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                Shape::Enum(parse_variants(g.stream())?)
            }
            _ => return Err(format!("expected enum body for `{name}`")),
        }
    };

    Ok(Input {
        name,
        shape,
        from_ty,
        into_ty,
    })
}

/// Parses one outer attribute's content; records `serde(from/into)`.
fn parse_container_attr(
    stream: TokenStream,
    from_ty: &mut Option<String>,
    into_ty: &mut Option<String>,
) -> Result<(), String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let is_serde = matches!(&tokens.first(), Some(TokenTree::Ident(id)) if id.to_string() == "serde");
    if !is_serde {
        return Ok(()); // doc comments, #[repr(...)], other derives' attrs
    }
    let Some(TokenTree::Group(inner)) = tokens.get(1) else {
        return Err("malformed #[serde(...)] attribute".into());
    };
    let inner: Vec<TokenTree> = inner.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        let key = match &inner[j] {
            TokenTree::Ident(id) => id.to_string(),
            TokenTree::Punct(p) if p.as_char() == ',' => {
                j += 1;
                continue;
            }
            other => return Err(format!("unexpected token in #[serde(...)]: {other}")),
        };
        j += 1;
        let has_value =
            matches!(&inner.get(j), Some(TokenTree::Punct(p)) if p.as_char() == '=');
        let value = if has_value {
            j += 1;
            match &inner.get(j) {
                Some(TokenTree::Literal(lit)) => {
                    j += 1;
                    let s = lit.to_string();
                    Some(
                        s.strip_prefix('"')
                            .and_then(|s| s.strip_suffix('"'))
                            .ok_or_else(|| format!("expected string literal for `{key}`"))?
                            .to_string(),
                    )
                }
                _ => return Err(format!("expected literal value for serde attr `{key}`")),
            }
        } else {
            None
        };
        match (key.as_str(), value) {
            ("from", Some(t)) => *from_ty = Some(t),
            ("into", Some(t)) => *into_ty = Some(t),
            (other, _) => {
                return Err(format!(
                    "vendored serde_derive does not support #[serde({other} ...)]"
                ))
            }
        }
    }
    Ok(())
}

/// Skips an attribute (`#` + group) at `tokens[*i]`, if present.
fn skip_attrs(tokens: &[TokenTree], i: &mut usize) {
    while *i + 1 < tokens.len() {
        let TokenTree::Punct(p) = &tokens[*i] else {
            return;
        };
        if p.as_char() != '#' {
            return;
        }
        if !matches!(&tokens[*i + 1], TokenTree::Group(_)) {
            return;
        }
        *i += 2;
    }
}

fn parse_named_fields(stream: TokenStream) -> Result<Vec<String>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        if matches!(&tokens[i], TokenTree::Ident(id) if id.to_string() == "pub") {
            i += 1;
            if matches!(&tokens.get(i), Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis)
            {
                i += 1;
            }
        }
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        i += 1;
        if !matches!(&tokens.get(i), Some(TokenTree::Punct(p)) if p.as_char() == ':') {
            return Err(format!("expected `:` after field `{name}`"));
        }
        i += 1;
        skip_type_until_comma(&tokens, &mut i);
        fields.push(name);
    }
    Ok(fields)
}

/// Advances past type tokens until a comma at angle-bracket depth 0,
/// consuming the comma too.
fn skip_type_until_comma(tokens: &[TokenTree], i: &mut usize) {
    let mut depth = 0i32;
    while *i < tokens.len() {
        match &tokens[*i] {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                *i += 1;
                return;
            }
            _ => {}
        }
        *i += 1;
    }
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    if tokens.is_empty() {
        return 0;
    }
    let mut count = 1;
    let mut depth = 0i32;
    for (idx, t) in tokens.iter().enumerate() {
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                // A trailing comma does not introduce a new field.
                if idx + 1 < tokens.len() {
                    count += 1;
                }
            }
            _ => {}
        }
    }
    count
}

fn parse_variants(stream: TokenStream) -> Result<Vec<Variant>, String> {
    let tokens: Vec<TokenTree> = stream.into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        skip_attrs(&tokens, &mut i);
        if i >= tokens.len() {
            break;
        }
        let name = match &tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected variant name, found {other:?}")),
        };
        i += 1;
        let fields = match &tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                VariantFields::Named(parse_named_fields(g.stream())?)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                VariantFields::Tuple(count_tuple_fields(g.stream()))
            }
            _ => VariantFields::Unit,
        };
        match &tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '=' => {
                i += 1;
                // Skip the discriminant expression up to the next comma.
                skip_type_until_comma(&tokens, &mut i);
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {
                i += 1;
            }
            None => {}
            other => return Err(format!("unexpected token after variant: {other:?}")),
        }
        variants.push(Variant { name, fields });
    }
    Ok(variants)
}

// ---------------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------------

/// One `match self` arm serializing a variant in the externally tagged
/// representation: `"Name"` for unit variants, `{"Name": {...}}` for
/// named fields, `{"Name": value}` / `{"Name": [...]}` for tuples.
fn serialize_variant_arm(enum_name: &str, v: &Variant) -> String {
    let vname = &v.name;
    match &v.fields {
        VariantFields::Unit => format!(
            "{enum_name}::{vname} => \
             ::serde::Value::Str(::std::string::String::from({vname:?})),"
        ),
        VariantFields::Named(fields) => {
            let binds = fields.join(", ");
            let mut body = String::from("let mut inner = ::serde::Map::new();\n");
            for f in fields {
                body.push_str(&format!(
                    "inner.insert(::std::string::String::from({f:?}), \
                     ::serde::Serialize::to_value({f}));\n"
                ));
            }
            format!(
                "{enum_name}::{vname} {{ {binds} }} => {{\n{body}\
                 let mut outer = ::serde::Map::new();\n\
                 outer.insert(::std::string::String::from({vname:?}), \
                 ::serde::Value::Object(inner));\n\
                 ::serde::Value::Object(outer)\n}}"
            )
        }
        VariantFields::Tuple(n) => {
            let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
            let payload = if *n == 1 {
                "::serde::Serialize::to_value(f0)".to_string()
            } else {
                let items: Vec<String> = binds
                    .iter()
                    .map(|b| format!("::serde::Serialize::to_value({b})"))
                    .collect();
                format!("::serde::Value::Array(vec![{}])", items.join(", "))
            };
            format!(
                "{enum_name}::{vname}({}) => {{\n\
                 let mut outer = ::serde::Map::new();\n\
                 outer.insert(::std::string::String::from({vname:?}), {payload});\n\
                 ::serde::Value::Object(outer)\n}}",
                binds.join(", ")
            )
        }
    }
}

/// The `from_value` body for an enum: strings select unit variants;
/// single-key objects select data-carrying variants by tag.
fn deserialize_enum_body(enum_name: &str, variants: &[Variant]) -> String {
    let unit_arms: Vec<String> = variants
        .iter()
        .filter(|v| matches!(v.fields, VariantFields::Unit))
        .map(|v| {
            let vname = &v.name;
            format!("{vname:?} => ::std::result::Result::Ok({enum_name}::{vname}),")
        })
        .collect();
    let tagged_arms: Vec<String> = variants
        .iter()
        .filter_map(|v| {
            let vname = &v.name;
            match &v.fields {
                VariantFields::Unit => None,
                VariantFields::Named(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_field(fields, {f:?})?,"))
                        .collect();
                    Some(format!(
                        "{vname:?} => match payload {{\n\
                             ::serde::Value::Object(fields) => \
                                 ::std::result::Result::Ok({enum_name}::{vname} {{\n{}\n}}),\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected object payload for {enum_name}::{vname}, \
                                 found {{}}\", other.kind()))),\n\
                         }},",
                        inits.join("\n")
                    ))
                }
                VariantFields::Tuple(1) => Some(format!(
                    "{vname:?} => ::std::result::Result::Ok(\
                     {enum_name}::{vname}(::serde::Deserialize::from_value(payload)?)),"
                )),
                VariantFields::Tuple(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                        .collect();
                    Some(format!(
                        "{vname:?} => match payload {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({enum_name}::{vname}(\n{}\n)),\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected array of {n} for {enum_name}::{vname}, \
                                 found {{}}\", other.kind()))),\n\
                         }},",
                        inits.join("\n")
                    ))
                }
            }
        })
        .collect();
    format!(
        "match v {{\n\
             ::serde::Value::Str(s) => match s.as_str() {{\n{units}\n\
                 other => ::std::result::Result::Err(::serde::Error::custom(\
                     format!(\"unknown {enum_name} variant `{{other}}`\"))),\n\
             }},\n\
             ::serde::Value::Object(obj) if obj.len() == 1 => {{\n\
                 let (tag, payload) = match obj.iter().next() {{\n\
                     ::std::option::Option::Some(kv) => kv,\n\
                     ::std::option::Option::None => return \
                         ::std::result::Result::Err(::serde::Error::custom(\
                         \"empty object for {enum_name}\")),\n\
                 }};\n\
                 match tag.as_str() {{\n{tagged}\n\
                     other => ::std::result::Result::Err(::serde::Error::custom(\
                         format!(\"unknown {enum_name} variant `{{other}}`\"))),\n\
                 }}\n\
             }}\n\
             other => ::std::result::Result::Err(::serde::Error::custom(\
                 format!(\"expected string or tagged object for {enum_name}, \
                 found {{}}\", other.kind()))),\n\
         }}",
        units = unit_arms.join("\n"),
        tagged = tagged_arms.join("\n"),
    )
}

fn generate(input: &Input, dir: Direction) -> String {
    let name = &input.name;
    match dir {
        Direction::Serialize => {
            if let Some(into_ty) = &input.into_ty {
                return format!(
                    "impl ::serde::Serialize for {name} {{\n\
                         fn to_value(&self) -> ::serde::Value {{\n\
                             let bridge: {into_ty} = \
                                 <{name} as ::std::clone::Clone>::clone(self).into();\n\
                             ::serde::Serialize::to_value(&bridge)\n\
                         }}\n\
                     }}"
                );
            }
            let body = match &input.shape {
                Shape::NamedStruct(fields) => {
                    let mut b = String::from("let mut m = ::serde::Map::new();\n");
                    for f in fields {
                        b.push_str(&format!(
                            "m.insert(::std::string::String::from({f:?}), \
                             ::serde::Serialize::to_value(&self.{f}));\n"
                        ));
                    }
                    b.push_str("::serde::Value::Object(m)");
                    b
                }
                Shape::TupleStruct(1) => "::serde::Serialize::to_value(&self.0)".to_string(),
                Shape::TupleStruct(n) => {
                    let items: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Serialize::to_value(&self.{i})"))
                        .collect();
                    format!("::serde::Value::Array(vec![{}])", items.join(", "))
                }
                Shape::UnitStruct => "::serde::Value::Null".to_string(),
                Shape::Enum(variants) => {
                    let arms: Vec<String> = variants
                        .iter()
                        .map(|v| serialize_variant_arm(name, v))
                        .collect();
                    format!("match self {{\n{}\n}}", arms.join("\n"))
                }
            };
            format!(
                "impl ::serde::Serialize for {name} {{\n\
                     fn to_value(&self) -> ::serde::Value {{\n{body}\n}}\n\
                 }}"
            )
        }
        Direction::Deserialize => {
            if let Some(from_ty) = &input.from_ty {
                return format!(
                    "impl ::serde::Deserialize for {name} {{\n\
                         fn from_value(v: &::serde::Value) \
                             -> ::std::result::Result<Self, ::serde::Error> {{\n\
                             let bridge: {from_ty} = ::serde::Deserialize::from_value(v)?;\n\
                             ::std::result::Result::Ok(\
                                 <{name} as ::std::convert::From<{from_ty}>>::from(bridge))\n\
                         }}\n\
                     }}"
                );
            }
            let body = match &input.shape {
                Shape::NamedStruct(fields) => {
                    let inits: Vec<String> = fields
                        .iter()
                        .map(|f| format!("{f}: ::serde::from_field(obj, {f:?})?,"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Object(obj) => \
                                 ::std::result::Result::Ok({name} {{\n{}\n}}),\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected object for {name}, found {{}}\", \
                                 other.kind()))),\n\
                         }}",
                        inits.join("\n")
                    )
                }
                Shape::TupleStruct(1) => format!(
                    "::std::result::Result::Ok({name}(::serde::Deserialize::from_value(v)?))"
                ),
                Shape::TupleStruct(n) => {
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&items[{i}])?,"))
                        .collect();
                    format!(
                        "match v {{\n\
                             ::serde::Value::Array(items) if items.len() == {n} => \
                                 ::std::result::Result::Ok({name}(\n{}\n)),\n\
                             other => ::std::result::Result::Err(::serde::Error::custom(\
                                 format!(\"expected array of {n} for {name}, found {{}}\", \
                                 other.kind()))),\n\
                         }}",
                        inits.join("\n")
                    )
                }
                Shape::UnitStruct => {
                    format!("::std::result::Result::Ok({name})")
                }
                Shape::Enum(variants) => deserialize_enum_body(name, variants),
            };
            format!(
                "impl ::serde::Deserialize for {name} {{\n\
                     fn from_value(v: &::serde::Value) \
                         -> ::std::result::Result<Self, ::serde::Error> {{\n{body}\n}}\n\
                 }}"
            )
        }
    }
}
