//! Offline vendored substitute for the
//! [`crossbeam`](https://crates.io/crates/crossbeam) crate, implementing the
//! API subset this workspace uses: [`thread::scope`] with handle joining.
//!
//! Since Rust 1.63 the standard library ships scoped threads, so this is a
//! thin adapter that preserves the crossbeam call shape
//! (`scope(|s| { s.spawn(|_| …) })`, `scope` returning `Result`).

#![forbid(unsafe_code)]

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention.

    use std::thread as std_thread;

    /// Result of joining a scoped thread (`Err` carries the panic payload).
    pub type Result<T> = std_thread::Result<T>;

    /// A scope handle; passed both to the closure given to [`scope`] and to
    /// every spawned thread's closure.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std_thread::Scope<'scope, 'env>,
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread. The closure receives the scope handle so
        /// it can spawn further threads, mirroring crossbeam's signature.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: self.inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Handle to a spawned scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std_thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread to finish; `Err` if it panicked.
        pub fn join(self) -> Result<T> {
            self.inner.join()
        }
    }

    /// Creates a scope in which threads borrowing from the environment can
    /// be spawned; all unjoined threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam, a panic in an *unjoined* spawned thread propagates
    /// when the scope ends (std semantics) rather than being collected into
    /// the returned `Result`; every call site in this workspace joins all
    /// of its handles, so the two behaviours coincide here.
    pub fn scope<'env, F, R>(f: F) -> Result<R>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std_thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    use super::thread;

    #[test]
    fn scope_spawns_and_joins() {
        let data = vec![1u64, 2, 3, 4, 5, 6, 7, 8];
        let total: u64 = thread::scope(|s| {
            let handles: Vec<_> = data
                .chunks(3)
                .map(|chunk| s.spawn(move |_| chunk.iter().sum::<u64>()))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("worker panicked"))
                .sum()
        })
        .expect("scope failed");
        assert_eq!(total, 36);
    }

    #[test]
    fn nested_spawn_through_scope_arg() {
        let n = thread::scope(|s| {
            let h = s.spawn(|inner| {
                let h2 = inner.spawn(|_| 21u32);
                h2.join().unwrap() * 2
            });
            h.join().unwrap()
        })
        .unwrap();
        assert_eq!(n, 42);
    }

    #[test]
    fn join_reports_panics() {
        let r = thread::scope(|s| {
            let h = s.spawn(|_| -> u32 { panic!("boom") });
            h.join()
        })
        .unwrap();
        assert!(r.is_err());
    }
}
