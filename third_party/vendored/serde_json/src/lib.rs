//! Offline vendored substitute for
//! [`serde_json`](https://crates.io/crates/serde_json), working over the
//! vendored serde's [`Value`] tree.
//!
//! Implements the workspace's API surface: [`to_string`], [`to_writer`],
//! [`from_str`], [`from_reader`], plus [`to_string_pretty`] and a public
//! [`Value`] re-export. The emitted JSON is deterministic (object keys in
//! sorted order, floats via Rust's shortest-roundtrip `Display`).

#![forbid(unsafe_code)]

use std::fmt;
use std::io::{Read, Write};

pub use serde::Value;

/// Errors from (de)serialization or I/O.
#[derive(Debug)]
pub enum Error {
    /// Malformed JSON input: message plus byte offset.
    Syntax(String, usize),
    /// Value-level mismatch (wrong type, missing field, range).
    Data(String),
    /// Underlying reader/writer failure.
    Io(std::io::Error),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Syntax(msg, at) => write!(f, "syntax error at byte {at}: {msg}"),
            Error::Data(msg) => f.write_str(msg),
            Error::Io(e) => write!(f, "io error: {e}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error::Data(e.to_string())
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

/// Result alias matching the upstream crate.
pub type Result<T> = std::result::Result<T, Error>;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes a value to a compact JSON string.
pub fn to_string<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0);
    Ok(out)
}

/// Serializes a value to a pretty-printed JSON string (2-space indent).
pub fn to_string_pretty<T: serde::Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0);
    Ok(out)
}

/// Serializes a value as compact JSON into a writer.
pub fn to_writer<W: Write, T: serde::Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

/// Serializes a value as pretty JSON into a writer.
pub fn to_writer_pretty<W: Write, T: serde::Serialize + ?Sized>(
    mut writer: W,
    value: &T,
) -> Result<()> {
    let s = to_string_pretty(value)?;
    writer.write_all(s.as_bytes())?;
    Ok(())
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    use fmt::Write as _;
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        // `write!` formats straight into the output buffer; `to_string`
        // here would allocate once per numeric node, which dominates on
        // number-heavy payloads (model weights, score tables).
        Value::Int(i) => {
            let _ = write!(out, "{i}");
        }
        Value::UInt(u) => {
            let _ = write!(out, "{u}");
        }
        Value::Float(f) => write_float(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            if !items.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push(']');
        }
        Value::Object(map) => {
            out.push('{');
            for (i, (k, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            if !map.is_empty() {
                newline_indent(out, indent, depth);
            }
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..depth * width {
            out.push(' ');
        }
    }
}

fn write_float(out: &mut String, f: f64) {
    use fmt::Write as _;
    if f.is_finite() {
        let before = out.len();
        let _ = write!(out, "{f}");
        // Keep a float-shaped token so the value round-trips as a float.
        let token = &out[before..];
        if !token.contains('.') && !token.contains('e') && !token.contains('E') {
            out.push_str(".0");
        }
    } else {
        // JSON has no NaN/Infinity; match upstream's lossy `null`.
        out.push_str("null");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    // Copy maximal runs of characters that need no escaping in one
    // `push_str` instead of walking char by char — string-heavy payloads
    // (ledgers, vocabularies) are almost entirely such runs.
    let bytes = s.as_bytes();
    let mut start = 0;
    for (i, &b) in bytes.iter().enumerate() {
        if b == b'"' || b == b'\\' || b < 0x20 {
            out.push_str(&s[start..i]);
            match b {
                b'"' => out.push_str("\\\""),
                b'\\' => out.push_str("\\\\"),
                b'\n' => out.push_str("\\n"),
                b'\r' => out.push_str("\\r"),
                b'\t' => out.push_str("\\t"),
                0x08 => out.push_str("\\b"),
                0x0C => out.push_str("\\f"),
                _ => {
                    let _ = write!(out, "\\u{:04x}", b as u32);
                }
            }
            start = i + 1;
        }
    }
    out.push_str(&s[start..]);
    out.push('"');
}

// ---------------------------------------------------------------------------
// Deserialization
// ---------------------------------------------------------------------------

/// Deserializes a value from a JSON string.
pub fn from_str<T: serde::Deserialize>(s: &str) -> Result<T> {
    let value = parse_value_complete(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserializes a value from a reader (reads to end).
pub fn from_reader<R: Read, T: serde::Deserialize>(mut reader: R) -> Result<T> {
    let mut buf = String::new();
    reader.read_to_string(&mut buf)?;
    from_str(&buf)
}

/// Parses a string into a [`Value`] tree, requiring EOF after the value.
pub fn parse_value_complete(s: &str) -> Result<Value> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::Syntax("trailing characters".into(), p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err<T>(&self, msg: impl Into<String>) -> Result<T> {
        Err(Error::Syntax(msg.into(), self.pos))
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek();
        if b.is_some() {
            self.pos += 1;
        }
        b
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(format!("expected `{}`", b as char))
        }
    }

    fn expect_keyword(&mut self, kw: &str) -> Result<()> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(())
        } else {
            self.err(format!("expected `{kw}`"))
        }
    }

    fn parse_value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => {
                self.expect_keyword("null")?;
                Ok(Value::Null)
            }
            Some(b't') => {
                self.expect_keyword("true")?;
                Ok(Value::Bool(true))
            }
            Some(b'f') => {
                self.expect_keyword("false")?;
                Ok(Value::Bool(false))
            }
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => self.err(format!("unexpected character `{}`", c as char)),
            None => self.err("unexpected end of input"),
        }
    }

    fn parse_array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => return Ok(Value::Array(items)),
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut map = serde::Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => return Ok(Value::Object(map)),
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return self.err("unterminated string"),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'b') => out.push('\u{08}'),
                    Some(b'f') => out.push('\u{0C}'),
                    Some(b'u') => {
                        let cp = self.parse_hex4()?;
                        if (0xD800..0xDC00).contains(&cp) {
                            // High surrogate: require a following \uXXXX low half.
                            self.expect(b'\\')?;
                            self.expect(b'u')?;
                            let low = self.parse_hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return self.err("invalid low surrogate");
                            }
                            let c = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            match char::from_u32(c) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid surrogate pair"),
                            }
                        } else {
                            match char::from_u32(cp) {
                                Some(c) => out.push(c),
                                None => return self.err("invalid unicode escape"),
                            }
                        }
                    }
                    _ => return self.err("invalid escape"),
                },
                Some(b) if b < 0x80 => out.push(b as char),
                Some(b) => {
                    // Multi-byte UTF-8: the input is a &str, so this is valid;
                    // recover the full character from the byte span.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if end > self.bytes.len() {
                        return self.err("truncated utf-8");
                    }
                    match std::str::from_utf8(&self.bytes[start..end]) {
                        Ok(s) => {
                            if let Some(c) = s.chars().next() {
                                out.push(c);
                            }
                            self.pos = end;
                        }
                        Err(_) => return self.err("invalid utf-8"),
                    }
                }
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let mut v = 0u32;
        for _ in 0..4 {
            let d = match self.bump() {
                Some(c @ b'0'..=b'9') => (c - b'0') as u32,
                Some(c @ b'a'..=b'f') => (c - b'a' + 10) as u32,
                Some(c @ b'A'..=b'F') => (c - b'A' + 10) as u32,
                _ => return self.err("invalid \\u escape"),
            };
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn parse_number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::Syntax("invalid number".into(), start))?;
        if !is_float {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::UInt(u));
            }
        }
        text.parse::<f64>()
            .map(Value::Float)
            .map_err(|_| Error::Syntax(format!("invalid number `{text}`"), start))
    }
}

fn utf8_width(first: u8) -> usize {
    match first {
        0xC0..=0xDF => 2,
        0xE0..=0xEF => 3,
        _ => 4,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_roundtrips() {
        assert_eq!(to_string(&true).unwrap(), "true");
        assert_eq!(to_string(&42u32).unwrap(), "42");
        assert_eq!(to_string(&-7i64).unwrap(), "-7");
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(to_string(&2.0f64).unwrap(), "2.0");
        assert_eq!(to_string(&"hi\n\"x\"").unwrap(), r#""hi\n\"x\"""#);
        assert_eq!(from_str::<bool>("true").unwrap(), true);
        assert_eq!(from_str::<u64>(" 42 ").unwrap(), 42);
        assert_eq!(from_str::<f64>("2.0").unwrap(), 2.0);
        assert_eq!(from_str::<String>(r#""aA\n""#).unwrap(), "aA\n");
    }

    #[test]
    fn float_tokens_stay_floats() {
        let s = to_string(&vec![2.0f64, 0.5]).unwrap();
        assert_eq!(s, "[2.0,0.5]");
        let back: Vec<f64> = from_str(&s).unwrap();
        assert_eq!(back, vec![2.0, 0.5]);
    }

    #[test]
    fn nested_value_roundtrip() {
        let json = r#"{"a":[1,2.5,null,{"b":"x"}],"c":true}"#;
        let v: Value = from_str(json).unwrap();
        assert_eq!(to_string(&v).unwrap(), json);
    }

    #[test]
    fn unicode_and_surrogates() {
        let v: String = from_str(r#""café 😀 ü""#).unwrap();
        assert_eq!(v, "café 😀 ü");
        let back = to_string(&v).unwrap();
        let again: String = from_str(&back).unwrap();
        assert_eq!(again, v);
    }

    #[test]
    fn syntax_errors_have_offsets() {
        assert!(matches!(from_str::<bool>("tru"), Err(Error::Syntax(_, _))));
        assert!(matches!(
            from_str::<Value>(r#"{"a":1,}"#),
            Err(Error::Syntax(_, _))
        ));
        assert!(matches!(from_str::<Value>("[1 2]"), Err(Error::Syntax(_, _))));
        assert!(matches!(from_str::<Value>("1 1"), Err(Error::Syntax(_, _))));
    }

    #[test]
    fn pretty_printing_shape() {
        let v: Value = from_str(r#"{"a":[1],"b":{}}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"a\": [\n    1\n  ]"));
        assert!(pretty.contains("\"b\": {}"));
    }

    #[test]
    fn reader_writer_roundtrip() {
        let mut buf = Vec::new();
        to_writer(&mut buf, &vec![1u8, 2, 3]).unwrap();
        let back: Vec<u8> = from_reader(buf.as_slice()).unwrap();
        assert_eq!(back, vec![1, 2, 3]);
    }

    #[test]
    fn big_u64_survives() {
        let n = u64::MAX;
        let s = to_string(&n).unwrap();
        assert_eq!(from_str::<u64>(&s).unwrap(), n);
    }
}
